#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace crowdweb {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = (*this)();
  if (range != 0) {
    const std::uint64_t limit = ~0ULL - (~0ULL % range) - 1;
    while (x > limit) x = (*this)();
    x %= range;
  }
  return lo + static_cast<std::int64_t>(x);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::uint32_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0u : static_cast<std::uint32_t>(draw + 0.5);
  }
  const double threshold = std::exp(-lambda);
  std::uint32_t k = 0;
  double product = uniform();
  while (product > threshold) {
    ++k;
    product *= uniform();
  }
  return k;
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / lambda;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slack: land on the last positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size();
}

Rng Rng::fork(std::uint64_t stream) noexcept {
  std::uint64_t mix = (*this)() ^ (stream * 0x9e3779b97f4a7c15ULL + 0xda3e39cb94b95bdbULL);
  return Rng{splitmix64(mix)};
}

}  // namespace crowdweb

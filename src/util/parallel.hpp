// Deterministic fork-join helpers for the pipeline's parallel kernels.
//
// The mining/crowd kernels fan work out over transient thread pools
// (the PR 5 mining-pool pattern). For kernels whose output order
// matters, work is split into *contiguous chunks*: chunk boundaries
// depend only on (n, threads), each chunk fills its own scratch, and
// the caller concatenates per-chunk results in chunk order — so the
// output is byte-identical to the sequential run at any thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace crowdweb::util {

/// Number of workers worth spawning for `items` units of work:
/// `requested` threads (0 = hardware concurrency), capped by the item
/// count, never less than 1.
inline unsigned effective_threads(unsigned requested, std::size_t items) {
  if (items == 0) return 1;
  const unsigned threads =
      requested == 0 ? std::max(1u, std::thread::hardware_concurrency()) : requested;
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, items));
}

/// Runs fn(chunk, begin, end) over `threads` contiguous chunks of
/// [0, n). Chunk boundaries are a pure function of (n, threads):
/// the first n % threads chunks get one extra item. With threads <= 1
/// (or n == 0) the call runs inline with no thread spawned.
template <typename Fn>
void parallel_chunks(std::size_t n, unsigned threads, Fn&& fn) {
  threads = effective_threads(threads, n);
  if (threads <= 1) {
    if (n > 0) fn(0u, std::size_t{0}, n);
    return;
  }
  const std::size_t base = n / threads;
  const std::size_t extra = n % threads;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::size_t begin = 0;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t end = begin + base + (t < extra ? 1 : 0);
    pool.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
    begin = end;
  }
  for (std::thread& thread : pool) thread.join();
}

}  // namespace crowdweb::util

// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic components of CrowdWeb (the synthetic city, user routines,
// the sparsity model) draw from `Rng`, a xoshiro256** generator seeded via
// splitmix64. Runs with the same seed are bit-for-bit reproducible across
// platforms, which the experiment harness relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crowdweb {

/// splitmix64 step; used for seeding and hashing small integers.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit draw (UniformRandomBitGenerator interface).
  std::uint64_t operator()() noexcept;
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Poisson draw (Knuth for small lambda, normal approximation above 64).
  std::uint32_t poisson(double lambda) noexcept;
  /// Exponential with rate `lambda` (> 0).
  double exponential(double lambda) noexcept;
  /// Index drawn proportionally to non-negative `weights`; returns
  /// weights.size() when all weights are zero or the span is empty.
  std::size_t weighted_index(std::span<const double> weights) noexcept;
  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }
  /// Derives an independent generator; distinct `stream` values give
  /// decorrelated child streams from the same parent seed.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace crowdweb

#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace crowdweb {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::scoped_lock lock(g_sink_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace crowdweb

// Civil (calendar) time without timezone machinery.
//
// Check-in timestamps are Unix epoch seconds interpreted as local city
// time; the dataset model only ever needs calendar fields (month windows,
// day-of-week routines, hour-of-day time windows), so the conversions here
// use Howard Hinnant's proleptic-Gregorian algorithms directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace crowdweb {

/// Broken-down calendar time (proleptic Gregorian, no timezone).
struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;   ///< 0..23
  int minute = 0; ///< 0..59
  int second = 0; ///< 0..59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days since 1970-01-01 for a civil date (negative before the epoch).
[[nodiscard]] std::int64_t days_from_civil(int year, int month, int day) noexcept;

/// Inverse of `days_from_civil`.
[[nodiscard]] CivilTime civil_from_days(std::int64_t days) noexcept;

/// Epoch seconds for a civil time; no validation of field ranges.
[[nodiscard]] std::int64_t to_epoch_seconds(const CivilTime& civil) noexcept;

/// Civil fields of an epoch-seconds timestamp.
[[nodiscard]] CivilTime to_civil(std::int64_t epoch_seconds) noexcept;

/// Day of week, 0 = Sunday .. 6 = Saturday.
[[nodiscard]] int day_of_week(std::int64_t epoch_seconds) noexcept;

/// True for Saturday/Sunday.
[[nodiscard]] bool is_weekend(std::int64_t epoch_seconds) noexcept;

/// Day index since the epoch (floor division of seconds by 86400).
[[nodiscard]] std::int64_t day_index(std::int64_t epoch_seconds) noexcept;

/// Hour of day 0..23.
[[nodiscard]] int hour_of_day(std::int64_t epoch_seconds) noexcept;

/// Minute of day 0..1439, without the full calendar breakdown. Equals
/// `to_civil(s).hour * 60 + to_civil(s).minute` for every timestamp —
/// the hot-path form for time-window binning.
[[nodiscard]] int minute_of_day(std::int64_t epoch_seconds) noexcept;

/// "YYYY-MM-DD HH:MM:SS".
[[nodiscard]] std::string format_timestamp(std::int64_t epoch_seconds);

/// "YYYY-MM-DD".
[[nodiscard]] std::string format_date(std::int64_t epoch_seconds);

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS" (also accepts 'T' as the
/// separator) and validates field ranges.
[[nodiscard]] Result<std::int64_t> parse_timestamp(std::string_view text);

/// True if `year` is a Gregorian leap year.
[[nodiscard]] bool is_leap_year(int year) noexcept;

/// Number of days in `month` of `year` (month 1..12).
[[nodiscard]] int days_in_month(int year, int month) noexcept;

}  // namespace crowdweb

#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include "util/format.hpp"

namespace crowdweb {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

namespace {

template <typename Range>
std::string join_impl(const Range& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out += sep;
    first = false;
    out += part;
  }
  return out;
}

}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text)
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

Result<std::int64_t> parse_int(std::string_view text) {
  const std::string_view body = trim(text);
  if (body.empty()) return parse_error("empty integer");
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc{} || ptr != body.data() + body.size())
    return parse_error(crowdweb::format("not an integer: '{}'", text));
  return value;
}

Result<double> parse_double(std::string_view text) {
  const std::string_view body = trim(text);
  if (body.empty()) return parse_error("empty number");
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc{} || ptr != body.data() + body.size())
    return parse_error(crowdweb::format("not a number: '{}'", text));
  return value;
}

namespace {

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool is_unreserved(char c) noexcept {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '-' || c == '.' ||
         c == '_' || c == '~';
}

}  // namespace

Result<std::string> url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= text.size()) return parse_error("truncated percent escape");
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi < 0 || lo < 0) return parse_error("invalid percent escape");
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::string url_encode(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (is_unreserved(c)) {
      out += c;
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[byte >> 4];
      out += kHex[byte & 0xF];
    }
  }
  return out;
}

}  // namespace crowdweb

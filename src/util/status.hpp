// Lightweight error-handling vocabulary for the CrowdWeb libraries.
//
// Fallible operations that cross module boundaries return `Status` (for
// actions) or `Result<T>` (for producers) instead of throwing, so callers
// can branch on failures from untrusted inputs (files, sockets, user
// parameters) without exception control flow. Programming errors still
// use assertions/exceptions per the C++ Core Guidelines.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace crowdweb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kUnavailable,
  kInternal,
};

/// Human-readable name of a status code ("ok", "invalid_argument", ...).
std::string_view to_string(StatusCode code) noexcept;

/// Value-semantic success/error outcome of an operation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
inline Status not_found(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
inline Status out_of_range(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
inline Status failed_precondition(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
inline Status parse_error(std::string message) {
  return {StatusCode::kParseError, std::move(message)};
}
inline Status io_error(std::string message) {
  return {StatusCode::kIoError, std::move(message)};
}
inline Status unavailable(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}
inline Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

/// Either a value of `T` or a non-OK `Status` explaining its absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(storage_).is_ok() &&
           "Result constructed from an OK status carries no value");
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  /// The error; `Status::ok()` when a value is present.
  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(storage_);
  }

  [[nodiscard]] const T& value() const& {
    assert(is_ok() && "Result::value() on an error result");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok() && "Result::value() on an error result");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok() && "Result::value() on an error result");
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace crowdweb

#include "util/status.hpp"

namespace crowdweb {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out{crowdweb::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace crowdweb

// Minimal std::format-style string formatting.
//
// The toolchain this library targets (GCC 12) ships C++20 without
// <format>, so this header provides the subset the codebase needs:
// positional `{}` placeholders with specs `[[fill]align][0][width]
// [.precision][type]` where align is one of `<`, `>`, `^` and type is one
// of `d`, `f`, `e`, `x`, `s` (or empty). `{{` and `}}` escape braces.
// Formatting never throws: a malformed spec renders as `{?}` so log lines
// degrade instead of aborting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace crowdweb {

namespace detail {

struct FormatSpec {
  char fill = ' ';
  char align = 0;     // '<', '>', '^' or 0 (type default)
  bool zero_pad = false;
  int width = 0;
  int precision = -1;  // -1 = unset
  char type = 0;       // 'd', 'f', 'e', 'x', 's' or 0
};

/// Parses the text between ':' and '}' of a placeholder. Returns false on
/// a malformed spec.
bool parse_spec(std::string_view text, FormatSpec& spec) noexcept;

/// Pads `body` into `out` per fill/align/width.
void pad_into(std::string& out, std::string_view body, const FormatSpec& spec,
              bool is_numeric);

void format_arg(std::string& out, const FormatSpec& spec, bool value);
void format_arg(std::string& out, const FormatSpec& spec, char value);
void format_arg(std::string& out, const FormatSpec& spec, std::int64_t value);
void format_arg(std::string& out, const FormatSpec& spec, std::uint64_t value);
void format_arg(std::string& out, const FormatSpec& spec, double value);
void format_arg(std::string& out, const FormatSpec& spec, std::string_view value);

inline void format_arg(std::string& out, const FormatSpec& spec, const char* value) {
  format_arg(out, spec, std::string_view(value == nullptr ? "(null)" : value));
}
inline void format_arg(std::string& out, const FormatSpec& spec, const std::string& value) {
  format_arg(out, spec, std::string_view(value));
}
inline void format_arg(std::string& out, const FormatSpec& spec, float value) {
  format_arg(out, spec, static_cast<double>(value));
}

template <typename T>
  requires(std::is_integral_v<T> && std::is_signed_v<T> && !std::is_same_v<T, char> &&
           !std::is_same_v<T, bool>)
void format_arg(std::string& out, const FormatSpec& spec, T value) {
  format_arg(out, spec, static_cast<std::int64_t>(value));
}

template <typename T>
  requires(std::is_integral_v<T> && std::is_unsigned_v<T> && !std::is_same_v<T, char> &&
           !std::is_same_v<T, bool>)
void format_arg(std::string& out, const FormatSpec& spec, T value) {
  format_arg(out, spec, static_cast<std::uint64_t>(value));
}

template <typename T>
  requires std::is_enum_v<T>
void format_arg(std::string& out, const FormatSpec& spec, T value) {
  format_arg(out, spec, static_cast<std::int64_t>(value));
}

/// Type-erased argument reference used by the formatting loop.
class ArgRef {
 public:
  template <typename T>
  explicit ArgRef(const T& value)
      : pointer_(&value), invoke_([](std::string& out, const FormatSpec& spec,
                                     const void* p) {
          format_arg(out, spec, *static_cast<const T*>(p));
        }) {}

  void render(std::string& out, const FormatSpec& spec) const {
    invoke_(out, spec, pointer_);
  }

 private:
  const void* pointer_;
  void (*invoke_)(std::string&, const FormatSpec&, const void*);
};

std::string vformat(std::string_view fmt, const ArgRef* args, std::size_t count);

}  // namespace detail

/// Formats `fmt` with positional `{}` placeholders (see file comment).
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return detail::vformat(fmt, nullptr, 0);
  } else {
    const detail::ArgRef refs[] = {detail::ArgRef(args)...};
    return detail::vformat(fmt, refs, sizeof...(Args));
  }
}

}  // namespace crowdweb

#include "util/civil_time.hpp"

#include "util/format.hpp"

#include "util/strings.hpp"

namespace crowdweb {

namespace {

constexpr std::int64_t kSecondsPerDay = 86'400;

std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  return a / b - ((a % b != 0 && (a ^ b) < 0) ? 1 : 0);
}

}  // namespace

std::int64_t days_from_civil(int year, int month, int day) noexcept {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const auto yoe = static_cast<unsigned>(year - era * 400);              // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146'097 + static_cast<std::int64_t>(doe) - 719'468;
}

CivilTime civil_from_days(std::int64_t days) noexcept {
  days += 719'468;
  const std::int64_t era = (days >= 0 ? days : days - 146'096) / 146'097;
  const auto doe = static_cast<unsigned>(days - era * 146'097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t year = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                     // [1, 31]
  const unsigned month = mp < 10 ? mp + 3 : mp - 9;                      // [1, 12]
  CivilTime civil;
  civil.year = static_cast<int>(year + (month <= 2));
  civil.month = static_cast<int>(month);
  civil.day = static_cast<int>(day);
  return civil;
}

std::int64_t to_epoch_seconds(const CivilTime& civil) noexcept {
  return days_from_civil(civil.year, civil.month, civil.day) * kSecondsPerDay +
         civil.hour * 3600 + civil.minute * 60 + civil.second;
}

CivilTime to_civil(std::int64_t epoch_seconds) noexcept {
  const std::int64_t days = floor_div(epoch_seconds, kSecondsPerDay);
  std::int64_t rem = epoch_seconds - days * kSecondsPerDay;
  CivilTime civil = civil_from_days(days);
  civil.hour = static_cast<int>(rem / 3600);
  rem %= 3600;
  civil.minute = static_cast<int>(rem / 60);
  civil.second = static_cast<int>(rem % 60);
  return civil;
}

int day_of_week(std::int64_t epoch_seconds) noexcept {
  const std::int64_t days = floor_div(epoch_seconds, kSecondsPerDay);
  // 1970-01-01 was a Thursday (weekday 4).
  return static_cast<int>(((days % 7) + 7 + 4) % 7);
}

bool is_weekend(std::int64_t epoch_seconds) noexcept {
  const int dow = day_of_week(epoch_seconds);
  return dow == 0 || dow == 6;
}

std::int64_t day_index(std::int64_t epoch_seconds) noexcept {
  return floor_div(epoch_seconds, kSecondsPerDay);
}

int hour_of_day(std::int64_t epoch_seconds) noexcept {
  return to_civil(epoch_seconds).hour;
}

int minute_of_day(std::int64_t epoch_seconds) noexcept {
  const std::int64_t days = floor_div(epoch_seconds, kSecondsPerDay);
  return static_cast<int>((epoch_seconds - days * kSecondsPerDay) / 60);
}

std::string format_timestamp(std::int64_t epoch_seconds) {
  const CivilTime c = to_civil(epoch_seconds);
  return crowdweb::format("{:04}-{:02}-{:02} {:02}:{:02}:{:02}", c.year, c.month, c.day,
                     c.hour, c.minute, c.second);
}

std::string format_date(std::int64_t epoch_seconds) {
  const CivilTime c = to_civil(epoch_seconds);
  return crowdweb::format("{:04}-{:02}-{:02}", c.year, c.month, c.day);
}

bool is_leap_year(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) noexcept {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

Result<std::int64_t> parse_timestamp(std::string_view text) {
  const std::string_view body = trim(text);
  if (body.size() != 10 && body.size() != 19)
    return parse_error(crowdweb::format("bad timestamp length: '{}'", text));

  const auto field = [&](std::size_t pos, std::size_t len) -> Result<std::int64_t> {
    return parse_int(body.substr(pos, len));
  };

  const auto year = field(0, 4);
  const auto month = field(5, 2);
  const auto day = field(8, 2);
  if (!year || !month || !day || body[4] != '-' || body[7] != '-')
    return parse_error(crowdweb::format("bad date: '{}'", text));

  CivilTime civil;
  civil.year = static_cast<int>(*year);
  civil.month = static_cast<int>(*month);
  civil.day = static_cast<int>(*day);
  if (civil.month < 1 || civil.month > 12)
    return out_of_range(crowdweb::format("month out of range: '{}'", text));
  if (civil.day < 1 || civil.day > days_in_month(civil.year, civil.month))
    return out_of_range(crowdweb::format("day out of range: '{}'", text));

  if (body.size() == 19) {
    if (body[10] != ' ' && body[10] != 'T')
      return parse_error(crowdweb::format("bad separator: '{}'", text));
    const auto hour = field(11, 2);
    const auto minute = field(14, 2);
    const auto second = field(17, 2);
    if (!hour || !minute || !second || body[13] != ':' || body[16] != ':')
      return parse_error(crowdweb::format("bad time: '{}'", text));
    civil.hour = static_cast<int>(*hour);
    civil.minute = static_cast<int>(*minute);
    civil.second = static_cast<int>(*second);
    if (civil.hour > 23 || civil.minute > 59 || civil.second > 59 || civil.hour < 0 ||
        civil.minute < 0 || civil.second < 0)
      return out_of_range(crowdweb::format("time out of range: '{}'", text));
  }
  return to_epoch_seconds(civil);
}

}  // namespace crowdweb

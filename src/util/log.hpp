// Minimal leveled logger.
//
// The libraries log sparingly (server lifecycle, pipeline phase timings);
// the sink and level are process-global and default to stderr/info.
#pragma once

#include <string_view>
#include <utility>

#include "util/format.hpp"

namespace crowdweb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that is emitted (thread-safe).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line: "[level] message\n". Thread-safe.
void log_message(LogLevel level, std::string_view message);

template <typename... Args>
void log_debug(std::string_view fmt, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, format(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(std::string_view fmt, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, format(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(std::string_view fmt, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, format(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(std::string_view fmt, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, format(fmt, std::forward<Args>(args)...));
}

}  // namespace crowdweb

// Small string utilities shared across the CrowdWeb modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace crowdweb {

/// Splits on `delim`; adjacent delimiters yield empty fields.
/// split("a,,b", ',') -> {"a", "", "b"}; split("", ',') -> {""}.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string_view>& parts, std::string_view sep);

/// ASCII lower-casing.
[[nodiscard]] std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Strict integer/double parsing of the full string (after trimming).
[[nodiscard]] Result<std::int64_t> parse_int(std::string_view text);
[[nodiscard]] Result<double> parse_double(std::string_view text);

/// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
[[nodiscard]] Result<std::string> url_decode(std::string_view text);
/// Percent-encodes everything outside [A-Za-z0-9-._~].
[[nodiscard]] std::string url_encode(std::string_view text);

}  // namespace crowdweb

#include "util/format.hpp"

#include <charconv>
#include <cstdio>

namespace crowdweb::detail {

namespace {

bool parse_int(std::string_view text, std::size_t& pos, int& value) noexcept {
  const std::size_t start = pos;
  long parsed = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    parsed = parsed * 10 + (text[pos] - '0');
    if (parsed > 4096) return false;  // sane limit for widths/precisions
    ++pos;
  }
  if (pos == start) return false;
  value = static_cast<int>(parsed);
  return true;
}

}  // namespace

bool parse_spec(std::string_view text, FormatSpec& spec) noexcept {
  std::size_t pos = 0;
  // [[fill]align]
  if (text.size() >= 2 && (text[1] == '<' || text[1] == '>' || text[1] == '^')) {
    spec.fill = text[0];
    spec.align = text[1];
    pos = 2;
  } else if (!text.empty() && (text[0] == '<' || text[0] == '>' || text[0] == '^')) {
    spec.align = text[0];
    pos = 1;
  }
  // [0]
  if (pos < text.size() && text[pos] == '0') {
    spec.zero_pad = true;
    ++pos;
  }
  // [width]
  if (pos < text.size() && text[pos] >= '1' && text[pos] <= '9') {
    if (!parse_int(text, pos, spec.width)) return false;
  }
  // [.precision]
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    if (!parse_int(text, pos, spec.precision)) return false;
  }
  // [type]
  if (pos < text.size()) {
    const char t = text[pos];
    if (t != 'd' && t != 'f' && t != 'e' && t != 'x' && t != 's') return false;
    spec.type = t;
    ++pos;
  }
  return pos == text.size();
}

void pad_into(std::string& out, std::string_view body, const FormatSpec& spec,
              bool is_numeric) {
  const std::size_t width = spec.width > 0 ? static_cast<std::size_t>(spec.width) : 0;
  if (body.size() >= width) {
    out += body;
    return;
  }
  const std::size_t padding = width - body.size();
  char align = spec.align;
  if (align == 0) align = is_numeric ? '>' : '<';
  char fill = spec.fill;
  if (spec.zero_pad && is_numeric && spec.align == 0) {
    fill = '0';
    align = '>';
    // Zero padding goes after the sign: "-007", not "00-7".
    if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
      out += body[0];
      out.append(padding, '0');
      out += body.substr(1);
      return;
    }
  }
  switch (align) {
    case '<':
      out += body;
      out.append(padding, fill);
      return;
    case '^': {
      const std::size_t left = padding / 2;
      out.append(left, fill);
      out += body;
      out.append(padding - left, fill);
      return;
    }
    case '>':
    default:
      out.append(padding, fill);
      out += body;
      return;
  }
}

void format_arg(std::string& out, const FormatSpec& spec, bool value) {
  if (spec.type == 'd' || spec.type == 'x') {
    format_arg(out, spec, static_cast<std::int64_t>(value));
    return;
  }
  pad_into(out, value ? "true" : "false", spec, false);
}

void format_arg(std::string& out, const FormatSpec& spec, char value) {
  pad_into(out, std::string_view(&value, 1), spec, false);
}

namespace {

void format_integer(std::string& out, const FormatSpec& spec, char buffer[],
                    std::to_chars_result result, const char* begin) {
  pad_into(out,
           std::string_view(begin, static_cast<std::size_t>(result.ptr - begin)),
           spec, true);
  (void)buffer;
}

}  // namespace

void format_arg(std::string& out, const FormatSpec& spec, std::int64_t value) {
  char buffer[24];
  const int base = spec.type == 'x' ? 16 : 10;
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value, base);
  format_integer(out, spec, buffer, result, buffer);
}

void format_arg(std::string& out, const FormatSpec& spec, std::uint64_t value) {
  char buffer[24];
  const int base = spec.type == 'x' ? 16 : 10;
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value, base);
  format_integer(out, spec, buffer, result, buffer);
}

void format_arg(std::string& out, const FormatSpec& spec, double value) {
  char buffer[64];
  std::to_chars_result result{buffer, std::errc{}};
  if (spec.type == 'f' || (spec.precision >= 0 && spec.type == 0)) {
    const int precision = spec.precision >= 0 ? spec.precision : 6;
    result = std::to_chars(buffer, buffer + sizeof buffer, value,
                           std::chars_format::fixed, precision);
  } else if (spec.type == 'e') {
    const int precision = spec.precision >= 0 ? spec.precision : 6;
    result = std::to_chars(buffer, buffer + sizeof buffer, value,
                           std::chars_format::scientific, precision);
  } else {
    result = std::to_chars(buffer, buffer + sizeof buffer, value);
  }
  if (result.ec != std::errc{}) {
    pad_into(out, "?", spec, true);
    return;
  }
  pad_into(out, std::string_view(buffer, static_cast<std::size_t>(result.ptr - buffer)),
           spec, true);
}

void format_arg(std::string& out, const FormatSpec& spec, std::string_view value) {
  if (spec.precision >= 0 && static_cast<std::size_t>(spec.precision) < value.size())
    value = value.substr(0, static_cast<std::size_t>(spec.precision));
  pad_into(out, value, spec, false);
}

std::string vformat(std::string_view fmt, const ArgRef* args, std::size_t count) {
  std::string out;
  out.reserve(fmt.size() + count * 8);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i + 1);
      if (close == std::string_view::npos) {
        out += "{?}";
        return out;
      }
      std::string_view inner = fmt.substr(i + 1, close - i - 1);
      FormatSpec spec;
      bool ok = true;
      if (!inner.empty()) {
        if (inner[0] == ':') {
          ok = parse_spec(inner.substr(1), spec);
        } else {
          ok = false;  // positional indexes are not supported
        }
      }
      if (!ok || next_arg >= count) {
        out += "{?}";
      } else {
        args[next_arg].render(out, spec);
      }
      ++next_arg;
      i = close;
      continue;
    }
    if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out += '}';
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace crowdweb::detail

// Calibrated GTSM corpus generator.
//
// Simulates the voluntary-check-in process over a synthetic city for the
// paper's collection period (April 2012 - February 2013) and produces a
// `data::Dataset`. The default configuration is calibrated to the corpus
// statistics the paper reports for the Foursquare New York dump:
// ~227,428 check-ins, 1,083 users, mean ~210 and median ~153 records per
// user (median < mean via right-skewed per-user check-in propensity),
// fewer than one record per user-day (sparsity), and April-June as the
// richest months.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "synth/city.hpp"
#include "synth/routine.hpp"
#include "util/civil_time.hpp"
#include "util/status.hpp"

namespace crowdweb::synth {

struct GeneratorConfig {
  std::uint64_t seed = 42;
  std::size_t user_count = 1'083;
  /// Collection period, inclusive start / exclusive end, epoch seconds.
  std::int64_t period_start = to_epoch_seconds({2012, 4, 1, 0, 0, 0});
  std::int64_t period_end = to_epoch_seconds({2013, 3, 1, 0, 0, 0});
  /// Per-month activity multiplier applied to every user's check-in
  /// propensity, indexed from the month of `period_start`. April-June are
  /// the rich months the paper selects for its experiments.
  std::vector<double> monthly_activity = {1.35, 1.45, 1.30, 1.00, 0.95, 0.90,
                                          0.85, 0.80, 0.75, 0.80, 0.70};
  RoutineConfig routine;
};

/// The full synthetic corpus: city, per-user profiles, and the dataset.
struct SyntheticCorpus {
  City city;
  std::vector<UserProfile> profiles;
  data::Dataset dataset;
};

/// Simulates the corpus. `city_config.seed` is overridden by
/// `config.seed` so one seed reproduces everything.
[[nodiscard]] Result<SyntheticCorpus> generate_corpus(const GeneratorConfig& config,
                                                      CityConfig city_config = {});

/// Convenience: the paper-calibrated default corpus at a given seed.
[[nodiscard]] Result<SyntheticCorpus> paper_corpus(std::uint64_t seed = 42);

/// A small corpus (fast to generate) for examples and tests: 60 users,
/// three months, 800 venues.
[[nodiscard]] Result<SyntheticCorpus> small_corpus(std::uint64_t seed = 42);

/// City box presets matching the two cities of the original Foursquare
/// dataset (Yang et al. 2014 released NYC and Tokyo dumps; the paper uses
/// NYC, which is the CityConfig default).
[[nodiscard]] CityConfig nyc_city_config();
[[nodiscard]] CityConfig tokyo_city_config();

}  // namespace crowdweb::synth

// User routine profiles.
//
// Each synthetic user has anchors (home, and for most users a workplace or
// campus) plus a set of *routine slots* — recurring visit intentions like
// "coffee near home on weekday mornings" or "lunch at an eatery near work
// around noon". Slots reference a root *category*, not a venue: a flexible
// slot picks a different concrete venue each day (the paper's Thai-lunch
// example), which is exactly the behaviour location abstraction recovers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/categories.hpp"
#include "data/checkin.hpp"
#include "synth/city.hpp"
#include "util/rng.hpp"

namespace crowdweb::synth {

/// Sentinel venue id for "no fixed venue".
inline constexpr data::VenueId kNoVenue = 0xFFFFFFFF;

/// A recurring visit intention.
struct RoutineSlot {
  std::string label;           ///< "work", "lunch", ... (for inspection)
  int start_minute = 0;        ///< window start, minutes after midnight
  int end_minute = 0;          ///< window end (exclusive)
  data::CategoryId root = data::kNoCategory;  ///< root category visited
  double participation = 1.0;  ///< probability of making the visit on an eligible day
  std::uint8_t day_mask = 0x7F;  ///< bit d (0=Sunday) set = eligible weekday
  data::VenueId anchor = kNoVenue;  ///< fixed venue; kNoVenue = flexible choice
  bool near_home = true;       ///< flexible slots search near home (else near work)
  double radius_m = 2'500.0;   ///< flexible search radius
};

inline constexpr std::uint8_t kWeekdays = 0b0111110;  // Mon..Fri
inline constexpr std::uint8_t kWeekend = 0b1000001;   // Sun, Sat
inline constexpr std::uint8_t kAllDays = 0b1111111;

/// One synthetic user's behavioural parameters.
struct UserProfile {
  data::UserId id = 0;
  data::VenueId home = kNoVenue;
  data::VenueId work = kNoVenue;  ///< kNoVenue for non-workers
  bool is_student = false;
  std::vector<RoutineSlot> slots;
  /// Probability that a made visit is voluntarily checked in (the GTSM
  /// sparsity mechanism). Drawn from a right-skewed distribution so the
  /// per-user record counts have median < mean like the real corpus.
  double checkin_propensity = 0.2;
  /// Expected number of extra unplanned visits per day.
  double exploration_rate = 0.10;
};

struct RoutineConfig {
  double worker_fraction = 0.78;
  double student_fraction = 0.10;
  /// Parameters of the lognormal check-in propensity (see UserProfile).
  double propensity_log_mean = -1.79;
  double propensity_log_stddev = 0.75;
  double propensity_cap = 0.95;
};

/// Builds per-user profiles over a generated city.
class RoutineGenerator {
 public:
  /// `city` must outlive the generator. Fails if the taxonomy lacks the
  /// root categories the routine templates reference.
  static Result<RoutineGenerator> create(const City& city, RoutineConfig config = {});

  /// Deterministically builds the profile of user `id` (seeded by the
  /// city seed and the user id).
  [[nodiscard]] UserProfile make_profile(data::UserId id) const;

 private:
  RoutineGenerator(const City& city, RoutineConfig config);

  const City* city_;
  RoutineConfig config_;
  // Resolved root category ids.
  data::CategoryId eatery_, nightlife_, outdoors_, professional_, residence_, shops_,
      college_, arts_, travel_;
};

}  // namespace crowdweb::synth

#include "synth/routine.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"

namespace crowdweb::synth {

namespace {

Result<data::CategoryId> resolve(const data::Taxonomy& taxonomy, std::string_view name) {
  if (const auto id = taxonomy.find(name)) return *id;
  return not_found(crowdweb::format("taxonomy lacks root category '{}'", name));
}

}  // namespace

RoutineGenerator::RoutineGenerator(const City& city, RoutineConfig config)
    : city_(&city), config_(config), eatery_(0), nightlife_(0), outdoors_(0),
      professional_(0), residence_(0), shops_(0), college_(0), arts_(0), travel_(0) {}

Result<RoutineGenerator> RoutineGenerator::create(const City& city, RoutineConfig config) {
  RoutineGenerator gen(city, config);
  const data::Taxonomy& tax = city.taxonomy();
  const auto bind = [&](data::CategoryId& slot, std::string_view name) -> Status {
    auto id = resolve(tax, name);
    if (!id) return id.status();
    slot = *id;
    return Status::ok();
  };
  for (const auto& [slot, name] :
       std::initializer_list<std::pair<data::CategoryId*, std::string_view>>{
           {&gen.eatery_, "Eatery"},
           {&gen.nightlife_, "Nightlife Spot"},
           {&gen.outdoors_, "Outdoors & Recreation"},
           {&gen.professional_, "Professional & Other Places"},
           {&gen.residence_, "Residence"},
           {&gen.shops_, "Shop & Service"},
           {&gen.college_, "College & University"},
           {&gen.arts_, "Arts & Entertainment"},
           {&gen.travel_, "Travel & Transport"}}) {
    const Status status = bind(*slot, name);
    if (!status.is_ok()) return status;
  }
  if (city.venues_of_root(gen.residence_).empty())
    return failed_precondition("city has no residence venues to anchor homes");
  return gen;
}

UserProfile RoutineGenerator::make_profile(data::UserId id) const {
  // Stream the user's randomness off the city seed so profiles are stable
  // regardless of generation order.
  Rng rng(city_->config().seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));

  UserProfile profile;
  profile.id = id;
  profile.is_student = rng.bernoulli(config_.student_fraction);
  const bool works = !profile.is_student && rng.bernoulli(config_.worker_fraction /
                                                          (1.0 - config_.student_fraction));

  profile.home = city_->random_venue(residence_, rng).value_or(kNoVenue);
  const geo::LatLon home_pos = city_->venues()[profile.home].position;
  if (profile.is_student) {
    profile.work = city_->random_venue_near(home_pos, college_, 15'000.0, rng)
                       .value_or(kNoVenue);
  } else if (works) {
    profile.work = city_->random_venue_near(home_pos, professional_, 20'000.0, rng)
                       .value_or(kNoVenue);
  }

  // Per-user jitter so the crowd is not perfectly synchronized: shift all
  // windows by up to +/-40 minutes and scale participation a little.
  const int shift = static_cast<int>(rng.uniform_int(-40, 40));
  const double zeal = rng.uniform(0.85, 1.15);
  const auto window = [shift](int start, int end) {
    return std::pair<int, int>{start + shift, end + shift};
  };
  const auto add_slot = [&](std::string label, std::pair<int, int> w, data::CategoryId root,
                            double participation, std::uint8_t mask, data::VenueId anchor,
                            bool near_home, double radius) {
    RoutineSlot slot;
    slot.label = std::move(label);
    slot.start_minute = std::max(0, w.first);
    slot.end_minute = std::min(24 * 60 - 1, w.second);
    slot.root = root;
    slot.participation = std::clamp(participation * zeal, 0.02, 0.98);
    slot.day_mask = mask;
    slot.anchor = anchor;
    slot.near_home = near_home;
    slot.radius_m = radius;
    profile.slots.push_back(std::move(slot));
  };

  // Morning coffee near home (flexible venue — the Thai-lunch effect).
  if (rng.bernoulli(0.7))
    add_slot("coffee", window(7 * 60 + 15, 8 * 60 + 45), eatery_, 0.50, kWeekdays,
             kNoVenue, true, 1'500.0);

  if (profile.work != kNoVenue) {
    add_slot(profile.is_student ? "campus" : "work", window(8 * 60 + 30, 9 * 60 + 45),
             profile.is_student ? college_ : professional_, 0.90, kWeekdays, profile.work,
             false, 0.0);
    // Lunch near the workplace, different eatery every day.
    add_slot("lunch", window(12 * 60, 13 * 60), eatery_, 0.80, kWeekdays, kNoVenue, false,
             1'200.0);
  } else {
    // Non-workers run errands around home instead.
    add_slot("errands", window(10 * 60, 12 * 60), shops_, 0.55, kWeekdays, kNoVenue, true,
             2'000.0);
    add_slot("lunch", window(12 * 60, 13 * 60 + 30), eatery_, 0.50, kAllDays, kNoVenue,
             true, 2'000.0);
  }

  // Evening activity: one dominant habit per user.
  const double habit_roll = rng.uniform();
  if (habit_roll < 0.40) {
    add_slot("gym", window(17 * 60 + 30, 19 * 60), outdoors_, 0.45, kWeekdays, kNoVenue,
             true, 3'000.0);
  } else if (habit_roll < 0.70) {
    add_slot("shopping", window(17 * 60 + 30, 19 * 60 + 30), shops_, 0.40, kWeekdays,
             kNoVenue, true, 3'000.0);
  } else {
    add_slot("night out", window(19 * 60, 22 * 60), nightlife_, 0.35,
             kWeekdays | kWeekend, kNoVenue, true, 4'000.0);
  }

  // Home in the evening (fixed anchor).
  add_slot("home", window(19 * 60 + 30, 21 * 60 + 30), residence_, 0.70, kAllDays,
           profile.home, true, 0.0);

  // Weekend outing: parks, culture, or shopping further afield.
  const double outing_roll = rng.uniform();
  const data::CategoryId outing_root =
      outing_roll < 0.45 ? outdoors_ : (outing_roll < 0.75 ? arts_ : shops_);
  add_slot("weekend outing", window(11 * 60, 16 * 60), outing_root, 0.60, kWeekend,
           kNoVenue, true, 8'000.0);

  // Occasional travel hub visits (commute check-ins).
  if (rng.bernoulli(0.25))
    add_slot("transit", window(8 * 60, 8 * 60 + 50), travel_, 0.30, kWeekdays, kNoVenue,
             true, 2'000.0);

  profile.checkin_propensity =
      std::min(config_.propensity_cap,
               std::exp(rng.normal(config_.propensity_log_mean, config_.propensity_log_stddev)));
  profile.exploration_rate = rng.uniform(0.05, 0.25);
  return profile;
}

}  // namespace crowdweb::synth

#include "synth/city.hpp"

#include <algorithm>
#include <cassert>

#include "util/format.hpp"

namespace crowdweb::synth {

namespace {

// Base popularity of each root category (fraction of all venues), in the
// order of Taxonomy::foursquare().roots(): Arts, College, Eatery,
// Nightlife, Outdoors, Professional, Residence, Shops, Travel. Mirrors
// the skew of the Foursquare NYC venue table (food and shops dominate).
constexpr double kBaseRootWeights[] = {0.05, 0.03, 0.28, 0.07, 0.08, 0.13, 0.16, 0.15, 0.05};

enum class District { kResidential, kCommercial, kNightlife, kCampus };

District pick_district(std::size_t index) {
  // Deterministic mix: roughly half residential, a third commercial, the
  // rest nightlife/campus, interleaved across the city.
  switch (index % 6) {
    case 0:
    case 2:
    case 4:
      return District::kResidential;
    case 1:
    case 3:
      return District::kCommercial;
    default:
      return index % 12 == 5 ? District::kCampus : District::kNightlife;
  }
}

std::vector<double> district_mix(District district, std::size_t root_count) {
  std::vector<double> mix(root_count);
  for (std::size_t i = 0; i < root_count; ++i)
    mix[i] = i < std::size(kBaseRootWeights) ? kBaseRootWeights[i] : 0.01;
  // Root positions (foursquare order): 2=Eatery, 5=Professional,
  // 6=Residence, 7=Shops, 3=Nightlife, 1=College, 8=Travel.
  switch (district) {
    case District::kResidential:
      if (root_count > 6) mix[6] *= 3.5;
      if (root_count > 7) mix[7] *= 1.3;
      break;
    case District::kCommercial:
      if (root_count > 5) mix[5] *= 3.0;
      if (root_count > 2) mix[2] *= 1.6;
      if (root_count > 8) mix[8] *= 1.5;
      break;
    case District::kNightlife:
      if (root_count > 3) mix[3] *= 4.0;
      if (root_count > 2) mix[2] *= 1.4;
      break;
    case District::kCampus:
      if (root_count > 1) mix[1] *= 6.0;
      break;
  }
  return mix;
}

}  // namespace

City::City(CityConfig config, const data::Taxonomy& taxonomy)
    : config_(config), taxonomy_(&taxonomy) {}

Result<City> City::generate(const CityConfig& config, const data::Taxonomy& taxonomy) {
  if (config.bounds.empty()) return invalid_argument("city bounds are empty");
  if (config.neighborhood_count == 0) return invalid_argument("need at least one neighborhood");
  if (config.venue_count == 0) return invalid_argument("need at least one venue");
  if (taxonomy.roots().empty()) return invalid_argument("taxonomy has no root categories");

  City city(config, taxonomy);
  Rng rng(config.seed);

  const std::size_t root_count = taxonomy.roots().size();
  const geo::BoundingBox& bounds = config.bounds;

  // Lay neighborhood centers; keep them inside an inner margin so venue
  // clusters stay mostly within bounds.
  const double lat_margin = (bounds.max_lat - bounds.min_lat) * 0.08;
  const double lon_margin = (bounds.max_lon - bounds.min_lon) * 0.08;
  city.neighborhoods_.reserve(config.neighborhood_count);
  for (std::size_t i = 0; i < config.neighborhood_count; ++i) {
    Neighborhood hood;
    hood.center = {rng.uniform(bounds.min_lat + lat_margin, bounds.max_lat - lat_margin),
                   rng.uniform(bounds.min_lon + lon_margin, bounds.max_lon - lon_margin)};
    hood.spread_meters = rng.uniform(400.0, 1'200.0);
    hood.category_mix = district_mix(pick_district(i), root_count);
    city.neighborhoods_.push_back(std::move(hood));
  }

  // Neighborhood size follows a soft power law: a few dense districts.
  std::vector<double> hood_weights(config.neighborhood_count);
  for (std::size_t i = 0; i < hood_weights.size(); ++i)
    hood_weights[i] = 1.0 / static_cast<double>(i + 1);

  city.by_root_.resize(root_count);
  city.root_trees_.reserve(root_count);
  for (std::size_t i = 0; i < root_count; ++i)
    city.root_trees_.emplace_back(bounds.inflated(0.02));

  city.venues_.reserve(config.venue_count);
  for (std::size_t v = 0; v < config.venue_count; ++v) {
    const std::size_t hood_index = rng.weighted_index(hood_weights);
    const Neighborhood& hood = city.neighborhoods_[hood_index % city.neighborhoods_.size()];

    // Position: Gaussian around the neighborhood center, clamped to bounds.
    geo::LatLon position = geo::offset_meters(hood.center,
                                              rng.normal(0.0, hood.spread_meters),
                                              rng.normal(0.0, hood.spread_meters));
    position.lat = std::clamp(position.lat, bounds.min_lat, bounds.max_lat);
    position.lon = std::clamp(position.lon, bounds.min_lon, bounds.max_lon);

    // Category: root by neighborhood mix, leaf uniform under the root.
    const std::size_t root_pos = rng.weighted_index(hood.category_mix);
    const data::CategoryId root = taxonomy.roots()[root_pos % root_count];
    const auto leaves = taxonomy.children(root);
    const data::CategoryId leaf =
        leaves.empty()
            ? root
            : leaves[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(leaves.size()) - 1))];

    data::VenueSpec venue;
    venue.id = static_cast<data::VenueId>(v);
    venue.category = leaf;
    venue.position = position;
    venue.name = crowdweb::format("{} #{}", taxonomy.name(leaf), v);
    city.by_root_[root_pos % root_count].push_back(venue.id);
    city.root_trees_[root_pos % root_count].insert(position, venue.id);
    city.venues_.push_back(std::move(venue));
  }
  return city;
}

std::span<const data::VenueId> City::venues_of_root(data::CategoryId root) const {
  const auto& roots = taxonomy_->roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (roots[i] == root) return by_root_[i];
  }
  return {};
}

std::optional<data::VenueId> City::random_venue_near(const geo::LatLon& near,
                                                     data::CategoryId root, double radius_m,
                                                     Rng& rng) const {
  const auto& roots = taxonomy_->roots();
  std::size_t root_pos = roots.size();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (roots[i] == root) {
      root_pos = i;
      break;
    }
  }
  if (root_pos == roots.size() || by_root_[root_pos].empty()) return std::nullopt;

  const auto nearby = root_trees_[root_pos].query_radius(near, radius_m);
  if (!nearby.empty()) {
    return nearby[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nearby.size()) - 1))];
  }
  if (const auto nearest = root_trees_[root_pos].nearest(near)) return nearest->id;
  return by_root_[root_pos].front();
}

std::optional<data::VenueId> City::random_venue(data::CategoryId root, Rng& rng) const {
  const auto ids = venues_of_root(root);
  if (ids.empty()) return std::nullopt;
  return ids[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
}

}  // namespace crowdweb::synth

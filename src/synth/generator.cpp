#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::synth {

namespace {

/// Index of `timestamp`'s month relative to the month of `start` (0-based).
std::size_t month_offset(std::int64_t start, std::int64_t timestamp) {
  const CivilTime a = to_civil(start);
  const CivilTime b = to_civil(timestamp);
  return static_cast<std::size_t>((b.year - a.year) * 12 + (b.month - a.month));
}

}  // namespace

Result<SyntheticCorpus> generate_corpus(const GeneratorConfig& config,
                                        CityConfig city_config) {
  if (config.user_count == 0) return invalid_argument("user_count must be positive");
  if (config.period_end <= config.period_start)
    return invalid_argument("collection period is empty");
  const std::size_t months =
      month_offset(config.period_start, config.period_end - 1) + 1;
  if (config.monthly_activity.size() < months)
    return invalid_argument(
        crowdweb::format("monthly_activity has {} entries but the period spans {} months",
                         config.monthly_activity.size(), months));

  city_config.seed = config.seed;
  auto city = City::generate(city_config, data::Taxonomy::foursquare());
  if (!city) return city.status();

  auto routines = RoutineGenerator::create(*city, config.routine);
  if (!routines) return routines.status();

  data::DatasetBuilder builder;
  for (const data::VenueSpec& venue : city->venues()) {
    const Status status = builder.add_venue(venue);
    if (!status.is_ok()) return status;
  }

  std::vector<UserProfile> profiles;
  profiles.reserve(config.user_count);

  Rng corpus_rng(config.seed ^ 0xc2b2ae3d27d4eb4fULL);
  const std::int64_t first_day = day_index(config.period_start);
  const std::int64_t last_day = day_index(config.period_end - 1);

  // Root categories drawn for unplanned "exploration" visits.
  const data::Taxonomy& tax = city->taxonomy();
  const std::vector<data::CategoryId> roots(tax.roots().begin(), tax.roots().end());
  std::vector<double> exploration_weights(roots.size(), 1.0);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const std::string& name = tax.name(roots[i]);
    if (name == "Eatery" || name == "Shop & Service") exploration_weights[i] = 2.5;
    if (name == "Residence") exploration_weights[i] = 0.2;
  }

  for (data::UserId user = 0; user < config.user_count; ++user) {
    UserProfile profile = routines->make_profile(user);
    Rng rng = corpus_rng.fork(user + 1);

    for (std::int64_t day = first_day; day <= last_day; ++day) {
      const std::int64_t day_start = day * 86'400;
      const int weekday = day_of_week(day_start + 12 * 3'600);
      const std::size_t month = month_offset(config.period_start, day_start + 12 * 3'600);
      const double activity = config.monthly_activity[month];
      const double record_probability =
          std::min(1.0, profile.checkin_propensity * activity);

      // Planned routine visits.
      for (const RoutineSlot& slot : profile.slots) {
        if ((slot.day_mask & (1u << weekday)) == 0) continue;
        if (!rng.bernoulli(slot.participation)) continue;

        // Visit time: normal around the window middle, clamped inside.
        const double mid = (slot.start_minute + slot.end_minute) / 2.0;
        const double spread = std::max(1.0, (slot.end_minute - slot.start_minute) / 4.0);
        const int minute = static_cast<int>(std::clamp(
            rng.normal(mid, spread), static_cast<double>(slot.start_minute),
            static_cast<double>(slot.end_minute - 1)));

        data::VenueId venue_id = slot.anchor;
        if (venue_id == kNoVenue) {
          const geo::LatLon ref =
              (slot.near_home || profile.work == kNoVenue)
                  ? city->venues()[profile.home].position
                  : city->venues()[profile.work].position;
          const auto chosen = city->random_venue_near(ref, slot.root, slot.radius_m, rng);
          if (!chosen) continue;  // city lacks this category entirely
          venue_id = *chosen;
        }

        // The visit happened; record it only if the user checks in.
        if (!rng.bernoulli(record_probability)) continue;

        const data::VenueSpec& venue = city->venues()[venue_id];
        data::CheckIn checkin;
        checkin.user = user;
        checkin.venue = venue_id;
        checkin.category = venue.category;
        checkin.position = venue.position;
        checkin.timestamp = day_start + minute * 60 + rng.uniform_int(0, 59);
        const Status status = builder.add_checkin(checkin);
        if (!status.is_ok()) return status;
      }

      // Unplanned exploration visits.
      const std::uint32_t extras = rng.poisson(profile.exploration_rate);
      for (std::uint32_t e = 0; e < extras; ++e) {
        const std::size_t root_pos = rng.weighted_index(exploration_weights);
        if (root_pos >= roots.size()) continue;
        const auto venue_id = city->random_venue(roots[root_pos], rng);
        if (!venue_id) continue;
        if (!rng.bernoulli(record_probability)) continue;
        const data::VenueSpec& venue = city->venues()[*venue_id];
        data::CheckIn checkin;
        checkin.user = user;
        checkin.venue = *venue_id;
        checkin.category = venue.category;
        checkin.position = venue.position;
        checkin.timestamp =
            day_start + rng.uniform_int(10 * 3'600, 22 * 3'600);  // 10:00-22:00
        const Status status = builder.add_checkin(checkin);
        if (!status.is_ok()) return status;
      }
    }
    profiles.push_back(std::move(profile));
  }

  SyntheticCorpus corpus{std::move(city).value(), std::move(profiles), builder.build()};
  log_info("synthetic corpus: {} users, {} venues, {} check-ins",
           corpus.dataset.user_count(), corpus.dataset.venue_count(),
           corpus.dataset.checkin_count());
  return corpus;
}

Result<SyntheticCorpus> paper_corpus(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  return generate_corpus(config);
}

CityConfig nyc_city_config() { return CityConfig{}; }

CityConfig tokyo_city_config() {
  CityConfig config;
  geo::BoundingBox box;
  box.min_lat = 35.53;
  box.max_lat = 35.82;
  box.min_lon = 139.55;
  box.max_lon = 139.92;
  config.bounds = box;
  config.neighborhood_count = 30;  // denser polycentric structure
  config.venue_count = 5'000;
  return config;
}

Result<SyntheticCorpus> small_corpus(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  config.user_count = 60;
  config.period_end = to_epoch_seconds({2012, 7, 1, 0, 0, 0});
  config.monthly_activity = {1.35, 1.45, 1.30};
  CityConfig city;
  city.venue_count = 800;
  city.neighborhood_count = 12;
  return generate_corpus(config, city);
}

}  // namespace crowdweb::synth

// Synthetic city builder.
//
// Generates a venue database with the spatial structure of a real GTSM
// city: venues clump into neighborhoods (Gaussian clusters around
// neighborhood centers), each neighborhood has its own category mix
// (residential vs. commercial vs. nightlife districts), and category
// frequencies follow the skew observed in Foursquare data (eateries and
// shops dominate; airports are rare).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/categories.hpp"
#include "data/checkin.hpp"
#include "geo/grid.hpp"
#include "geo/point.hpp"
#include "geo/quadtree.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace crowdweb::synth {

struct Neighborhood {
  geo::LatLon center;
  double spread_meters = 800.0;
  /// Sampling weight of each root category inside this neighborhood,
  /// indexed by position in Taxonomy::roots().
  std::vector<double> category_mix;
};

struct CityConfig {
  /// Defaults to the New York City box of the paper's dataset.
  geo::BoundingBox bounds = [] {
    geo::BoundingBox box;
    box.min_lat = 40.55;
    box.max_lat = 40.92;
    box.min_lon = -74.05;
    box.max_lon = -73.70;
    return box;
  }();
  std::size_t neighborhood_count = 24;
  std::size_t venue_count = 4000;
  std::uint64_t seed = 42;
};

/// An immutable generated city: venues, neighborhoods, and spatial/category
/// indexes for fast venue selection during agenda simulation.
class City {
 public:
  static Result<City> generate(const CityConfig& config, const data::Taxonomy& taxonomy);

  [[nodiscard]] const CityConfig& config() const noexcept { return config_; }
  [[nodiscard]] const data::Taxonomy& taxonomy() const noexcept { return *taxonomy_; }
  [[nodiscard]] std::span<const data::VenueSpec> venues() const noexcept {
    return venues_;
  }
  [[nodiscard]] std::span<const Neighborhood> neighborhoods() const noexcept {
    return neighborhoods_;
  }

  /// Venue ids whose *root* category is `root`.
  [[nodiscard]] std::span<const data::VenueId> venues_of_root(data::CategoryId root) const;

  /// A uniformly random venue of the given root category within
  /// `radius_m` of `near`; falls back to the nearest such venue, then to
  /// any venue of the category. Returns nullopt only when the city has no
  /// venue of that root category at all.
  [[nodiscard]] std::optional<data::VenueId> random_venue_near(
      const geo::LatLon& near, data::CategoryId root, double radius_m, Rng& rng) const;

  /// A uniformly random venue of the root category anywhere in the city.
  [[nodiscard]] std::optional<data::VenueId> random_venue(data::CategoryId root,
                                                          Rng& rng) const;

 private:
  City(CityConfig config, const data::Taxonomy& taxonomy);

  CityConfig config_;
  const data::Taxonomy* taxonomy_;
  std::vector<data::VenueSpec> venues_;
  std::vector<Neighborhood> neighborhoods_;
  std::vector<std::vector<data::VenueId>> by_root_;  // indexed by root position
  std::vector<geo::QuadTree> root_trees_;            // one spatial index per root
};

}  // namespace crowdweb::synth

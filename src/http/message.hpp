// HTTP/1.1 message types and an incremental request parser.
//
// Scope: the subset a localhost JSON API needs — GET/POST/HEAD,
// Content-Length bodies (no chunked transfer), ASCII headers, bounded
// sizes. The parser consumes a growing buffer and reports NeedMore until
// a full request is available, so the server can feed it straight from
// epoll reads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace crowdweb::http {

struct Request {
  std::string method;   ///< "GET", uppercased
  std::string path;     ///< decoded path without query ("/api/crowd")
  std::string query;    ///< raw query string without '?'
  std::string version;  ///< "HTTP/1.1"
  /// Header names lowercased.
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;
  /// Decoded query parameter, if present.
  [[nodiscard]] std::optional<std::string> query_param(std::string_view name) const;
  [[nodiscard]] bool keep_alive() const;
};

struct Response {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
  /// Non-empty turns this into a streaming response: the server keeps
  /// the connection open after writing `body` (the initial payload) and
  /// fans subsequent Server::publish_stream(channel, ...) bytes into
  /// it. Serialized without Content-Length and always keep-alive.
  std::string stream_channel;

  static Response text(int status, std::string body,
                       std::string content_type = "text/plain; charset=utf-8");
  static Response json(int status, std::string body);
  static Response html(int status, std::string body);
  static Response svg(int status, std::string body);
  static Response not_found_404();
  static Response bad_request_400(std::string message);
};

/// Standard reason phrase for a status code.
[[nodiscard]] std::string_view reason_phrase(int status) noexcept;

/// Serializes a response (adds Content-Length; keeps existing headers).
[[nodiscard]] std::string serialize(const Response& response, bool keep_alive);

enum class ParseState { kNeedMore, kComplete, kError };

struct ParseResult {
  ParseState state = ParseState::kNeedMore;
  Request request;           ///< valid when state == kComplete
  std::size_t consumed = 0;  ///< bytes consumed from the buffer when complete
  std::string error;         ///< human-readable when state == kError
};

struct ParseLimits {
  std::size_t max_head_bytes = 16 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
};

/// Attempts to parse one request from the front of `buffer`.
[[nodiscard]] ParseResult parse_request(std::string_view buffer, ParseLimits limits = {});

}  // namespace crowdweb::http

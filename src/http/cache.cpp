#include "http/cache.hpp"

#include <algorithm>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace crowdweb::http {

namespace {

/// FNV-1a 64-bit; cheap, stable, and good enough for a strong validator
/// when combined with the epoch (a hash collision *within* one epoch on
/// one target would be needed to serve a wrong 304).
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed = 14695981039346656037ull) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Resident cost of an entry: key (stored once, referenced by the
/// index), body, headers, the pre-serialized wire image, plus a fixed
/// allowance for node overhead.
std::size_t cost_of(std::string_view key, const CachedResponse& response) {
  std::size_t cost = key.size() + response.body.size() + response.etag.size() +
                     response.wire.size() + 128;
  for (const auto& [name, value] : response.headers) cost += name.size() + value.size() + 32;
  return cost;
}

}  // namespace

ResponseCache::ResponseCache(ResponseCacheConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.max_bytes == 0) config_.max_bytes = 1;
  shard_budget_ = std::max<std::size_t>(1, config_.max_bytes / config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  init_metrics();
}

void ResponseCache::init_metrics() {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<telemetry::Registry>();
    metrics_ = own_metrics_.get();
  }
  hits_ = &metrics_->counter("crowdweb_http_cache_hits_total",
                             "Cacheable requests served from the response cache.");
  misses_ = &metrics_->counter(
      "crowdweb_http_cache_misses_total",
      "Cacheable requests that missed the cache and executed their handler.");
  evictions_ = &metrics_->counter("crowdweb_http_cache_evictions_total",
                                  "Entries evicted to keep the cache under its byte budget.");
  not_modified_ = &metrics_->counter(
      "crowdweb_http_cache_not_modified_total",
      "304 responses served off a cached ETag via If-None-Match.");
  bytes_gauge_ = &metrics_->gauge("crowdweb_http_cache_bytes",
                                  "Resident bytes of live cache entries.");
  entries_gauge_ =
      &metrics_->gauge("crowdweb_http_cache_entries", "Live cache entries.");
}

std::string ResponseCache::make_key(std::string_view method, std::string_view target,
                                    std::uint64_t epoch) const {
  return crowdweb::format("{} {}@{}", method, target, epoch);
}

ResponseCache::Shard& ResponseCache::shard_for(std::string_view key) {
  return *shards_[fnv1a(key) % shards_.size()];
}

std::shared_ptr<const CachedResponse> ResponseCache::lookup(std::string_view method,
                                                            std::string_view target,
                                                            bool record_miss) {
  const std::string key = make_key(method, target, epoch());
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(std::string_view(key));
  if (it == shard.index.end()) {
    if (record_miss) misses_->increment();
    return nullptr;
  }
  // Refresh recency: splice the entry to the MRU front. Iterators and
  // the string_view key in the index stay valid across splice.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->increment();
  return it->second->response;
}

std::shared_ptr<const CachedResponse> ResponseCache::insert(std::string_view method,
                                                            std::string_view target,
                                                            const Response& response) {
  const std::uint64_t at_epoch = epoch();
  auto cached = std::make_shared<CachedResponse>();
  cached->status = response.status;
  cached->headers = response.headers;
  cached->body = response.body;
  cached->epoch = at_epoch;
  const auto tag = epoch_tag();
  cached->etag = tag ? crowdweb::format("\"{}-{:x}\"", *tag, fnv1a(response.body))
                     : crowdweb::format("\"{}-{:x}\"", at_epoch, fnv1a(response.body));
  cached->headers["ETag"] = cached->etag;
  {  // render the keep-alive hit image once; every hit serves it verbatim
    Response hit;
    hit.status = cached->status;
    hit.headers = cached->headers;
    hit.headers["X-Cache"] = "hit";
    hit.body = cached->body;
    cached->wire = serialize(hit, /*keep_alive=*/true);
  }

  std::string key = make_key(method, target, at_epoch);
  const std::size_t cost = cost_of(key, *cached);
  if (cost > shard_budget_) return cached;  // would evict the whole shard for one entry

  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(std::string_view(key)); it != shard.index.end()) {
    // Replace in place (two workers raced on the same miss).
    shard.bytes -= it->second->cost;
    bytes_gauge_->add(-static_cast<double>(it->second->cost));
    it->second->response = cached;
    it->second->cost = cost;
    shard.bytes += cost;
    bytes_gauge_->add(static_cast<double>(cost));
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return cached;
  }
  shard.lru.push_front(Entry{std::move(key), cached, cost});
  shard.index.emplace(std::string_view(shard.lru.front().key), shard.lru.begin());
  shard.bytes += cost;
  bytes_gauge_->add(static_cast<double>(cost));
  entries_gauge_->add(1.0);
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.cost;
    bytes_gauge_->add(-static_cast<double>(victim.cost));
    entries_gauge_->add(-1.0);
    evictions_->increment();
    shard.index.erase(std::string_view(victim.key));
    shard.lru.pop_back();
  }
  return cached;
}

ResponseCacheStats ResponseCache::stats() const {
  ResponseCacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  stats.not_modified = not_modified_->value();
  stats.byte_budget = config_.max_bytes;
  stats.epoch = epoch();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

bool etag_matches(std::string_view if_none_match, std::string_view etag) {
  for (std::string_view token : split(if_none_match, ',')) {
    token = trim(token);
    if (token == "*") return true;
    if (token.starts_with("W/")) token.remove_prefix(2);
    if (token == etag) return true;
  }
  return false;
}

}  // namespace crowdweb::http

// Path router: method + pattern -> handler.
//
// Patterns are '/'-separated; a segment starting with ':' captures the
// corresponding request segment into named params ("/api/user/:id"). The
// first registered matching route wins; a path that matches with a
// different method yields 405.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.hpp"

namespace crowdweb::http {

/// Captured ":name" path parameters.
using PathParams = std::map<std::string, std::string, std::less<>>;

using Handler = std::function<Response(const Request&, const PathParams&)>;

/// Per-route flags (see Router::add).
struct RouteOptions {
  /// The route's GET responses are a pure function of (target, epoch)
  /// and may be served from a ResponseCache. Only meaningful for GET
  /// (and the HEAD fallback).
  bool cacheable = false;
};

class Router {
 public:
  /// Registers a handler ("GET", "/api/user/:id", ...). Method is
  /// uppercased; duplicate registrations stack (first match wins).
  void add(std::string_view method, std::string_view pattern, Handler handler,
           RouteOptions options = {});

  void get(std::string_view pattern, Handler handler) { add("GET", pattern, std::move(handler)); }
  void post(std::string_view pattern, Handler handler) {
    add("POST", pattern, std::move(handler));
  }
  /// GET route whose responses the server may cache per (target, epoch).
  void get_cached(std::string_view pattern, Handler handler) {
    add("GET", pattern, std::move(handler), RouteOptions{.cacheable = true});
  }

  /// Routes the request; 404 for unknown paths, 405 (with an Allow
  /// header naming the path's registered methods) for known paths with
  /// the wrong method. Handler exceptions become 500s.
  ///
  /// When `matched_pattern` is non-null it receives the *registered
  /// pattern* of the route that served (or 405'd) the request — e.g.
  /// "/api/crowd/:window", never the raw URL — so metric labels keyed on
  /// it stay bounded no matter what clients send. Unmatched paths leave
  /// it empty.
  [[nodiscard]] Response dispatch(const Request& request,
                                  std::string* matched_pattern = nullptr) const;

  /// True when the request would dispatch to a route registered with
  /// `cacheable` (GET, or HEAD falling back to a GET route). The server
  /// consults this *before* dispatching to decide whether the response
  /// cache applies. When `matched_pattern` is non-null it receives the
  /// route's registered pattern on a true return.
  [[nodiscard]] bool cacheable(const Request& request,
                               std::string* matched_pattern = nullptr) const;

 private:
  struct Route {
    std::string method;
    std::string pattern;                ///< normalized registration pattern
    std::vector<std::string> segments;  ///< ":x" marks a capture
    Handler handler;
    RouteOptions options;
  };

  static std::vector<std::string> split_path(std::string_view path);
  static bool match(const Route& route, const std::vector<std::string>& segments,
                    PathParams& params);

  std::vector<Route> routes_;
};

}  // namespace crowdweb::http

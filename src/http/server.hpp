// Epoll HTTP/1.1 server with off-loop request execution.
//
// One event-loop thread does only socket work — accept, non-blocking
// read, incremental parse, and write — while parsed requests are
// dispatched to a fixed worker pool (ServerConfig::worker_threads).
// Workers run the router handler (or serve a ResponseCache hit),
// serialize the response, and hand the bytes back to the loop through a
// completion queue + eventfd wakeup; the loop flushes responses to each
// connection strictly in request order, so keep-alive pipelining still
// works while a 50 ms SVG render on one connection no longer blocks
// any other. worker_threads = 0 runs handlers inline on the loop
// thread (the pre-pool behavior, kept as a measurable baseline).
//
// With ServerConfig::cache set, GET routes marked cacheable in the
// router are served from the epoch-keyed response cache: hits skip the
// handler entirely, misses execute and populate the cache, and
// If-None-Match revalidation against the entry's strong ETag yields a
// 304 (see http/cache.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "http/cache.hpp"
#include "http/router.hpp"
#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace crowdweb::http {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (see Server::port()).
  std::uint16_t port = 0;
  ParseLimits limits;
  int max_connections = 256;
  /// Handler threads. < 0 = one per hardware thread
  /// (std::thread::hardware_concurrency); 0 = run handlers inline on
  /// the event-loop thread; >= 1 = a fixed pool of that size.
  int worker_threads = -1;
  /// listen(2) backlog for the accept queue. Raise it for bursty
  /// benchmark/production traffic so connection storms don't see
  /// ECONNREFUSED before the loop gets to accept.
  int listen_backlog = 64;
  /// Optional epoch-keyed response cache for GET routes registered
  /// with Router::get_cached. Must outlive the server. Null = every
  /// request executes its handler.
  ResponseCache* cache = nullptr;
  /// Telemetry registry the server records onto (crowdweb_http_*
  /// families; see docs/OBSERVABILITY.md). Must outlive the server.
  /// Null = the server keeps a private registry, so `stats()` works
  /// either way; sharing one registry with `/metrics` is how the
  /// counters become scrapable.
  telemetry::Registry* metrics = nullptr;
  /// Upper bounds (seconds) of the request-latency histogram; empty =
  /// telemetry::default_latency_buckets().
  std::vector<double> latency_buckets;
  /// Connections (keep-alive or streaming) with no socket traffic for
  /// this long are closed by the loop's sweep. Zero disables the sweep.
  /// Connections with a request still executing are never reaped.
  std::chrono::milliseconds idle_timeout{60'000};
  /// Per-connection cap on buffered unsent stream bytes; a subscriber
  /// that falls further behind than this is evicted (closed) so one
  /// slow consumer cannot pin memory.
  std::size_t stream_buffer_bytes = 256 * 1024;
  /// Interval between ": ping" comment frames on streaming connections
  /// (liveness for proxies and dead-peer detection). Zero disables.
  std::chrono::milliseconds stream_ping_interval{15'000};
};

/// Monotonic counters exposed by a running server. Since the telemetry
/// subsystem these are read back from the metrics registry (the
/// crowdweb_http_* families are the single accounting system); the
/// struct remains as a convenience snapshot.
struct ServerStats {
  std::uint64_t requests = 0;    ///< requests dispatched to the router
  std::uint64_t bad_requests = 0;  ///< parse failures answered with 400
  std::uint64_t connections = 0;   ///< connections accepted
  std::uint64_t responses_2xx = 0;  ///< responses with a 2xx status
  std::uint64_t responses_4xx = 0;  ///< responses with a 4xx status (incl. parse 400s)
  std::uint64_t responses_5xx = 0;  ///< responses with a 5xx status
  std::uint64_t bytes_written = 0;  ///< response bytes flushed to sockets
};

class Server {
 public:
  /// The router is copied; register all routes before starting.
  Server(Router router, ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, spawns the worker pool and the event loop.
  [[nodiscard]] Status start();

  /// Stops the workers and the loop, then joins (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The bound port (useful with port 0). 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Handler threads actually in use (0 = inline mode).
  [[nodiscard]] int worker_threads() const noexcept;

  /// Lifetime counters (monotonic across restarts of the same Server).
  [[nodiscard]] ServerStats stats() const noexcept;

  /// Fans `bytes` (already SSE-framed; see transport/sse.hpp) out to
  /// every connection subscribed to `channel`. Thread-safe and
  /// non-blocking: bytes are queued for the loop thread, which appends
  /// them to each subscriber's send buffer and evicts consumers that
  /// fall behind stream_buffer_bytes. A no-op while the server is
  /// stopped or the channel has no subscribers.
  void publish_stream(const std::string& channel, std::string_view bytes);

  /// Connections currently subscribed to `channel`. Thread-safe;
  /// publishers use it to skip rendering for silent channels.
  [[nodiscard]] std::size_t stream_subscribers(const std::string& channel) const;

  /// Channels with at least one subscriber. Thread-safe.
  [[nodiscard]] std::vector<std::string> stream_channels() const;

  /// Connections closed by the idle-timeout sweep (lifetime count).
  [[nodiscard]] std::uint64_t idle_closed() const noexcept;

  /// Streaming subscribers evicted for falling behind (lifetime count).
  [[nodiscard]] std::uint64_t stream_evictions() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdweb::http

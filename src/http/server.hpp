// Single-threaded epoll HTTP/1.1 server.
//
// Serves a Router on a loopback (or any) TCP port from one event-loop
// thread: non-blocking accept/read/write, per-connection buffers,
// keep-alive, and bounded request sizes. start() binds and spawns the
// loop; stop() (or the destructor) wakes it via an eventfd and joins.
// Handlers run on the loop thread — CrowdWeb handlers only read immutable
// platform state, so no locking is needed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/router.hpp"
#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace crowdweb::http {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (see Server::port()).
  std::uint16_t port = 0;
  ParseLimits limits;
  int max_connections = 256;
  /// Telemetry registry the server records onto (crowdweb_http_*
  /// families; see docs/OBSERVABILITY.md). Must outlive the server.
  /// Null = the server keeps a private registry, so `stats()` works
  /// either way; sharing one registry with `/metrics` is how the
  /// counters become scrapable.
  telemetry::Registry* metrics = nullptr;
  /// Upper bounds (seconds) of the request-latency histogram; empty =
  /// telemetry::default_latency_buckets().
  std::vector<double> latency_buckets;
};

/// Monotonic counters exposed by a running server. Since the telemetry
/// subsystem these are read back from the metrics registry (the
/// crowdweb_http_* families are the single accounting system); the
/// struct remains as a convenience snapshot.
struct ServerStats {
  std::uint64_t requests = 0;    ///< requests dispatched to the router
  std::uint64_t bad_requests = 0;  ///< parse failures answered with 400
  std::uint64_t connections = 0;   ///< connections accepted
  std::uint64_t responses_2xx = 0;  ///< responses with a 2xx status
  std::uint64_t responses_4xx = 0;  ///< responses with a 4xx status (incl. parse 400s)
  std::uint64_t responses_5xx = 0;  ///< responses with a 5xx status
  std::uint64_t bytes_written = 0;  ///< response bytes flushed to sockets
};

class Server {
 public:
  /// The router is copied; register all routes before starting.
  Server(Router router, ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loop.
  [[nodiscard]] Status start();

  /// Stops the loop and joins (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The bound port (useful with port 0). 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Lifetime counters (monotonic across restarts of the same Server).
  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdweb::http

// Epoch-keyed HTTP response cache for the serving path.
//
// Every crowd/flow/viz response is a pure function of (route, epoch):
// the ingestion worker publishes immutable snapshots (RCU-style, see
// src/ingest/snapshot.hpp), so a response rendered for epoch E stays
// correct for as long as E is the current epoch — and becomes garbage
// the moment E+1 publishes. The cache exploits that by folding the
// epoch into the key: entries are looked up as (method, target,
// current_epoch), so an epoch bump makes every stale entry unreachable
// with no explicit invalidation. Dead epochs age out under LRU
// pressure from the byte budget.
//
// The cache is sharded (hash of the key picks a shard, each shard has
// its own mutex + LRU list) so the server's worker pool can hit it
// concurrently without a global lock. Each cached body carries a
// strong ETag ("<epoch>-<hash>") so repeat clients holding the body
// can revalidate with If-None-Match and get a 304 instead of bytes.
//
// Wiring: construct one cache per process, point
// ServerConfig::cache at it, and mark cacheable GET routes in the
// router (Router::get_cached). In live mode, hook epoch bumps with
//   worker->hub().on_publish([&](const auto& s) { cache.set_epoch(s.epoch); });
// In static/batch mode the epoch stays 0 and entries live until evicted.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "http/message.hpp"
#include "telemetry/metrics.hpp"

namespace crowdweb::http {

struct ResponseCacheConfig {
  /// Total byte budget across all shards (bodies + headers + keys).
  /// Oversized responses (bigger than one shard's share) are never
  /// cached.
  std::size_t max_bytes = 64 * 1024 * 1024;
  /// Lock shards; more shards = less contention, slightly worse LRU.
  std::size_t shards = 8;
  /// Telemetry registry the cache records onto (crowdweb_http_cache_*
  /// families; see docs/OBSERVABILITY.md). Must outlive the cache.
  /// Null = private registry (stats() still works). Attach at most one
  /// cache per registry.
  telemetry::Registry* metrics = nullptr;
};

/// Aggregate counters for /api/status and tests.
struct ResponseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t not_modified = 0;  ///< 304s served off If-None-Match
  std::size_t bytes = 0;           ///< resident cost of live entries
  std::size_t entries = 0;
  std::size_t byte_budget = 0;
  std::uint64_t epoch = 0;         ///< current key epoch
};

/// One cached response, shared with readers (a hit pins the entry even
/// if it is evicted an instant later).
struct CachedResponse {
  int status = 200;
  std::map<std::string, std::string> headers;  ///< includes ETag
  std::string body;
  /// Quoted strong validator, "\"<epoch>-<hash>\"" — the epoch part is
  /// the numeric key epoch, or the deployment's epoch tag when one is
  /// set (sharded mode uses the dotted epoch vector, "3.5.2-<hash>").
  std::string etag;
  std::uint64_t epoch = 0;
  /// Pre-serialized keep-alive GET hit (status line + headers with ETag
  /// and "X-Cache: hit" + body), rendered once at insert. The server's
  /// loop-thread fast path writes it verbatim — a hit costs one memcpy,
  /// not a header-map copy plus re-serialization.
  std::string wire;
};

class ResponseCache {
 public:
  explicit ResponseCache(ResponseCacheConfig config = {});
  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// The epoch new lookups and inserts are keyed on.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Keys all subsequent lookups/inserts on `epoch`. Entries of other
  /// epochs become unreachable immediately and are reclaimed by LRU
  /// eviction. Safe to call from any thread (the ingest worker calls it
  /// from its publish path).
  void set_epoch(std::uint64_t epoch) noexcept {
    epoch_.store(epoch, std::memory_order_release);
  }

  /// Same, with a human-readable rendition of the epoch that replaces
  /// the numeric epoch in ETags — a sharded deployment passes the mixed
  /// epoch vector as `epoch` and its dotted form (e.g. "3.5.2") as
  /// `tag`, so validators surface per-shard progress (see docs/API.md).
  /// Safe from any thread; shard publish hooks call it concurrently.
  void set_epoch(std::uint64_t epoch, std::string tag) {
    epoch_tag_.store(std::make_shared<const std::string>(std::move(tag)),
                     std::memory_order_release);
    set_epoch(epoch);
  }

  /// The current ETag tag (null when ETags render the numeric epoch).
  [[nodiscard]] std::shared_ptr<const std::string> epoch_tag() const noexcept {
    return epoch_tag_.load(std::memory_order_acquire);
  }

  /// Looks up (method, target) at the current epoch. A hit refreshes
  /// LRU recency and counts toward crowdweb_http_cache_hits_total; a
  /// miss counts toward ..._misses_total. Callers should only consult
  /// the cache for routes marked cacheable (Router::cacheable), so the
  /// miss counter means "cacheable request that had to execute".
  ///
  /// `record_miss = false` turns a failed lookup into a silent probe:
  /// the server's loop-thread fast path probes before dispatching to
  /// the worker pool, and the worker's own lookup then records the miss
  /// exactly once.
  [[nodiscard]] std::shared_ptr<const CachedResponse> lookup(std::string_view method,
                                                             std::string_view target,
                                                             bool record_miss = true);

  /// Caches `response` for (method, target) at the current epoch and
  /// returns the stored entry (with its ETag computed and added to the
  /// stored headers). Evicts LRU entries until the shard fits its
  /// budget share. Responses bigger than one shard's budget are not
  /// cached (returns the entry anyway so the caller can use its ETag).
  std::shared_ptr<const CachedResponse> insert(std::string_view method,
                                               std::string_view target,
                                               const Response& response);

  [[nodiscard]] ResponseCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedResponse> response;
    std::size_t cost = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  [[nodiscard]] std::string make_key(std::string_view method, std::string_view target,
                                     std::uint64_t epoch) const;
  [[nodiscard]] Shard& shard_for(std::string_view key);
  void init_metrics();

  ResponseCacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::shared_ptr<const std::string>> epoch_tag_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::unique_ptr<telemetry::Registry> own_metrics_;
  telemetry::Registry* metrics_ = nullptr;
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
  telemetry::Counter* evictions_ = nullptr;
  telemetry::Counter* not_modified_ = nullptr;
  telemetry::Gauge* bytes_gauge_ = nullptr;
  telemetry::Gauge* entries_gauge_ = nullptr;

  friend class ResponseCacheTestPeer;

 public:
  /// Counts a 304 served off this cache (the server calls this when an
  /// If-None-Match revalidation matches a cached ETag).
  void note_not_modified() noexcept { not_modified_->increment(); }
};

/// True when `if_none_match` (the raw If-None-Match header value) names
/// `etag` — exact match, weak-prefix match ("W/<etag>"), or "*".
[[nodiscard]] bool etag_matches(std::string_view if_none_match, std::string_view etag);

}  // namespace crowdweb::http

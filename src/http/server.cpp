#include "http/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>

#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::http {

namespace {

/// Per-connection cap on parsed-but-unanswered requests. Past it the
/// loop stops reading the socket (TCP backpressure) until responses
/// flush, so a hostile pipeliner can't grow the work queue unboundedly.
constexpr std::uint64_t kMaxInflightPerConnection = 64;

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// A finished response on its way back to the loop thread: serialized
/// bytes plus what the loop needs for metrics and ordering.
struct Completion {
  std::uint64_t conn = 0;  ///< connection id (not fd — fds get reused)
  std::uint64_t seq = 0;   ///< request order within the connection
  std::string bytes;       ///< serialized response
  bool close_after = false;
  std::string_view method;  ///< bounded label (method_label), empty = skip route metrics
  std::string pattern;      ///< matched route pattern for metric labels
  int status = 0;
  double seconds = 0.0;     ///< handler wall time
  bool count_route = false;  ///< false for parse errors (no route to label)
  /// Non-empty: this response opened a stream — after its bytes flush,
  /// the connection subscribes to the channel instead of closing.
  std::string stream_channel;
};

struct Connection {
  Fd fd;
  std::uint64_t id = 0;
  std::string inbox;   ///< bytes read, not yet parsed
  std::string outbox;  ///< bytes to write
  bool close_after_write = false;
  bool stop_parsing = false;  ///< saw Connection: close or a parse error
  std::uint64_t next_seq = 0;    ///< assigned to parsed requests
  std::uint64_t next_flush = 0;  ///< next seq to append to the outbox
  std::map<std::uint64_t, Completion> ready;  ///< completed out of order
  /// Channel this connection streams (empty = a plain request cycle).
  /// Once set, no further requests are parsed from the socket.
  std::string stream_channel;
  /// Last socket traffic (bytes read, or response bytes written) — the
  /// idle sweep's clock.
  std::chrono::steady_clock::time_point last_activity;

  /// Requests parsed but not yet flushed to the outbox.
  [[nodiscard]] std::uint64_t inflight() const noexcept { return next_seq - next_flush; }
};

/// A parsed request waiting for a pool worker.
struct Work {
  std::uint64_t conn = 0;
  std::uint64_t seq = 0;
  Request request;
  bool keep_alive = true;
};

/// Collapses arbitrary client-supplied methods onto a bounded label set.
std::string_view method_label(std::string_view method) {
  for (const std::string_view known :
       {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"}) {
    if (method == known) return known;
  }
  return "OTHER";
}

}  // namespace

struct Server::Impl {
  Router router;
  ServerConfig config;
  Fd listener;
  Fd wakeup;  // eventfd: stop() and workers interrupt epoll_wait with it
  Fd epoll;
  std::uint16_t bound_port = 0;
  std::thread loop_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};

  // Worker pool. The loop thread enqueues Work; workers execute and
  // push Completions, then poke the eventfd so the loop flushes them.
  int resolved_workers = 0;
  std::vector<std::thread> workers;
  std::mutex work_mutex;
  std::condition_variable work_cv;
  std::deque<Work> work_queue;  // guarded by work_mutex
  bool workers_stop = false;    // guarded by work_mutex
  std::mutex done_mutex;
  std::vector<Completion> done_queue;  // guarded by done_mutex

  // Telemetry: the crowdweb_http_* families are the server's only
  // accounting — ServerStats reads them back. `own_metrics` backs
  // servers constructed without an external registry.
  std::unique_ptr<telemetry::Registry> own_metrics;
  telemetry::Registry* metrics = nullptr;
  telemetry::CounterFamily* requests_by_route = nullptr;
  telemetry::HistogramFamily* latency_by_route = nullptr;
  telemetry::Counter* responses_2xx = nullptr;
  telemetry::Counter* responses_3xx = nullptr;
  telemetry::Counter* responses_4xx = nullptr;
  telemetry::Counter* responses_5xx = nullptr;
  telemetry::Counter* responses_other = nullptr;
  telemetry::Counter* parse_errors = nullptr;
  telemetry::Counter* connections_total = nullptr;
  telemetry::Counter* bytes_total = nullptr;
  telemetry::Gauge* connections_active = nullptr;
  telemetry::Gauge* queue_depth = nullptr;
  telemetry::Gauge* workers_gauge = nullptr;
  telemetry::Counter* idle_closed_total = nullptr;
  telemetry::GaugeFamily* sse_subscribers_family = nullptr;
  telemetry::CounterFamily* sse_events_family = nullptr;
  telemetry::Counter* sse_evictions_total = nullptr;

  struct RouteMetrics {
    telemetry::Counter* requests;
    telemetry::Histogram* latency;
  };
  /// (method, route pattern) -> cached cells. Only the loop thread
  /// records route metrics (workers ship labels back in Completions),
  /// so no lock; bounded because patterns come from the router and
  /// methods from method_label().
  std::map<std::string, RouteMetrics, std::less<>> route_cache;

  /// Loop-thread memo: request path -> (cacheable, route pattern). The
  /// route table is immutable while the server runs, so the answer per
  /// path is stable; memoizing turns the fast path's per-request route
  /// scan (segment split + matching, several allocations) into one hash
  /// lookup. Only the loop thread touches it. Capped so unbounded
  /// distinct paths from live traffic cannot grow it without limit.
  std::unordered_map<std::string, std::pair<bool, std::string>> cacheable_memo;
  static constexpr std::size_t kCacheableMemoCap = 8192;

  void init_metrics() {
    if (config.metrics != nullptr) {
      metrics = config.metrics;
    } else {
      own_metrics = std::make_unique<telemetry::Registry>();
      metrics = own_metrics.get();
    }
    requests_by_route = &metrics->counter_family(
        "crowdweb_http_requests_total",
        "Requests dispatched to the router, by method and route pattern.",
        {"method", "route"});
    latency_by_route = &metrics->histogram_family(
        "crowdweb_http_request_duration_seconds",
        "Handler wall time per dispatched request, by route pattern.", {"route"},
        config.latency_buckets.empty() ? telemetry::default_latency_buckets()
                                       : config.latency_buckets);
    telemetry::CounterFamily& classes = metrics->counter_family(
        "crowdweb_http_responses_total", "Responses written, by status class.",
        {"class"});
    responses_2xx = &classes.with_labels({"2xx"});
    responses_3xx = &classes.with_labels({"3xx"});
    responses_4xx = &classes.with_labels({"4xx"});
    responses_5xx = &classes.with_labels({"5xx"});
    responses_other = &classes.with_labels({"other"});
    parse_errors = &metrics->counter("crowdweb_http_parse_errors_total",
                                     "Malformed requests answered with 400.");
    connections_total =
        &metrics->counter("crowdweb_http_connections_total", "Connections accepted.");
    bytes_total = &metrics->counter("crowdweb_http_response_bytes_total",
                                    "Response bytes flushed to sockets.");
    connections_active =
        &metrics->gauge("crowdweb_http_connections_active", "Currently open connections.");
    queue_depth = &metrics->gauge("crowdweb_http_worker_queue_depth",
                                  "Parsed requests waiting for a pool worker.");
    workers_gauge = &metrics->gauge(
        "crowdweb_http_worker_threads",
        "Handler threads executing requests off the event loop (0 = inline).");
    idle_closed_total =
        &metrics->counter("crowdweb_http_idle_closed_total",
                          "Connections closed by the idle-timeout sweep.");
    sse_subscribers_family = &metrics->gauge_family(
        "crowdweb_transport_sse_subscribers",
        "Connections subscribed to a server-sent-event channel.", {"channel"});
    sse_events_family = &metrics->counter_family(
        "crowdweb_transport_sse_events_total",
        "Event payloads published to a server-sent-event channel.", {"channel"});
    sse_evictions_total = &metrics->counter(
        "crowdweb_transport_sse_evictions_total",
        "Streaming subscribers evicted for exceeding the send-buffer cap.");
  }

  RouteMetrics& route_metrics(std::string_view method, const std::string& pattern) {
    std::string key;
    key.reserve(method.size() + pattern.size() + 1);
    key.append(method);
    key += ' ';
    key += pattern;
    const auto it = route_cache.find(key);
    if (it != route_cache.end()) return it->second;
    const RouteMetrics cells{
        &requests_by_route->with_labels({std::string(method), pattern}),
        &latency_by_route->with_labels({pattern})};
    return route_cache.emplace(std::move(key), cells).first->second;
  }

  void count_response_status(int status) {
    if (status >= 200 && status < 300) {
      responses_2xx->increment();
    } else if (status >= 300 && status < 400) {
      responses_3xx->increment();
    } else if (status >= 400 && status < 500) {
      responses_4xx->increment();
    } else if (status >= 500 && status < 600) {
      responses_5xx->increment();
    } else {
      responses_other->increment();
    }
  }

  std::map<int, Connection> connections;                  // by fd; loop thread only
  std::unordered_map<std::uint64_t, int> conn_by_id;      // loop thread only
  std::uint64_t next_conn_id = 1;

  // Streaming state. Subscriptions live on the loop thread
  // (stream_subs); publishers on any thread enqueue payloads under
  // stream_mutex and poke the eventfd. stream_counts mirrors the
  // per-channel subscriber counts for cross-thread reads.
  std::map<std::string, std::vector<std::uint64_t>> stream_subs;  // loop thread only
  mutable std::mutex stream_mutex;
  std::map<std::string, std::size_t> stream_counts;           // guarded by stream_mutex
  std::vector<std::pair<std::string, std::string>> stream_queue;  // guarded by stream_mutex
  std::chrono::steady_clock::time_point next_ping = std::chrono::steady_clock::now();

  void publish_counts(const std::string& channel) {
    const auto it = stream_subs.find(channel);
    const std::size_t count = it == stream_subs.end() ? 0 : it->second.size();
    {
      std::lock_guard<std::mutex> lock(stream_mutex);
      if (count == 0)
        stream_counts.erase(channel);
      else
        stream_counts[channel] = count;
    }
    sse_subscribers_family->with_labels({channel})
        .set(static_cast<double>(count));
  }

  void subscribe(Connection& connection, const std::string& channel) {
    connection.stream_channel = channel;
    connection.stop_parsing = true;  // the socket now only carries the stream
    stream_subs[channel].push_back(connection.id);
    publish_counts(channel);
  }

  void unsubscribe(const Connection& connection) {
    if (connection.stream_channel.empty()) return;
    const auto it = stream_subs.find(connection.stream_channel);
    if (it != stream_subs.end()) {
      std::erase(it->second, connection.id);
      if (it->second.empty()) {
        const std::string channel = it->first;
        stream_subs.erase(it);
        publish_counts(channel);
        return;
      }
    }
    publish_counts(connection.stream_channel);
  }

  Status bind_and_listen() {
    listener = Fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
    if (!listener.valid()) return io_error("socket() failed");
    const int one = 1;
    ::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bind_address.c_str(), &address.sin_addr) != 1)
      return invalid_argument(crowdweb::format("bad bind address '{}'", config.bind_address));
    if (::bind(listener.get(), reinterpret_cast<sockaddr*>(&address), sizeof address) != 0)
      return io_error(crowdweb::format("bind({}:{}) failed: {}", config.bind_address,
                                       config.port, std::strerror(errno)));
    if (::listen(listener.get(), config.listen_backlog) != 0)
      return io_error(crowdweb::format("listen() failed: {}", std::strerror(errno)));

    sockaddr_in bound{};
    socklen_t length = sizeof bound;
    if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&bound), &length) == 0)
      bound_port = ntohs(bound.sin_port);
    return Status::ok();
  }

  Status setup_epoll() {
    epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll.valid()) return io_error("epoll_create1() failed");
    wakeup = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!wakeup.valid()) return io_error("eventfd() failed");
    if (!watch(listener.get(), EPOLLIN) || !watch(wakeup.get(), EPOLLIN))
      return io_error("epoll_ctl(ADD) failed");
    return Status::ok();
  }

  bool watch(int fd, std::uint32_t events) {
    epoll_event event{};
    event.events = events;
    event.data.fd = fd;
    return ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &event) == 0;
  }

  bool rearm(int fd, std::uint32_t events) {
    epoll_event event{};
    event.events = events;
    event.data.fd = fd;
    return ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, fd, &event) == 0;
  }

  void close_connection(int fd) {
    ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
    if (const auto it = connections.find(fd); it != connections.end()) {
      unsubscribe(it->second);
      conn_by_id.erase(it->second.id);
      connections.erase(it);  // Fd destructor closes
    }
    connections_active->set(static_cast<double>(connections.size()));
  }

  void accept_new() {
    while (true) {
      const int fd = ::accept4(listener.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient error: try again on next event
      if (connections.size() >= static_cast<std::size_t>(config.max_connections)) {
        ::close(fd);
        continue;
      }
      // Small JSON/SVG responses must not wait for delayed ACKs.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      connections_total->increment();
      Connection connection;
      connection.fd = Fd(fd);
      connection.id = next_conn_id++;
      connection.last_activity = std::chrono::steady_clock::now();
      if (!watch(fd, EPOLLIN)) {
        continue;  // connection's Fd closes on scope exit
      }
      conn_by_id.emplace(connection.id, fd);
      connections.emplace(fd, std::move(connection));
      connections_active->set(static_cast<double>(connections.size()));
    }
  }

  /// Runs the request: cache lookup for cacheable GETs, handler
  /// dispatch otherwise, If-None-Match revalidation, serialization.
  /// Thread-safe (router and cache are; no Impl state is touched) —
  /// runs on pool workers, or on the loop thread in inline mode.
  Completion execute(Request request, bool keep_alive) {
    Completion done;
    done.method = method_label(request.method);
    done.count_route = true;
    const auto start = std::chrono::steady_clock::now();

    Response response;
    std::string pattern;
    std::shared_ptr<const CachedResponse> entry;
    bool served_from_cache = false;
    ResponseCache* cache = config.cache;
    std::string target;
    const bool cache_eligible = cache != nullptr && router.cacheable(request, &pattern);
    if (cache_eligible) {
      target = request.path;
      if (!request.query.empty()) {
        target += '?';
        target += request.query;
      }
      // HEAD shares the GET entry; the body is stripped at serialize.
      entry = cache->lookup("GET", target);
      served_from_cache = entry != nullptr;
    }
    if (served_from_cache) {
      response.status = entry->status;
      response.headers = entry->headers;
      response.body = entry->body;
      response.headers["X-Cache"] = "hit";
    } else {
      response = router.dispatch(request, &pattern);
      if (cache_eligible && response.status == 200) {
        entry = cache->insert("GET", target, response);
        response.headers = entry->headers;  // picks up the computed ETag
        response.headers["X-Cache"] = "miss";
      }
    }
    finish_response(request, std::move(response), entry, served_from_cache, keep_alive,
                    std::move(pattern), start, &done);
    return done;
  }

  /// Shared tail of every response path: If-None-Match revalidation
  /// against the entry's strong ETag, HEAD body strip, serialization,
  /// metric fields. Thread-safe.
  void finish_response(const Request& request, Response&& response,
                       const std::shared_ptr<const CachedResponse>& entry,
                       bool served_from_cache, bool keep_alive, std::string pattern,
                       std::chrono::steady_clock::time_point start, Completion* done) {
    // Strong-ETag revalidation: a client re-sending the entry's ETag
    // gets 304 with no body, whether the entry was a hit or was just
    // (re)computed for the same epoch.
    if (entry != nullptr) {
      if (const auto inm = request.header("if-none-match");
          inm.has_value() && etag_matches(*inm, entry->etag)) {
        Response not_modified;
        not_modified.status = 304;
        not_modified.headers["ETag"] = entry->etag;
        not_modified.headers["X-Cache"] = served_from_cache ? "hit" : "miss";
        response = std::move(not_modified);
        config.cache->note_not_modified();
      }
    }
    done->seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    done->pattern = std::move(pattern);
    done->status = response.status;
    if (request.method == "HEAD") {
      // HEAD must not subscribe: it gets the stream's headers + no body
      // and a normal framed response.
      response.body.clear();
      response.stream_channel.clear();
    }
    const bool streaming = !response.stream_channel.empty();
    done->stream_channel = response.stream_channel;
    done->bytes = serialize(response, keep_alive);
    done->close_after = !keep_alive && !streaming;
  }

  /// Loop-thread fast path: in pooled mode, a cache hit is answered
  /// right here — no work-queue enqueue, no condition-variable wakeup,
  /// no eventfd round trip, no cross-thread handoff. The common case
  /// (keep-alive GET, no validator) writes the entry's pre-serialized
  /// wire image with a single copy. Returns false on a miss or a
  /// non-cacheable request (the probe records no miss; the worker's own
  /// lookup counts it once).
  bool try_serve_from_cache(const Request& request, bool keep_alive, Completion* done) {
    ResponseCache* cache = config.cache;
    if (cache == nullptr) return false;
    if (request.method != "GET" && request.method != "HEAD") return false;
    auto memo = cacheable_memo.find(request.path);
    if (memo == cacheable_memo.end()) {
      std::string scanned;
      const bool is_cacheable = router.cacheable(request, &scanned);
      if (cacheable_memo.size() >= kCacheableMemoCap) cacheable_memo.clear();
      memo = cacheable_memo
                 .emplace(request.path, std::make_pair(is_cacheable, std::move(scanned)))
                 .first;
    }
    if (!memo->second.first) return false;
    std::string pattern = memo->second.second;
    const auto start = std::chrono::steady_clock::now();
    std::string target = request.path;
    if (!request.query.empty()) {
      target += '?';
      target += request.query;
    }
    const std::shared_ptr<const CachedResponse> entry =
        cache->lookup("GET", target, /*record_miss=*/false);
    if (entry == nullptr) return false;
    done->method = method_label(request.method);
    done->count_route = true;
    if (keep_alive && request.method == "GET" && !request.header("if-none-match")) {
      done->seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      done->pattern = std::move(pattern);
      done->status = entry->status;
      done->bytes = entry->wire;
      done->close_after = false;
      return true;
    }
    // HEAD, Connection: close, or a validator present: build the
    // response the general way (still without touching the pool).
    Response response;
    response.status = entry->status;
    response.headers = entry->headers;
    response.body = entry->body;
    response.headers["X-Cache"] = "hit";
    finish_response(request, std::move(response), entry, /*served_from_cache=*/true,
                    keep_alive, std::move(pattern), start, done);
    return true;
  }

  /// Loop thread: records a completion onto the metric families.
  void record(const Completion& done) {
    if (done.count_route) {
      // Label with the route's registered pattern, never the raw URL,
      // so series cardinality stays bounded under live traffic.
      static const std::string kUnmatched = "(unmatched)";
      const RouteMetrics& cells =
          route_metrics(done.method, done.pattern.empty() ? kUnmatched : done.pattern);
      cells.requests->increment();
      cells.latency->observe(done.seconds);
    }
    count_response_status(done.status);
  }

  /// Loop thread: files a completion and flushes every consecutively
  /// ready response (request order) into the outbox.
  void deliver(Connection& connection, Completion&& done) {
    connection.ready.emplace(done.seq, std::move(done));
    while (true) {
      const auto it = connection.ready.find(connection.next_flush);
      if (it == connection.ready.end()) break;
      connection.outbox += it->second.bytes;
      if (it->second.close_after) connection.close_after_write = true;
      if (!it->second.stream_channel.empty() && !connection.close_after_write &&
          connection.stream_channel.empty())
        subscribe(connection, it->second.stream_channel);
      connection.ready.erase(it);
      ++connection.next_flush;
    }
  }

  /// Parses every complete request the inbox holds (bounded by the
  /// per-connection inflight cap) and hands each to the pool — or, in
  /// inline mode, executes it on the spot.
  void parse_available(Connection& connection) {
    while (!connection.stop_parsing && !connection.inbox.empty() &&
           connection.inflight() < kMaxInflightPerConnection) {
      ParseResult parsed = parse_request(connection.inbox, config.limits);
      if (parsed.state == ParseState::kNeedMore) break;
      if (parsed.state == ParseState::kError) {
        parse_errors->increment();
        const Response response = Response::bad_request_400(parsed.error);
        Completion done;
        done.conn = connection.id;
        done.seq = connection.next_seq++;
        done.status = response.status;
        done.bytes = serialize(response, false);
        done.close_after = true;
        done.count_route = false;
        connection.stop_parsing = true;
        connection.inbox.clear();
        record(done);
        deliver(connection, std::move(done));
        break;
      }
      const bool keep_alive = parsed.request.keep_alive();
      Work work;
      work.conn = connection.id;
      work.seq = connection.next_seq++;
      work.request = std::move(parsed.request);
      work.keep_alive = keep_alive;
      connection.inbox.erase(0, parsed.consumed);
      if (!keep_alive) connection.stop_parsing = true;
      Completion fast;
      if (resolved_workers == 0) {
        Completion done = execute(std::move(work.request), keep_alive);
        done.conn = work.conn;
        done.seq = work.seq;
        record(done);
        deliver(connection, std::move(done));
      } else if (try_serve_from_cache(work.request, keep_alive, &fast)) {
        fast.conn = work.conn;
        fast.seq = work.seq;
        record(fast);
        deliver(connection, std::move(fast));
      } else {
        {
          std::lock_guard<std::mutex> lock(work_mutex);
          work_queue.push_back(std::move(work));
        }
        queue_depth->add(1.0);
        work_cv.notify_one();
      }
      if (!keep_alive) break;
    }
  }

  void read_socket(Connection& connection) {
    char buffer[16 * 1024];
    while (true) {
      const ssize_t n = ::read(connection.fd.get(), buffer, sizeof buffer);
      if (n > 0) {
        connection.inbox.append(buffer, static_cast<std::size_t>(n));
        connection.last_activity = std::chrono::steady_clock::now();
        continue;
      }
      if (n == 0) {  // peer closed its write side; answer what we have
        connection.close_after_write = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection.close_after_write = true;
      break;
    }
  }

  /// Returns false on a fatal write error.
  bool flush_outbox(Connection& connection) {
    while (!connection.outbox.empty()) {
      const ssize_t n =
          ::write(connection.fd.get(), connection.outbox.data(), connection.outbox.size());
      if (n > 0) {
        bytes_total->increment(static_cast<std::uint64_t>(n));
        connection.outbox.erase(0, static_cast<std::size_t>(n));
        connection.last_activity = std::chrono::steady_clock::now();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // wait for EPOLLOUT
      return false;
    }
    return true;
  }

  /// Advances a connection after any state change (bytes read, work
  /// completed): parse, flush, then close or re-arm epoll interest.
  void service(int fd, Connection& connection) {
    const bool streaming = !connection.stream_channel.empty();
    // A subscribed socket only carries the stream; anything the client
    // sends after the subscribing request is discarded so the inbox
    // cannot grow unboundedly (EPOLLIN stays armed to detect FIN).
    if (streaming) connection.inbox.clear();
    parse_available(connection);
    if (!flush_outbox(connection)) {
      close_connection(fd);
      return;
    }
    const bool responses_pending = connection.inflight() > 0;
    if (connection.close_after_write && connection.outbox.empty() && !responses_pending) {
      close_connection(fd);
      return;
    }
    // Read only while we accept new requests; wait for writability only
    // while output is pending. Streaming connections stay readable for
    // FIN detection (recomputed: the subscription may have just
    // happened inside parse_available above).
    const bool want_read = !connection.stream_channel.empty() ||
                           (!connection.stop_parsing &&
                            connection.inflight() < kMaxInflightPerConnection);
    const std::uint32_t wanted =
        (want_read ? static_cast<std::uint32_t>(EPOLLIN) : 0u) |
        (connection.outbox.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
    rearm(fd, wanted);
  }

  /// Loop thread: drains worker completions and pushes them into their
  /// connections (dropping those whose connection is gone).
  void drain_done() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      batch.swap(done_queue);
    }
    for (Completion& done : batch) {
      record(done);
      const auto id_it = conn_by_id.find(done.conn);
      if (id_it == conn_by_id.end()) continue;  // connection closed meanwhile
      const int fd = id_it->second;
      const auto it = connections.find(fd);
      if (it == connections.end()) continue;
      deliver(it->second, std::move(done));
      service(fd, it->second);
    }
  }

  /// Loop thread: appends `bytes` to one subscriber of `channel`,
  /// collecting ids that must be evicted (behind the buffer cap).
  void fan_out(const std::string& channel, std::string_view bytes,
               std::vector<int>* evict) {
    const auto subs = stream_subs.find(channel);
    if (subs == stream_subs.end()) return;
    for (const std::uint64_t id : subs->second) {
      const auto id_it = conn_by_id.find(id);
      if (id_it == conn_by_id.end()) continue;
      const int fd = id_it->second;
      const auto it = connections.find(fd);
      if (it == connections.end()) continue;
      Connection& connection = it->second;
      if (connection.outbox.size() + bytes.size() > config.stream_buffer_bytes) {
        sse_evictions_total->increment();
        evict->push_back(fd);
        continue;
      }
      connection.outbox += bytes;
    }
  }

  /// Loop thread: delivers queued publishes to their subscribers.
  /// Eviction closes after the fan-out loop so subscriber lists are
  /// never mutated mid-iteration.
  void drain_streams() {
    std::vector<std::pair<std::string, std::string>> batch;
    {
      std::lock_guard<std::mutex> lock(stream_mutex);
      batch.swap(stream_queue);
    }
    if (batch.empty()) return;
    std::vector<int> evict;
    for (const auto& [channel, bytes] : batch) {
      sse_events_family->with_labels({channel}).increment();
      fan_out(channel, bytes, &evict);
    }
    for (const int fd : evict) close_connection(fd);
    // Flush what fits now; the rest rides on EPOLLOUT. (Collect fds
    // first: service() may close a connection and unsubscribe it.)
    service_stream_connections();
  }

  void service_stream_connections() {
    std::vector<int> touched;
    for (const auto& [channel, subs] : stream_subs)
      for (const std::uint64_t id : subs)
        if (const auto id_it = conn_by_id.find(id); id_it != conn_by_id.end())
          touched.push_back(id_it->second);
    for (const int fd : touched)
      if (const auto it = connections.find(fd); it != connections.end())
        service(fd, it->second);
  }

  /// Loop thread: ": ping" comments keep proxies from timing streams
  /// out and surface dead peers as write errors.
  void send_pings() {
    if (config.stream_ping_interval.count() <= 0 || stream_subs.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    if (now < next_ping) return;
    next_ping = now + config.stream_ping_interval;
    std::vector<int> evict;
    for (const auto& [channel, subs] : stream_subs) fan_out(channel, ": ping\n\n", &evict);
    for (const int fd : evict) close_connection(fd);
    service_stream_connections();
  }

  /// Loop thread: closes connections with no socket traffic inside the
  /// idle window. Requests still executing (inflight) are exempt — a
  /// slow handler is not an idle peer.
  void sweep_idle() {
    if (config.idle_timeout.count() <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<int> stale;
    for (const auto& [fd, connection] : connections) {
      if (connection.inflight() > 0) continue;
      if (now - connection.last_activity > config.idle_timeout) stale.push_back(fd);
    }
    for (const int fd : stale) {
      idle_closed_total->increment();
      close_connection(fd);
    }
  }

  /// Loop thread, shutdown path: tells every streaming subscriber the
  /// stream is ending and gives the socket one best-effort flush, so
  /// well-behaved clients see a clean end instead of a reset.
  void drain_streams_for_shutdown() {
    for (auto& [fd, connection] : connections) {
      if (connection.stream_channel.empty()) continue;
      connection.outbox += "event: bye\ndata: {}\n\n";
      flush_outbox(connection);
    }
    stream_subs.clear();
    {
      std::lock_guard<std::mutex> lock(stream_mutex);
      stream_counts.clear();
      stream_queue.clear();
    }
  }

  void worker_run() {
    while (true) {
      Work work;
      {
        std::unique_lock<std::mutex> lock(work_mutex);
        work_cv.wait(lock, [&] { return workers_stop || !work_queue.empty(); });
        if (workers_stop) return;  // queued work is dropped on stop
        work = std::move(work_queue.front());
        work_queue.pop_front();
      }
      queue_depth->add(-1.0);
      Completion done = execute(std::move(work.request), work.keep_alive);
      done.conn = work.conn;
      done.seq = work.seq;
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_queue.push_back(std::move(done));
      }
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t r = ::write(wakeup.get(), &one, sizeof one);
    }
  }

  void loop() {
    epoll_event events[64];
    // The sweep and ping cadence bound the wait; 500 ms remains the
    // ceiling so stop() stays responsive either way.
    int wait_ms = 500;
    if (config.idle_timeout.count() > 0)
      wait_ms = static_cast<int>(std::min<std::int64_t>(
          wait_ms, std::max<std::int64_t>(1, config.idle_timeout.count() / 2)));
    if (config.stream_ping_interval.count() > 0)
      wait_ms = static_cast<int>(std::min<std::int64_t>(
          wait_ms, std::max<std::int64_t>(1, config.stream_ping_interval.count() / 2)));
    while (!stop_requested.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll.get(), events, std::size(events), wait_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        log_error("epoll_wait failed: {}", std::strerror(errno));
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wakeup.get()) {
          std::uint64_t drained = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(wakeup.get(), &drained, sizeof drained);
          drain_done();
          drain_streams();
          continue;
        }
        if (fd == listener.get()) {
          accept_new();
          continue;
        }
        const auto it = connections.find(fd);
        if (it == connections.end()) continue;
        Connection& connection = it->second;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(fd);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) read_socket(connection);
        service(fd, connection);
      }
      send_pings();
      sweep_idle();
    }
    drain_streams_for_shutdown();
    connections.clear();
    conn_by_id.clear();
    connections_active->set(0.0);
    running.store(false, std::memory_order_release);
  }
};

Server::Server(Router router, ServerConfig config) : impl_(std::make_unique<Impl>()) {
  impl_->router = std::move(router);
  impl_->config = std::move(config);
  impl_->init_metrics();
}

Server::~Server() { stop(); }

Status Server::start() {
  if (impl_->running.load(std::memory_order_acquire))
    return failed_precondition("server already running");
  Status status = impl_->bind_and_listen();
  if (!status.is_ok()) return status;
  status = impl_->setup_epoll();
  if (!status.is_ok()) return status;

  impl_->resolved_workers =
      impl_->config.worker_threads < 0
          ? static_cast<int>(std::thread::hardware_concurrency())
          : impl_->config.worker_threads;
  if (impl_->config.worker_threads < 0 && impl_->resolved_workers < 1)
    impl_->resolved_workers = 1;  // hardware_concurrency() may report 0
  impl_->workers_gauge->set(static_cast<double>(impl_->resolved_workers));
  {
    std::lock_guard<std::mutex> lock(impl_->work_mutex);
    impl_->workers_stop = false;
    impl_->work_queue.clear();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->done_mutex);
    impl_->done_queue.clear();
  }
  impl_->queue_depth->set(0.0);
  impl_->workers.reserve(static_cast<std::size_t>(impl_->resolved_workers));
  for (int i = 0; i < impl_->resolved_workers; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_run(); });

  impl_->stop_requested.store(false, std::memory_order_release);
  impl_->running.store(true, std::memory_order_release);
  impl_->loop_thread = std::thread([this] { impl_->loop(); });
  log_info("http server listening on {}:{} ({} worker thread(s))",
           impl_->config.bind_address, impl_->bound_port, impl_->resolved_workers);
  return Status::ok();
}

void Server::stop() {
  if (!impl_->loop_thread.joinable()) return;
  // Workers first: they may still hold the wakeup fd, which must stay
  // open until they are joined.
  {
    std::lock_guard<std::mutex> lock(impl_->work_mutex);
    impl_->workers_stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  impl_->workers.clear();
  impl_->queue_depth->set(0.0);

  impl_->stop_requested.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  if (impl_->wakeup.valid()) {
    [[maybe_unused]] const ssize_t r = ::write(impl_->wakeup.get(), &one, sizeof one);
  }
  impl_->loop_thread.join();
  impl_->listener.reset();
  impl_->epoll.reset();
  impl_->wakeup.reset();
}

bool Server::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

int Server::worker_threads() const noexcept { return impl_->resolved_workers; }

void Server::publish_stream(const std::string& channel, std::string_view bytes) {
  if (!impl_->running.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(impl_->stream_mutex);
    if (impl_->stream_counts.find(channel) == impl_->stream_counts.end()) return;
    impl_->stream_queue.emplace_back(channel, std::string(bytes));
  }
  const std::uint64_t one = 1;
  if (impl_->wakeup.valid()) {
    [[maybe_unused]] const ssize_t r = ::write(impl_->wakeup.get(), &one, sizeof one);
  }
}

std::size_t Server::stream_subscribers(const std::string& channel) const {
  std::lock_guard<std::mutex> lock(impl_->stream_mutex);
  const auto it = impl_->stream_counts.find(channel);
  return it == impl_->stream_counts.end() ? 0 : it->second;
}

std::vector<std::string> Server::stream_channels() const {
  std::vector<std::string> channels;
  std::lock_guard<std::mutex> lock(impl_->stream_mutex);
  channels.reserve(impl_->stream_counts.size());
  for (const auto& [channel, count] : impl_->stream_counts)
    if (count > 0) channels.push_back(channel);
  return channels;
}

std::uint64_t Server::idle_closed() const noexcept {
  return impl_->idle_closed_total->value();
}

std::uint64_t Server::stream_evictions() const noexcept {
  return impl_->sse_evictions_total->value();
}

ServerStats Server::stats() const noexcept {
  ServerStats stats;
  stats.requests = impl_->requests_by_route->total();
  stats.bad_requests = impl_->parse_errors->value();
  stats.connections = impl_->connections_total->value();
  stats.responses_2xx = impl_->responses_2xx->value();
  stats.responses_4xx = impl_->responses_4xx->value();
  stats.responses_5xx = impl_->responses_5xx->value();
  stats.bytes_written = impl_->bytes_total->value();
  return stats;
}

}  // namespace crowdweb::http

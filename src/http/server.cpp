#include "http/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>

#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::http {

namespace {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

struct Connection {
  Fd fd;
  std::string inbox;   ///< bytes read, not yet parsed
  std::string outbox;  ///< bytes to write
  bool close_after_write = false;
};

/// Collapses arbitrary client-supplied methods onto a bounded label set.
std::string_view method_label(std::string_view method) {
  for (const std::string_view known :
       {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"}) {
    if (method == known) return known;
  }
  return "OTHER";
}

}  // namespace

struct Server::Impl {
  Router router;
  ServerConfig config;
  Fd listener;
  Fd wakeup;  // eventfd to interrupt epoll_wait on stop()
  Fd epoll;
  std::uint16_t bound_port = 0;
  std::thread loop_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};

  // Telemetry: the crowdweb_http_* families are the server's only
  // accounting — ServerStats reads them back. `own_metrics` backs
  // servers constructed without an external registry.
  std::unique_ptr<telemetry::Registry> own_metrics;
  telemetry::Registry* metrics = nullptr;
  telemetry::CounterFamily* requests_by_route = nullptr;
  telemetry::HistogramFamily* latency_by_route = nullptr;
  telemetry::Counter* responses_2xx = nullptr;
  telemetry::Counter* responses_3xx = nullptr;
  telemetry::Counter* responses_4xx = nullptr;
  telemetry::Counter* responses_5xx = nullptr;
  telemetry::Counter* responses_other = nullptr;
  telemetry::Counter* parse_errors = nullptr;
  telemetry::Counter* connections_total = nullptr;
  telemetry::Counter* bytes_total = nullptr;
  telemetry::Gauge* connections_active = nullptr;

  struct RouteMetrics {
    telemetry::Counter* requests;
    telemetry::Histogram* latency;
  };
  /// (method, route pattern) -> cached cells. Loop thread only, so no
  /// lock; bounded because patterns come from the router and methods
  /// from method_label().
  std::map<std::string, RouteMetrics, std::less<>> route_cache;

  void init_metrics() {
    if (config.metrics != nullptr) {
      metrics = config.metrics;
    } else {
      own_metrics = std::make_unique<telemetry::Registry>();
      metrics = own_metrics.get();
    }
    requests_by_route = &metrics->counter_family(
        "crowdweb_http_requests_total",
        "Requests dispatched to the router, by method and route pattern.",
        {"method", "route"});
    latency_by_route = &metrics->histogram_family(
        "crowdweb_http_request_duration_seconds",
        "Handler wall time per dispatched request, by route pattern.", {"route"},
        config.latency_buckets.empty() ? telemetry::default_latency_buckets()
                                       : config.latency_buckets);
    telemetry::CounterFamily& classes = metrics->counter_family(
        "crowdweb_http_responses_total", "Responses written, by status class.",
        {"class"});
    responses_2xx = &classes.with_labels({"2xx"});
    responses_3xx = &classes.with_labels({"3xx"});
    responses_4xx = &classes.with_labels({"4xx"});
    responses_5xx = &classes.with_labels({"5xx"});
    responses_other = &classes.with_labels({"other"});
    parse_errors = &metrics->counter("crowdweb_http_parse_errors_total",
                                     "Malformed requests answered with 400.");
    connections_total =
        &metrics->counter("crowdweb_http_connections_total", "Connections accepted.");
    bytes_total = &metrics->counter("crowdweb_http_response_bytes_total",
                                    "Response bytes flushed to sockets.");
    connections_active =
        &metrics->gauge("crowdweb_http_connections_active", "Currently open connections.");
  }

  RouteMetrics& route_metrics(std::string_view method, const std::string& pattern) {
    std::string key;
    key.reserve(method.size() + pattern.size() + 1);
    key.append(method);
    key += ' ';
    key += pattern;
    const auto it = route_cache.find(key);
    if (it != route_cache.end()) return it->second;
    const RouteMetrics cells{
        &requests_by_route->with_labels({std::string(method), pattern}),
        &latency_by_route->with_labels({pattern})};
    return route_cache.emplace(std::move(key), cells).first->second;
  }

  void count_response_status(int status) {
    if (status >= 200 && status < 300) {
      responses_2xx->increment();
    } else if (status >= 300 && status < 400) {
      responses_3xx->increment();
    } else if (status >= 400 && status < 500) {
      responses_4xx->increment();
    } else if (status >= 500 && status < 600) {
      responses_5xx->increment();
    } else {
      responses_other->increment();
    }
  }
  std::map<int, Connection> connections;

  Status bind_and_listen() {
    listener = Fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
    if (!listener.valid()) return io_error("socket() failed");
    const int one = 1;
    ::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bind_address.c_str(), &address.sin_addr) != 1)
      return invalid_argument(crowdweb::format("bad bind address '{}'", config.bind_address));
    if (::bind(listener.get(), reinterpret_cast<sockaddr*>(&address), sizeof address) != 0)
      return io_error(crowdweb::format("bind({}:{}) failed: {}", config.bind_address,
                                       config.port, std::strerror(errno)));
    if (::listen(listener.get(), 64) != 0)
      return io_error(crowdweb::format("listen() failed: {}", std::strerror(errno)));

    sockaddr_in bound{};
    socklen_t length = sizeof bound;
    if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&bound), &length) == 0)
      bound_port = ntohs(bound.sin_port);
    return Status::ok();
  }

  Status setup_epoll() {
    epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll.valid()) return io_error("epoll_create1() failed");
    wakeup = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!wakeup.valid()) return io_error("eventfd() failed");
    if (!watch(listener.get(), EPOLLIN) || !watch(wakeup.get(), EPOLLIN))
      return io_error("epoll_ctl(ADD) failed");
    return Status::ok();
  }

  bool watch(int fd, std::uint32_t events) {
    epoll_event event{};
    event.events = events;
    event.data.fd = fd;
    return ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &event) == 0;
  }

  bool rearm(int fd, std::uint32_t events) {
    epoll_event event{};
    event.events = events;
    event.data.fd = fd;
    return ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, fd, &event) == 0;
  }

  void close_connection(int fd) {
    ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
    connections.erase(fd);  // Fd destructor closes
    connections_active->set(static_cast<double>(connections.size()));
  }

  void accept_new() {
    while (true) {
      const int fd = ::accept4(listener.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient error: try again on next event
      if (connections.size() >= static_cast<std::size_t>(config.max_connections)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      connections_total->increment();
      Connection connection;
      connection.fd = Fd(fd);
      if (!watch(fd, EPOLLIN)) {
        continue;  // connection's Fd closes on scope exit
      }
      connections.emplace(fd, std::move(connection));
      connections_active->set(static_cast<double>(connections.size()));
    }
  }

  void handle_readable(Connection& connection) {
    char buffer[16 * 1024];
    while (true) {
      const ssize_t n = ::read(connection.fd.get(), buffer, sizeof buffer);
      if (n > 0) {
        connection.inbox.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {  // peer closed
        connection.close_after_write = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection.close_after_write = true;
      break;
    }

    // Serve every complete pipelined request in the buffer.
    while (true) {
      const ParseResult parsed = parse_request(connection.inbox, config.limits);
      if (parsed.state == ParseState::kNeedMore) break;
      if (parsed.state == ParseState::kError) {
        parse_errors->increment();
        const Response response = Response::bad_request_400(parsed.error);
        count_response_status(response.status);
        connection.outbox += serialize(response, false);
        connection.close_after_write = true;
        connection.inbox.clear();
        break;
      }
      const bool keep_alive = parsed.request.keep_alive();
      std::string pattern;
      const auto dispatch_start = std::chrono::steady_clock::now();
      Response response = router.dispatch(parsed.request, &pattern);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - dispatch_start)
              .count();
      // Label with the route's registered pattern, never the raw URL, so
      // series cardinality stays bounded under live traffic.
      static const std::string kUnmatched = "(unmatched)";
      const RouteMetrics& cells =
          route_metrics(method_label(parsed.request.method),
                        pattern.empty() ? kUnmatched : pattern);
      cells.requests->increment();
      cells.latency->observe(seconds);
      count_response_status(response.status);
      if (parsed.request.method == "HEAD") response.body.clear();
      connection.outbox += serialize(response, keep_alive);
      if (!keep_alive) connection.close_after_write = true;
      connection.inbox.erase(0, parsed.consumed);
      if (!keep_alive) break;
    }
  }

  /// Returns false when the connection should be closed now.
  bool handle_writable(Connection& connection) {
    while (!connection.outbox.empty()) {
      const ssize_t n =
          ::write(connection.fd.get(), connection.outbox.data(), connection.outbox.size());
      if (n > 0) {
        bytes_total->increment(static_cast<std::uint64_t>(n));
        connection.outbox.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // wait for EPOLLOUT
      return false;
    }
    return !(connection.close_after_write && connection.outbox.empty());
  }

  void loop() {
    epoll_event events[64];
    while (!stop_requested.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll.get(), events, std::size(events), 500);
      if (n < 0) {
        if (errno == EINTR) continue;
        log_error("epoll_wait failed: {}", std::strerror(errno));
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wakeup.get()) {
          std::uint64_t drained = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(wakeup.get(), &drained, sizeof drained);
          continue;
        }
        if (fd == listener.get()) {
          accept_new();
          continue;
        }
        const auto it = connections.find(fd);
        if (it == connections.end()) continue;
        Connection& connection = it->second;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(fd);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) handle_readable(connection);
        if (!handle_writable(connection)) {
          close_connection(fd);
          continue;
        }
        // Wait for writability only while output is pending.
        const std::uint32_t wanted =
            EPOLLIN | (connection.outbox.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
        rearm(fd, wanted);
        if (connection.close_after_write && connection.outbox.empty())
          close_connection(fd);
      }
    }
    connections.clear();
    connections_active->set(0.0);
    running.store(false, std::memory_order_release);
  }
};

Server::Server(Router router, ServerConfig config) : impl_(std::make_unique<Impl>()) {
  impl_->router = std::move(router);
  impl_->config = std::move(config);
  impl_->init_metrics();
}

Server::~Server() { stop(); }

Status Server::start() {
  if (impl_->running.load(std::memory_order_acquire))
    return failed_precondition("server already running");
  Status status = impl_->bind_and_listen();
  if (!status.is_ok()) return status;
  status = impl_->setup_epoll();
  if (!status.is_ok()) return status;
  impl_->stop_requested.store(false, std::memory_order_release);
  impl_->running.store(true, std::memory_order_release);
  impl_->loop_thread = std::thread([this] { impl_->loop(); });
  log_info("http server listening on {}:{}", impl_->config.bind_address, impl_->bound_port);
  return Status::ok();
}

void Server::stop() {
  if (!impl_->loop_thread.joinable()) return;
  impl_->stop_requested.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  if (impl_->wakeup.valid()) {
    [[maybe_unused]] const ssize_t r = ::write(impl_->wakeup.get(), &one, sizeof one);
  }
  impl_->loop_thread.join();
  impl_->listener.reset();
  impl_->epoll.reset();
  impl_->wakeup.reset();
}

bool Server::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

ServerStats Server::stats() const noexcept {
  ServerStats stats;
  stats.requests = impl_->requests_by_route->total();
  stats.bad_requests = impl_->parse_errors->value();
  stats.connections = impl_->connections_total->value();
  stats.responses_2xx = impl_->responses_2xx->value();
  stats.responses_4xx = impl_->responses_4xx->value();
  stats.responses_5xx = impl_->responses_5xx->value();
  stats.bytes_written = impl_->bytes_total->value();
  return stats;
}

}  // namespace crowdweb::http

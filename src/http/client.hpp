// Minimal blocking HTTP client for tests and examples.
//
// One request per call: connect, send, read the full response (by
// Content-Length, or until EOF when absent). Not for production use —
// it exists so the integration tests can exercise the server over a real
// socket.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace crowdweb::http {

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< names lowercased
  std::string body;
};

struct ClientOptions {
  int timeout_ms = 5'000;
  /// Extra request headers (e.g. {"If-None-Match", "\"1-abc\""}).
  std::map<std::string, std::string> headers;
};

/// Performs one HTTP/1.1 request against host:port.
[[nodiscard]] Result<ClientResponse> fetch(const std::string& host, std::uint16_t port,
                                           std::string_view method, std::string_view target,
                                           std::string_view body = {},
                                           ClientOptions options = {});

/// GET convenience wrapper.
[[nodiscard]] inline Result<ClientResponse> get(const std::string& host, std::uint16_t port,
                                                std::string_view target,
                                                ClientOptions options = {}) {
  return fetch(host, port, "GET", target, {}, options);
}

}  // namespace crowdweb::http

#include "http/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace crowdweb::http {

namespace {

class Fd {
 public:
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

Status wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return io_error(crowdweb::format("poll failed: {}", std::strerror(errno)));
  if (r == 0) return unavailable("response timed out");
  return Status::ok();
}

}  // namespace

Result<ClientResponse> fetch(const std::string& host, std::uint16_t port,
                             std::string_view method, std::string_view target,
                             std::string_view body, ClientOptions options) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return io_error("socket() failed");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1)
    return invalid_argument(crowdweb::format("bad host address '{}'", host));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&address), sizeof address) != 0)
    return unavailable(
        crowdweb::format("connect({}:{}) failed: {}", host, port, std::strerror(errno)));

  std::string request = crowdweb::format("{} {} HTTP/1.1\r\nHost: {}:{}\r\n", method, target,
                                         host, port);
  if (!body.empty()) request += crowdweb::format("Content-Length: {}\r\n", body.size());
  for (const auto& [name, value] : options.headers)
    request += crowdweb::format("{}: {}\r\n", name, value);
  request += "Connection: close\r\n\r\n";
  request += body;

  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd.get(), request.data() + sent, request.size() - sent);
    if (n <= 0) return io_error("short write to server");
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buffer[16 * 1024];
  while (true) {
    const Status ready = wait_readable(fd.get(), options.timeout_ms);
    if (!ready.is_ok()) return ready;
    const ssize_t n = ::read(fd.get(), buffer, sizeof buffer);
    if (n < 0) return io_error(crowdweb::format("read failed: {}", std::strerror(errno)));
    if (n == 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
    if (raw.size() > 64 * 1024 * 1024) return io_error("response too large");
  }

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return parse_error("truncated response head");
  const std::string_view head = std::string_view(raw).substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const auto parts = split(status_line, ' ');
  if (parts.size() < 2 || !starts_with(parts[0], "HTTP/"))
    return parse_error("malformed status line");
  const auto status_code = parse_int(parts[1]);
  if (!status_code) return parse_error("malformed status code");

  ClientResponse response;
  response.status = static_cast<int>(*status_code);
  std::size_t cursor = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    std::size_t next = head.find("\r\n", cursor);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(cursor, next - cursor);
    cursor = next + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    response.headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  response.body = raw.substr(head_end + 4);
  // Trust Content-Length when present (keep-alive servers would need it).
  if (const auto it = response.headers.find("content-length"); it != response.headers.end()) {
    if (const auto length = parse_int(it->second); length && *length >= 0 &&
                                                   static_cast<std::size_t>(*length) <=
                                                       response.body.size())
      response.body.resize(static_cast<std::size_t>(*length));
  }
  return response;
}

}  // namespace crowdweb::http

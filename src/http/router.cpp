#include "http/router.hpp"

#include <algorithm>
#include <cctype>
#include <exception>

#include "util/format.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace crowdweb::http {

std::vector<std::string> Router::split_path(std::string_view path) {
  std::vector<std::string> segments;
  for (const std::string_view part : split(path, '/')) {
    if (!part.empty()) segments.emplace_back(part);
  }
  return segments;
}

void Router::add(std::string_view method, std::string_view pattern, Handler handler,
                 RouteOptions options) {
  Route route;
  for (const char c : method)
    route.method += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  route.segments = split_path(pattern);
  // Normalized spelling ("/a/:b" regardless of how it was written), the
  // stable label value for per-route metrics.
  route.pattern = "/" + join(route.segments, "/");
  route.handler = std::move(handler);
  route.options = options;
  routes_.push_back(std::move(route));
}

bool Router::match(const Route& route, const std::vector<std::string>& segments,
                   PathParams& params) {
  if (route.segments.size() != segments.size()) return false;
  PathParams captured;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pattern = route.segments[i];
    if (!pattern.empty() && pattern[0] == ':') {
      captured[pattern.substr(1)] = segments[i];
    } else if (pattern != segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

Response Router::dispatch(const Request& request, std::string* matched_pattern) const {
  const std::vector<std::string> segments = split_path(request.path);
  if (matched_pattern != nullptr) matched_pattern->clear();
  bool path_exists = false;
  std::vector<std::string> allowed;  // methods registered for this path, in order
  for (const Route& route : routes_) {
    PathParams params;
    if (!match(route, segments, params)) continue;
    if (!path_exists && matched_pattern != nullptr) *matched_pattern = route.pattern;
    path_exists = true;
    if (std::find(allowed.begin(), allowed.end(), route.method) == allowed.end()) {
      allowed.push_back(route.method);
      // GET handlers also serve HEAD (the server strips the body).
      if (route.method == "GET") allowed.emplace_back("HEAD");
    }
    const bool method_matches =
        route.method == request.method ||
        (request.method == "HEAD" && route.method == "GET");
    if (!method_matches) continue;
    if (matched_pattern != nullptr) *matched_pattern = route.pattern;
    try {
      return route.handler(request, params);
    } catch (const std::exception& e) {
      log_error("handler for {} {} threw: {}", request.method, request.path, e.what());
      return Response::text(500, "internal server error\n");
    }
  }
  if (path_exists) {
    const std::string allow = join(allowed, ", ");
    Response response = Response::text(
        405, crowdweb::format("method {} not allowed for this path; allowed: {}\n",
                              request.method, allow));
    response.headers["Allow"] = allow;
    return response;
  }
  return Response::not_found_404();
}

bool Router::cacheable(const Request& request, std::string* matched_pattern) const {
  if (request.method != "GET" && request.method != "HEAD") return false;
  const std::vector<std::string> segments = split_path(request.path);
  for (const Route& route : routes_) {
    if (route.method != "GET") continue;
    PathParams params;
    if (!match(route, segments, params)) continue;
    if (matched_pattern != nullptr && route.options.cacheable)
      *matched_pattern = route.pattern;
    return route.options.cacheable;
  }
  return false;
}

}  // namespace crowdweb::http

#include "http/router.hpp"

#include <cctype>
#include <exception>

#include "util/format.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace crowdweb::http {

std::vector<std::string> Router::split_path(std::string_view path) {
  std::vector<std::string> segments;
  for (const std::string_view part : split(path, '/')) {
    if (!part.empty()) segments.emplace_back(part);
  }
  return segments;
}

void Router::add(std::string_view method, std::string_view pattern, Handler handler) {
  Route route;
  for (const char c : method)
    route.method += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  route.segments = split_path(pattern);
  // Normalized spelling ("/a/:b" regardless of how it was written), the
  // stable label value for per-route metrics.
  route.pattern = "/" + join(route.segments, "/");
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::match(const Route& route, const std::vector<std::string>& segments,
                   PathParams& params) {
  if (route.segments.size() != segments.size()) return false;
  PathParams captured;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pattern = route.segments[i];
    if (!pattern.empty() && pattern[0] == ':') {
      captured[pattern.substr(1)] = segments[i];
    } else if (pattern != segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

Response Router::dispatch(const Request& request, std::string* matched_pattern) const {
  const std::vector<std::string> segments = split_path(request.path);
  if (matched_pattern != nullptr) matched_pattern->clear();
  bool path_exists = false;
  for (const Route& route : routes_) {
    PathParams params;
    if (!match(route, segments, params)) continue;
    if (!path_exists && matched_pattern != nullptr) *matched_pattern = route.pattern;
    path_exists = true;
    // HEAD is served by GET handlers (the server strips the body).
    const bool method_matches =
        route.method == request.method ||
        (request.method == "HEAD" && route.method == "GET");
    if (!method_matches) continue;
    if (matched_pattern != nullptr) *matched_pattern = route.pattern;
    try {
      return route.handler(request, params);
    } catch (const std::exception& e) {
      log_error("handler for {} {} threw: {}", request.method, request.path, e.what());
      return Response::text(500, "internal server error\n");
    }
  }
  if (path_exists) return Response::text(405, "method not allowed\n");
  return Response::not_found_404();
}

}  // namespace crowdweb::http

#include "http/message.hpp"

#include <algorithm>
#include <cctype>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace crowdweb::http {

std::optional<std::string_view> Request::header(std::string_view name) const {
  const auto it = headers.find(to_lower(name));
  if (it == headers.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Request::query_param(std::string_view name) const {
  for (const std::string_view pair : split(query, '&')) {
    const std::size_t eq = pair.find('=');
    const std::string_view key = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (key != name) continue;
    const std::string_view raw =
        eq == std::string_view::npos ? std::string_view{} : pair.substr(eq + 1);
    auto decoded = url_decode(raw);
    if (!decoded) return std::nullopt;
    return std::move(decoded).value();
  }
  return std::nullopt;
}

bool Request::keep_alive() const {
  if (const auto connection = header("connection")) {
    const std::string value = to_lower(*connection);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version == "HTTP/1.1";  // 1.1 defaults to persistent
}

Response Response::text(int status, std::string body, std::string content_type) {
  Response r;
  r.status = status;
  r.headers["Content-Type"] = std::move(content_type);
  r.body = std::move(body);
  return r;
}

Response Response::json(int status, std::string body) {
  return text(status, std::move(body), "application/json; charset=utf-8");
}

Response Response::html(int status, std::string body) {
  return text(status, std::move(body), "text/html; charset=utf-8");
}

Response Response::svg(int status, std::string body) {
  return text(status, std::move(body), "image/svg+xml");
}

Response Response::not_found_404() { return text(404, "not found\n"); }

Response Response::bad_request_400(std::string message) {
  message += '\n';
  return text(400, std::move(message));
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "Unknown";
  }
}

std::string serialize(const Response& response, bool keep_alive) {
  std::string out =
      crowdweb::format("HTTP/1.1 {} {}\r\n", response.status, reason_phrase(response.status));
  bool has_content_length = false;
  for (const auto& [name, value] : response.headers) {
    out += crowdweb::format("{}: {}\r\n", name, value);
    if (to_lower(name) == "content-length") has_content_length = true;
  }
  // Streaming responses have no fixed length: the connection itself is
  // the framing, so Content-Length is omitted and keep-alive is forced.
  const bool streaming = !response.stream_channel.empty();
  if (!has_content_length && !streaming)
    out += crowdweb::format("Content-Length: {}\r\n", response.body.size());
  out += (keep_alive || streaming) ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

namespace {

ParseResult parse_failure(std::string message) {
  ParseResult result;
  result.state = ParseState::kError;
  result.error = std::move(message);
  return result;
}

}  // namespace

ParseResult parse_request(std::string_view buffer, ParseLimits limits) {
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_head_bytes)
      return parse_failure("request head too large");
    return {};  // need more
  }
  if (head_end > limits.max_head_bytes) return parse_failure("request head too large");

  const std::string_view head = buffer.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // Request line: METHOD SP target SP version.
  const auto parts = split(request_line, ' ');
  if (parts.size() != 3) return parse_failure("malformed request line");

  Request request;
  request.method.reserve(parts[0].size());
  for (const char c : parts[0])
    request.method += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  request.version = std::string(parts[2]);
  if (request.version != "HTTP/1.0" && request.version != "HTTP/1.1")
    return parse_failure("unsupported HTTP version");

  const std::string_view target = parts[1];
  if (target.empty() || target[0] != '/') return parse_failure("malformed request target");
  const std::size_t question = target.find('?');
  const std::string_view raw_path =
      question == std::string_view::npos ? target : target.substr(0, question);
  auto decoded_path = url_decode(raw_path);
  if (!decoded_path) return parse_failure("malformed percent-encoding in path");
  request.path = std::move(decoded_path).value();
  if (question != std::string_view::npos) request.query = std::string(target.substr(question + 1));

  // Headers.
  std::size_t cursor = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    std::size_t next = head.find("\r\n", cursor);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(cursor, next - cursor);
    cursor = next + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return parse_failure("malformed header line");
    const std::string name = to_lower(trim(line.substr(0, colon)));
    if (name.empty()) return parse_failure("empty header name");
    request.headers[name] = std::string(trim(line.substr(colon + 1)));
  }

  // Body via Content-Length (chunked is out of scope and rejected).
  std::size_t body_length = 0;
  if (request.header("transfer-encoding").has_value())
    return parse_failure("chunked transfer encoding is not supported");
  if (const auto cl = request.header("content-length")) {
    const auto parsed = parse_int(*cl);
    if (!parsed || *parsed < 0) return parse_failure("bad Content-Length");
    body_length = static_cast<std::size_t>(*parsed);
    if (body_length > limits.max_body_bytes) return parse_failure("request body too large");
  }

  const std::size_t total = head_end + 4 + body_length;
  if (buffer.size() < total) return {};  // need body bytes

  request.body = std::string(buffer.substr(head_end + 4, body_length));
  ParseResult result;
  result.state = ParseState::kComplete;
  result.request = std::move(request);
  result.consumed = total;
  return result;
}

}  // namespace crowdweb::http

#include "crowd/communities.hpp"

#include <algorithm>
#include <map>

namespace crowdweb::crowd {

UserGraph build_co_occurrence_graph(const CrowdModel& model,
                                    const CoOccurrenceOptions& options) {
  // Accumulate pair weights over every window's (cell, label) groups.
  std::map<std::pair<data::UserId, data::UserId>, double> weights;
  std::map<data::UserId, bool> seen_users;
  for (int window = 0; window < model.window_count(); ++window) {
    for (const CrowdGroup& group : model.groups(window, 2)) {
      const double weight =
          group.users.size() > options.large_group
              ? 1.0 / static_cast<double>(group.users.size())
              : 1.0;
      for (std::size_t i = 0; i < group.users.size(); ++i) {
        seen_users.emplace(group.users[i], true);
        for (std::size_t j = i + 1; j < group.users.size(); ++j)
          weights[{group.users[i], group.users[j]}] += weight;
      }
    }
  }

  UserGraph graph;
  std::map<data::UserId, std::size_t> index;
  for (const auto& [user, unused] : seen_users) {
    index[user] = graph.users.size();
    graph.users.push_back(user);
  }
  for (const auto& [pair, weight] : weights) {
    if (weight < options.min_weight) continue;
    graph.edges.emplace_back(index[pair.first], index[pair.second], weight);
  }
  return graph;
}

std::vector<Community> label_propagation(const UserGraph& graph,
                                         const LabelPropagationOptions& options) {
  const std::size_t n = graph.node_count();
  std::vector<Community> out;
  if (n == 0) return out;

  // Adjacency.
  std::vector<std::vector<std::pair<std::size_t, double>>> adjacency(n);
  for (const auto& [a, b, weight] : graph.edges) {
    if (a >= n || b >= n || a == b) continue;
    adjacency[a].push_back({b, weight});
    adjacency[b].push_back({a, weight});
  }

  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i;

  Rng rng(options.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::map<std::size_t, double> tally;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    rng.shuffle(order);
    bool changed = false;
    for (const std::size_t node : order) {
      if (adjacency[node].empty()) continue;
      tally.clear();
      for (const auto& [neighbor, weight] : adjacency[node])
        tally[labels[neighbor]] += weight;
      // Heaviest neighbor label; ties break toward the smallest label so
      // the result is independent of map iteration quirks.
      std::size_t best_label = labels[node];
      double best_weight = -1.0;
      for (const auto& [label, weight] : tally) {
        if (weight > best_weight) {
          best_weight = weight;
          best_label = label;
        }
      }
      if (best_label != labels[node]) {
        labels[node] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Materialize communities.
  std::map<std::size_t, Community> by_label;
  for (std::size_t i = 0; i < n; ++i) by_label[labels[i]].members.push_back(graph.users[i]);
  for (auto& [label, community] : by_label) {
    if (community.members.size() < std::max<std::size_t>(1, options.min_size)) continue;
    std::sort(community.members.begin(), community.members.end());
    out.push_back(std::move(community));
  }
  std::sort(out.begin(), out.end(), [](const Community& a, const Community& b) {
    if (a.members.size() != b.members.size()) return a.members.size() > b.members.size();
    return a.members < b.members;
  });
  return out;
}

}  // namespace crowdweb::crowd

// Streaming crowd monitor — the live half of the demo.
//
// `CrowdModel` answers "where does the crowd *usually* sit at 9 am" from
// mined patterns; this class answers "where is the crowd *right now*"
// from the raw check-in stream. Check-ins are observed in timestamp
// order; the monitor maintains per-cell counts for the current time
// window and a ring of recently closed windows, so a dashboard can show
// the live map plus a short history without touching the miner.
#pragma once

#include <deque>
#include <map>

#include "crowd/distribution.hpp"
#include "data/checkin.hpp"
#include "geo/grid.hpp"
#include "util/status.hpp"

namespace crowdweb::crowd {

struct StreamingOptions {
  /// Minutes per window; must divide a day.
  int window_minutes = 60;
  /// Closed windows kept in history (oldest evicted first).
  std::size_t history = 48;
};

class StreamingCrowd {
 public:
  /// Fails when window_minutes does not divide a day or history is 0.
  static Result<StreamingCrowd> create(const geo::SpatialGrid& grid,
                                       const StreamingOptions& options = {});

  /// Observes one check-in. Timestamps must be non-decreasing; a check-in
  /// older than the current window is rejected (out-of-order stream).
  Status observe(const data::CheckIn& checkin);

  /// Advances the clock without an observation (e.g. idle periods); closes
  /// windows the time has passed.
  void advance_to(std::int64_t timestamp);

  /// Index of the window containing `timestamp` since the epoch.
  [[nodiscard]] std::int64_t window_index(std::int64_t timestamp) const noexcept;

  /// The still-open window's distribution (CrowdDistribution::window() is
  /// the *hour-of-day style* index: window_index % windows_per_day).
  [[nodiscard]] const CrowdDistribution& current() const noexcept { return current_; }
  [[nodiscard]] std::int64_t current_window_index() const noexcept { return current_index_; }

  /// Recently closed windows, oldest first.
  [[nodiscard]] const std::deque<CrowdDistribution>& history() const noexcept {
    return history_;
  }

  /// Total observations accepted since construction.
  [[nodiscard]] std::size_t observed() const noexcept { return observed_; }

 private:
  StreamingCrowd(const geo::SpatialGrid& grid, const StreamingOptions& options)
      : grid_(grid), options_(options) {}

  void roll_to(std::int64_t window_index_value);

  geo::SpatialGrid grid_;
  StreamingOptions options_;
  CrowdDistribution current_;
  std::int64_t current_index_ = -1;  ///< -1 = no observation yet
  std::deque<CrowdDistribution> history_;
  std::size_t observed_ = 0;
};

}  // namespace crowdweb::crowd

#include "crowd/model.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "util/civil_time.hpp"
#include "util/format.hpp"
#include "util/parallel.hpp"

namespace crowdweb::crowd {

namespace {

/// Label of every venue under the given mode, indexed by VenueId.
///
/// A check-in's label depends only on its venue (the builder guarantees
/// checkin.category == venue.category), so the per-checkin taxonomy
/// lookup of the old row-oriented path collapses into one table
/// computed per build and shared by every user.
std::vector<mining::Item> label_venues(const data::Dataset& dataset,
                                       const data::Taxonomy& taxonomy,
                                       mining::LabelMode mode) {
  const std::span<const data::Venue> venues = dataset.venues();
  std::vector<mining::Item> labels(venues.size());
  for (std::size_t v = 0; v < venues.size(); ++v) {
    switch (mode) {
      case mining::LabelMode::kRootCategory:
        labels[v] = taxonomy.root_of(venues[v].category);
        break;
      case mining::LabelMode::kLeafCategory:
        labels[v] = venues[v].category;
        break;
      case mining::LabelMode::kVenue:
        labels[v] = venues[v].id;
        break;
    }
  }
  return labels;
}

/// Loop-invariant lookup tables shared by every user of one build:
/// the per-venue label column and the minute-of-day -> window map
/// (replacing a per-record division by the runtime window size).
struct PlacementTables {
  std::vector<mining::Item> venue_labels;          ///< indexed by VenueId
  std::vector<std::uint16_t> window_of_minute;     ///< 1440 entries
};

PlacementTables make_tables(const data::Dataset& dataset, const data::Taxonomy& taxonomy,
                            mining::LabelMode mode, int window_minutes) {
  PlacementTables tables;
  tables.venue_labels = label_venues(dataset, taxonomy, mode);
  tables.window_of_minute.resize(24 * 60);
  for (int minute = 0; minute < 24 * 60; ++minute)
    tables.window_of_minute[static_cast<std::size_t>(minute)] =
        static_cast<std::uint16_t>(minute / window_minutes);
  return tables;
}

/// Picks, per (label, window), the venue the user checked into most often
/// during that window; falls back to their most-visited venue of that
/// label at any time.
///
/// Columnar and demand-driven: the constructor makes one pass over the
/// user's timestamp column to precompute each record's window, and each
/// pick() answers by scanning the venue/window columns for the queried
/// (label, window). A user is only ever asked about the few elements of
/// their qualifying patterns, so two O(records) scans per query beat
/// building any index — and replace the old per-record std::map nest.
/// Picks are identical to the old maps': highest count wins, ties break
/// toward the smallest venue id (the old map's ascending iteration
/// order with a strictly-greater comparison).
class RepresentativeVenues {
 public:
  RepresentativeVenues(const data::Dataset::UserColumns& records,
                       const PlacementTables& tables)
      : venues_(records.venues()), tables_(tables) {
    const std::span<const std::int64_t> timestamps = records.timestamps();
    windows_.resize(timestamps.size());
    for (std::size_t i = 0; i < timestamps.size(); ++i)
      windows_[i] = tables.window_of_minute[static_cast<std::size_t>(
          minute_of_day(timestamps[i]))];
  }

  [[nodiscard]] std::optional<data::VenueId> pick(mining::Item label, int window) const {
    const std::span<const mining::Item> venue_labels = tables_.venue_labels;
    // Per-venue counts of the matching records, in first-seen order;
    // users visit few distinct venues per label, so linear probing wins.
    std::vector<std::pair<data::VenueId, std::size_t>> counts;
    const auto bump = [&counts](data::VenueId venue) {
      for (auto& [seen, count] : counts) {
        if (seen == venue) {
          ++count;
          return;
        }
      }
      counts.emplace_back(venue, 1);
    };
    for (std::size_t i = 0; i < venues_.size(); ++i) {
      if (venue_labels[venues_[i]] == label && windows_[i] == window) bump(venues_[i]);
    }
    if (counts.empty()) {
      // Fallback: the user's most-visited venue of this label at any time.
      for (const data::VenueId venue : venues_) {
        if (venue_labels[venue] == label) bump(venue);
      }
    }
    if (counts.empty()) return std::nullopt;
    data::VenueId best_venue = counts.front().first;
    std::size_t best_count = 0;
    for (const auto& [venue, count] : counts) {
      if (count > best_count || (count == best_count && venue < best_venue)) {
        best_count = count;
        best_venue = venue;
      }
    }
    return best_venue;
  }

 private:
  std::span<const data::VenueId> venues_;   ///< the user's venue column
  const PlacementTables& tables_;
  std::vector<std::uint16_t> windows_;      ///< window of each record
};

/// Closed-mode placement: reads the compact per-user index instead of
/// the expanded pattern set. The index holds, in ascending rank (the
/// canonical expanded-mode emission order), every (label, minute)
/// candidate that can win a placement at some threshold; replaying the
/// expanded path's rules over it — support filter, first-qualifying
/// (window, label) wins, same venue pick — therefore emits placements
/// value-identical to the expanded build, in the same order (winners
/// surface at their winning element's rank in both paths).
void append_compact_placements(const data::Dataset& dataset,
                               const patterns::UserMobility& user,
                               const geo::SpatialGrid& grid, const CrowdOptions& options,
                               const PlacementTables& tables,
                               std::vector<std::vector<CrowdPlacement>>& out) {
  if (user.placement_index.empty()) return;
  const int windows = static_cast<int>(out.size());
  std::optional<RepresentativeVenues> venues;
  std::set<std::pair<int, mining::Item>> placed;
  for (const patterns::PlacementCandidate& candidate : user.placement_index) {
    if (candidate.support < options.min_pattern_support) continue;
    if (!venues) venues.emplace(dataset.checkins_for(user.user), tables);
    const int window = std::clamp(static_cast<int>(candidate.minute) / options.window_minutes,
                                  0, windows - 1);
    if (!placed.insert({window, candidate.label}).second) continue;
    const auto venue_id = venues->pick(candidate.label, window);
    if (!venue_id) continue;
    const data::Venue* venue = dataset.venue(*venue_id);
    if (venue == nullptr) continue;
    CrowdPlacement placement;
    placement.user = user.user;
    placement.label = candidate.label;
    placement.venue = *venue_id;
    placement.position = venue->position;
    placement.cell = grid.clamped_cell_of(venue->position);
    placement.pattern_support = candidate.support;
    out[static_cast<std::size_t>(window)].push_back(placement);
  }
}

/// Appends one user's placements into per-window scratch vectors. The
/// full build, the parallel chunks, and the incremental update place
/// users through this single code path, so their outputs agree
/// element-for-element. Compact (closed-only) entries branch to the
/// index-driven path, which reproduces this one's output exactly.
void append_user_placements(const data::Dataset& dataset, const patterns::UserMobility& user,
                            const geo::SpatialGrid& grid, const CrowdOptions& options,
                            const PlacementTables& tables,
                            std::vector<std::vector<CrowdPlacement>>& out) {
  if (user.closed_only) {
    append_compact_placements(dataset, user, grid, options, tables, out);
    return;
  }
  if (user.patterns.empty()) return;
  const int windows = static_cast<int>(out.size());
  // Built on the first qualifying pattern: most users never clear the
  // support threshold, and skipping their index build is most of the
  // stage's win at scale.
  std::optional<RepresentativeVenues> venues;
  // A user appears at most once per (window, label): dedupe elements of
  // different patterns that land in the same window.
  std::set<std::pair<int, mining::Item>> placed;
  for (const patterns::MobilityPattern& pattern : user.patterns) {
    if (pattern.support < options.min_pattern_support) continue;
    if (!venues) venues.emplace(dataset.checkins_for(user.user), tables);
    for (const patterns::TimedElement& element : pattern.elements) {
      const int minute = static_cast<int>(element.mean_minute);
      const int window =
          std::clamp(minute / options.window_minutes, 0, windows - 1);
      if (!placed.insert({window, element.label}).second) continue;
      const auto venue_id = venues->pick(element.label, window);
      if (!venue_id) continue;
      const data::Venue* venue = dataset.venue(*venue_id);
      if (venue == nullptr) continue;
      CrowdPlacement placement;
      placement.user = user.user;
      placement.label = element.label;
      placement.venue = *venue_id;
      placement.position = venue->position;
      placement.cell = grid.clamped_cell_of(venue->position);
      placement.pattern_support = pattern.support;
      out[static_cast<std::size_t>(window)].push_back(placement);
    }
  }
}

/// Validates options and, on success, fills per-window placement
/// vectors by running every entry of `mobility` (any range of
/// UserMobility) through the shared placement path. Entries must be in
/// ascending user order — that is what makes each window's placements
/// user-sorted, which the incremental update relies on.
///
/// With threads > 1 the entries are split into contiguous chunks, each
/// placed into its own scratch windows on the worker pool, and the
/// per-window results are concatenated in chunk order — reproducing the
/// sequential output exactly.
template <typename MobilityRange>
Result<std::vector<std::vector<CrowdPlacement>>> place_all(const data::Dataset& dataset,
                                                           const MobilityRange& mobility,
                                                           const geo::SpatialGrid& grid,
                                                           const CrowdOptions& options,
                                                           unsigned threads) {
  if (options.window_minutes <= 0 || (24 * 60) % options.window_minutes != 0)
    return invalid_argument(
        crowdweb::format("window_minutes must divide a day, got {}", options.window_minutes));

  const int windows = (24 * 60) / options.window_minutes;
  std::vector<std::vector<CrowdPlacement>> scratch(static_cast<std::size_t>(windows));

  // NOTE: synchronization assumes root-category labels, the platform
  // default; the representative-venue lookup mirrors that.
  const PlacementTables tables = make_tables(dataset, data::Taxonomy::foursquare(),
                                             mining::LabelMode::kRootCategory,
                                             options.window_minutes);

  std::vector<const patterns::UserMobility*> entries;
  for (const patterns::UserMobility& user : mobility) entries.push_back(&user);

  const unsigned workers = util::effective_threads(threads, entries.size());
  if (workers <= 1) {
    for (const patterns::UserMobility* user : entries)
      append_user_placements(dataset, *user, grid, options, tables, scratch);
    return scratch;
  }

  std::vector<std::vector<std::vector<CrowdPlacement>>> chunk_scratch(
      workers, std::vector<std::vector<CrowdPlacement>>(static_cast<std::size_t>(windows)));
  util::parallel_chunks(entries.size(), workers,
                        [&](unsigned chunk, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i)
                            append_user_placements(dataset, *entries[i], grid, options,
                                                   tables, chunk_scratch[chunk]);
                        });
  for (std::size_t w = 0; w < scratch.size(); ++w) {
    std::size_t total = 0;
    for (const auto& chunk : chunk_scratch) total += chunk[w].size();
    scratch[w].reserve(total);
    for (auto& chunk : chunk_scratch)
      scratch[w].insert(scratch[w].end(), chunk[w].begin(), chunk[w].end());
  }
  return scratch;
}

}  // namespace

void CrowdModel::adopt_windows(std::vector<std::vector<CrowdPlacement>> windows) {
  placements_.clear();
  placements_.reserve(windows.size());
  for (std::vector<CrowdPlacement>& window : windows)
    placements_.push_back(std::make_shared<const std::vector<CrowdPlacement>>(std::move(window)));
}

Result<CrowdModel> CrowdModel::build(const data::Dataset& dataset,
                                     std::span<const patterns::UserMobility> mobility,
                                     const geo::SpatialGrid& grid,
                                     const CrowdOptions& options, unsigned threads) {
  auto placed = place_all(dataset, mobility, grid, options, threads);
  if (!placed) return placed.status();
  CrowdModel model(grid, options);
  model.adopt_windows(std::move(*placed));
  return model;
}

Result<CrowdModel> CrowdModel::build(const data::Dataset& dataset,
                                     const patterns::MobilityTable& mobility,
                                     const geo::SpatialGrid& grid,
                                     const CrowdOptions& options, unsigned threads) {
  auto placed = place_all(dataset, mobility, grid, options, threads);
  if (!placed) return placed.status();
  CrowdModel model(grid, options);
  model.adopt_windows(std::move(*placed));
  return model;
}

Result<CrowdModel> CrowdModel::merge(std::span<const CrowdModel* const> parts) {
  if (parts.empty()) return invalid_argument("merge needs at least one part");
  const CrowdModel& first = *parts.front();
  if (first.window_count() == 0)
    return invalid_argument("cannot merge default-constructed crowd models");
  for (const CrowdModel* part : parts) {
    if (part->window_count() != first.window_count() ||
        part->options_.window_minutes != first.options_.window_minutes ||
        part->options_.min_pattern_support != first.options_.min_pattern_support)
      return invalid_argument("crowd models disagree on windows or options");
    if (part->grid_.bounds() != first.grid_.bounds() ||
        part->grid_.rows() != first.grid_.rows() ||
        part->grid_.cols() != first.grid_.cols() ||
        part->grid_.cell_size_meters() != first.grid_.cell_size_meters())
      return invalid_argument(
          "crowd models disagree on grid geometry; merge requires a pinned grid");
  }

  CrowdModel model(first.grid_, first.options_);
  const std::size_t windows = first.placements_.size();
  model.placements_.resize(windows);
  std::vector<const WindowPtr*> live;
  for (std::size_t w = 0; w < windows; ++w) {
    live.clear();
    for (const CrowdModel* part : parts) {
      if (!part->placements_[w]->empty()) live.push_back(&part->placements_[w]);
    }
    if (live.empty()) {
      model.placements_[w] = first.placements_[w];  // any empty window serves
      continue;
    }
    if (live.size() == 1) {
      model.placements_[w] = *live.front();  // single contributor: share
      continue;
    }
    // K-way merge by user id. Each user's placements come from exactly
    // one part, so comparing the head users reproduces the global
    // user-sorted order a single build would emit.
    auto merged = std::make_shared<std::vector<CrowdPlacement>>();
    std::size_t total = 0;
    for (const WindowPtr* window : live) total += (*window)->size();
    merged->reserve(total);
    std::vector<std::size_t> cursor(live.size(), 0);
    while (merged->size() < total) {
      std::size_t pick = live.size();
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (cursor[i] >= (*live[i])->size()) continue;
        if (pick == live.size() ||
            (**live[i])[cursor[i]].user < (**live[pick])[cursor[pick]].user)
          pick = i;
      }
      merged->push_back((**live[pick])[cursor[pick]++]);
    }
    model.placements_[w] = std::move(merged);
  }
  return model;
}

Result<CrowdModel> CrowdModel::update(const CrowdModel& previous,
                                      const data::Dataset& dataset,
                                      const patterns::MobilityTable& mobility,
                                      std::span<const data::UserId> changed_users) {
  CrowdModel model(previous.grid_, previous.options_);
  const int windows = previous.window_count();
  if (windows == 0)
    return invalid_argument("cannot update a default-constructed crowd model");

  // Place the changed users afresh, ascending by user id so each
  // window's fresh block is user-sorted like the full build's output.
  std::vector<data::UserId> changed(changed_users.begin(), changed_users.end());
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  const PlacementTables tables = make_tables(dataset, data::Taxonomy::foursquare(),
                                             mining::LabelMode::kRootCategory,
                                             model.options_.window_minutes);
  std::vector<std::vector<CrowdPlacement>> fresh(static_cast<std::size_t>(windows));
  for (const data::UserId user : changed) {
    if (const patterns::UserMobility* entry = mobility.find(user))
      append_user_placements(dataset, *entry, model.grid_, model.options_, tables, fresh);
  }

  const auto is_changed = [&](data::UserId user) {
    return std::binary_search(changed.begin(), changed.end(), user);
  };
  const auto contains_changed = [&](const std::vector<CrowdPlacement>& old) {
    for (const data::UserId user : changed) {
      // Placements are user-sorted; one binary search per changed user.
      const auto it = std::lower_bound(
          old.begin(), old.end(), user,
          [](const CrowdPlacement& p, data::UserId u) { return p.user < u; });
      if (it != old.end() && it->user == user) return true;
    }
    return false;
  };

  model.placements_.resize(static_cast<std::size_t>(windows));
  for (int w = 0; w < windows; ++w) {
    const std::size_t wi = static_cast<std::size_t>(w);
    const std::vector<CrowdPlacement>& old = *previous.placements_[wi];
    if (fresh[wi].empty() && !contains_changed(old)) {
      model.placements_[wi] = previous.placements_[wi];  // untouched: share
      continue;
    }
    // Rebuild the window: retract the changed users' old placements and
    // merge the fresh blocks in by user id, preserving per-user order.
    auto rebuilt = std::make_shared<std::vector<CrowdPlacement>>();
    rebuilt->reserve(old.size() + fresh[wi].size());
    std::size_t oi = 0;
    std::size_t fi = 0;
    while (oi < old.size() || fi < fresh[wi].size()) {
      if (oi < old.size() && is_changed(old[oi].user)) {
        ++oi;  // retracted
        continue;
      }
      if (fi == fresh[wi].size()) {
        rebuilt->push_back(old[oi++]);
      } else if (oi == old.size() || fresh[wi][fi].user < old[oi].user) {
        rebuilt->push_back(fresh[wi][fi++]);
      } else {
        rebuilt->push_back(old[oi++]);
      }
    }
    model.placements_[wi] = std::move(rebuilt);
  }
  return model;
}

std::string CrowdModel::window_label(int window) const {
  const int start = window * options_.window_minutes;
  const int end = start + options_.window_minutes;
  return crowdweb::format("{:02}:{:02}-{:02}:{:02}", start / 60, start % 60,
                          (end / 60) % 25, end % 60);
}

std::span<const CrowdPlacement> CrowdModel::placements(int window) const {
  if (window < 0 || window >= window_count()) return {};
  return *placements_[static_cast<std::size_t>(window)];
}

CrowdDistribution CrowdModel::distribution(int window) const {
  CrowdDistribution dist(window);
  for (const CrowdPlacement& placement : placements(window)) dist.add(placement.cell);
  return dist;
}

FlowMatrix CrowdModel::flow(int from_window, int to_window) const {
  FlowMatrix matrix(from_window, to_window);
  // Index the destination window by user; a user may occupy several
  // labels per window — use their first placement in each.
  std::map<data::UserId, geo::CellId> destination;
  for (const CrowdPlacement& placement : placements(to_window))
    destination.try_emplace(placement.user, placement.cell);
  std::set<data::UserId> moved;
  for (const CrowdPlacement& placement : placements(from_window)) {
    if (!moved.insert(placement.user).second) continue;
    const auto it = destination.find(placement.user);
    if (it == destination.end()) continue;
    matrix.add(placement.cell, it->second);
  }
  return matrix;
}

std::vector<CrowdGroup> CrowdModel::groups(int window, std::size_t min_size) const {
  std::map<std::pair<geo::CellId, mining::Item>, std::vector<data::UserId>> buckets;
  for (const CrowdPlacement& placement : placements(window))
    buckets[{placement.cell, placement.label}].push_back(placement.user);
  std::vector<CrowdGroup> out;
  for (auto& [key, users] : buckets) {
    if (users.size() < std::max<std::size_t>(1, min_size)) continue;
    std::sort(users.begin(), users.end());
    out.push_back({key.first, key.second, std::move(users)});
  }
  std::sort(out.begin(), out.end(), [](const CrowdGroup& a, const CrowdGroup& b) {
    if (a.users.size() != b.users.size()) return a.users.size() > b.users.size();
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.label < b.label;
  });
  return out;
}

std::size_t CrowdModel::total_placements() const noexcept {
  std::size_t total = 0;
  for (const auto& window : placements_) total += window->size();
  return total;
}

CrowdModel::Rhythm CrowdModel::rhythm() const {
  Rhythm out;
  std::map<mining::Item, std::size_t> index;
  for (const auto& window : placements_) {
    for (const CrowdPlacement& placement : *window) index.emplace(placement.label, 0);
  }
  std::size_t next = 0;
  for (auto& [label, slot] : index) {
    slot = next++;
    out.labels.push_back(label);
  }
  out.counts.assign(out.labels.size(),
                    std::vector<std::size_t>(placements_.size(), 0));
  for (std::size_t w = 0; w < placements_.size(); ++w) {
    for (const CrowdPlacement& placement : *placements_[w])
      ++out.counts[index[placement.label]][w];
  }
  return out;
}

}  // namespace crowdweb::crowd

// Crowd distributions and flows over the microcell grid.
//
// A `CrowdDistribution` is the per-cell headcount for one time window —
// what the CrowdWeb map colors at "9-10 am". A `FlowMatrix` counts users
// moving between cells across consecutive windows — the movement the demo
// animates when the selected time changes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "data/checkin.hpp"
#include "geo/grid.hpp"

namespace crowdweb::crowd {

/// Sparse per-cell headcount for one time window.
class CrowdDistribution {
 public:
  CrowdDistribution() = default;
  explicit CrowdDistribution(int window) : window_(window) {}

  void add(geo::CellId cell, std::size_t count = 1) {
    counts_[cell] += count;
    total_ += count;
  }

  [[nodiscard]] int window() const noexcept { return window_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(geo::CellId cell) const noexcept {
    const auto it = counts_.find(cell);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<geo::CellId, std::size_t>& cells() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::size_t occupied_cells() const noexcept { return counts_.size(); }

  /// The `n` most crowded cells, descending by count (ties by cell id).
  [[nodiscard]] std::vector<std::pair<geo::CellId, std::size_t>> top_cells(
      std::size_t n) const;

 private:
  int window_ = 0;
  std::map<geo::CellId, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Sparse cell-to-cell movement counts between two time windows.
class FlowMatrix {
 public:
  FlowMatrix() = default;
  FlowMatrix(int from_window, int to_window)
      : from_window_(from_window), to_window_(to_window) {}

  void add(geo::CellId from, geo::CellId to, std::size_t count = 1) {
    flows_[{from, to}] += count;
    total_ += count;
  }

  [[nodiscard]] int from_window() const noexcept { return from_window_; }
  [[nodiscard]] int to_window() const noexcept { return to_window_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(geo::CellId from, geo::CellId to) const noexcept {
    const auto it = flows_.find({from, to});
    return it == flows_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::pair<geo::CellId, geo::CellId>, std::size_t>& flows()
      const noexcept {
    return flows_;
  }

  /// Users leaving `cell` (excluding those staying).
  [[nodiscard]] std::size_t outflow(geo::CellId cell) const noexcept;
  /// Users arriving at `cell` (excluding those staying).
  [[nodiscard]] std::size_t inflow(geo::CellId cell) const noexcept;
  /// Users staying in `cell`.
  [[nodiscard]] std::size_t stayers(geo::CellId cell) const noexcept {
    return count(cell, cell);
  }

  /// The `n` largest movements (optionally excluding stay-in-place),
  /// descending by count.
  [[nodiscard]] std::vector<std::pair<std::pair<geo::CellId, geo::CellId>, std::size_t>>
  top_flows(std::size_t n, bool include_stays = false) const;

 private:
  int from_window_ = 0;
  int to_window_ = 0;
  std::map<std::pair<geo::CellId, geo::CellId>, std::size_t> flows_;
  std::size_t total_ = 0;
};

}  // namespace crowdweb::crowd

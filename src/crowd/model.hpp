// Crowd synchronization and aggregation — phase 3 of the framework.
//
// Takes every user's time-annotated mobility patterns and aligns them on
// wall-clock time windows: a user whose pattern says "Eatery around
// 12:20" *appears* in the city during the 12:00-13:00 window, placed at
// their representative eatery (their most-visited venue of that label in
// that window). Aggregating the placements over the microcell grid gives
// the crowd distribution the map displays; following users across
// consecutive windows gives the crowd flows.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crowd/distribution.hpp"
#include "data/dataset.hpp"
#include "geo/grid.hpp"
#include "patterns/mobility.hpp"
#include "util/status.hpp"

namespace crowdweb::crowd {

/// One user's presence in one time window.
struct CrowdPlacement {
  data::UserId user = 0;
  mining::Item label = 0;        ///< the pattern element's place label
  data::VenueId venue = 0;       ///< representative venue for that label
  geo::LatLon position;
  geo::CellId cell = 0;
  double pattern_support = 0.0;  ///< support of the pattern that placed them
};

/// Users sharing a (cell, label) in one window — the paper's "group".
struct CrowdGroup {
  geo::CellId cell = 0;
  mining::Item label = 0;
  std::vector<data::UserId> users;
};

struct CrowdOptions {
  /// Minutes per synchronization window (60 = the demo's hourly view).
  int window_minutes = 60;
  /// Only pattern elements from patterns at or above this support place a
  /// user on the map.
  double min_pattern_support = 0.25;
};

/// The synchronized, aggregated crowd — queryable per time window.
///
/// Each window's placements live behind a shared_ptr: `update` produces
/// a new model that shares every window the delta did not affect with
/// the previous one, rebuilding only the affected windows. An updated
/// model is value-identical to a full rebuild over the same inputs.
class CrowdModel {
 public:
  /// Builds the model. `grid` is copied; `dataset` is only read during
  /// construction. Fails when window_minutes does not divide a day.
  ///
  /// `threads` fans user placement out over a transient worker pool
  /// (0 = hardware concurrency, 1 = sequential). Users are split into
  /// contiguous chunks whose per-window results are concatenated in
  /// chunk order, so the model is identical at any thread count.
  static Result<CrowdModel> build(const data::Dataset& dataset,
                                  std::span<const patterns::UserMobility> mobility,
                                  const geo::SpatialGrid& grid,
                                  const CrowdOptions& options = {},
                                  unsigned threads = 1);

  /// Same, over a shared mobility table.
  static Result<CrowdModel> build(const data::Dataset& dataset,
                                  const patterns::MobilityTable& mobility,
                                  const geo::SpatialGrid& grid,
                                  const CrowdOptions& options = {},
                                  unsigned threads = 1);

  /// Merges partition models whose user sets are disjoint into one model
  /// equal to a full build over the union of their inputs. Every part
  /// must share the grid geometry, options, and window count — sharded
  /// deployments guarantee this by pinning each shard's grid to the same
  /// city-wide box (ingest::IngestPipelineConfig::fixed_grid_bounds).
  /// Each window is a k-way merge of the parts' placements by user id;
  /// windows populated by only one part are shared with it by pointer.
  /// Because windows are user-sorted and each user lives in exactly one
  /// part, the result is value-identical to a single model built over
  /// the combined corpus.
  static Result<CrowdModel> merge(std::span<const CrowdModel* const> parts);

  /// Incremental form: retracts the changed users' previous placements,
  /// places them afresh from `mobility`, and shares every window no
  /// changed user appears in with `previous` by pointer. Valid only
  /// while grid and options are unchanged (a grid or option change
  /// requires a full build); under that contract the result equals
  /// `build(dataset, mobility, previous.grid(), previous.options())`.
  static Result<CrowdModel> update(const CrowdModel& previous,
                                   const data::Dataset& dataset,
                                   const patterns::MobilityTable& mobility,
                                   std::span<const data::UserId> changed_users);

  [[nodiscard]] const geo::SpatialGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const CrowdOptions& options() const noexcept { return options_; }
  [[nodiscard]] int window_count() const noexcept {
    return static_cast<int>(placements_.size());
  }
  /// "09:00-10:00" style label of a window index.
  [[nodiscard]] std::string window_label(int window) const;

  /// All user placements of a window.
  [[nodiscard]] std::span<const CrowdPlacement> placements(int window) const;

  /// Per-cell headcount for a window. Total equals placements(window).size().
  [[nodiscard]] CrowdDistribution distribution(int window) const;

  /// Movements of users present in both windows.
  [[nodiscard]] FlowMatrix flow(int from_window, int to_window) const;

  /// Groups of at least `min_size` users sharing (cell, label) in a window,
  /// largest first.
  [[nodiscard]] std::vector<CrowdGroup> groups(int window, std::size_t min_size = 2) const;

  /// Total placements across all windows.
  [[nodiscard]] std::size_t total_placements() const noexcept;

  /// Placement counts per (label, window) — the city's daily rhythm.
  /// labels are sorted ascending; counts[l][w] is label l's headcount in
  /// window w.
  struct Rhythm {
    std::vector<mining::Item> labels;
    std::vector<std::vector<std::size_t>> counts;
  };
  [[nodiscard]] Rhythm rhythm() const;

  /// Identity of a window's placement storage: equal across models iff
  /// the window object is shared (reused, not rebuilt). For sharing
  /// regression tests and delta telemetry.
  [[nodiscard]] const void* window_identity(int window) const noexcept {
    if (window < 0 || window >= window_count()) return nullptr;
    return placements_[static_cast<std::size_t>(window)].get();
  }

 private:
  /// One window's placements, shared between models when unaffected.
  using WindowPtr = std::shared_ptr<const std::vector<CrowdPlacement>>;

  CrowdModel(geo::SpatialGrid grid, CrowdOptions options)
      : grid_(grid), options_(options) {}

  /// Wraps freshly built per-window vectors into shared storage.
  void adopt_windows(std::vector<std::vector<CrowdPlacement>> windows);

  geo::SpatialGrid grid_;
  CrowdOptions options_;
  std::vector<WindowPtr> placements_;  // one shared vector per window
};

}  // namespace crowdweb::crowd

#include "crowd/distribution.hpp"

#include <algorithm>

namespace crowdweb::crowd {

std::vector<std::pair<geo::CellId, std::size_t>> CrowdDistribution::top_cells(
    std::size_t n) const {
  std::vector<std::pair<geo::CellId, std::size_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::size_t FlowMatrix::outflow(geo::CellId cell) const noexcept {
  std::size_t total = 0;
  for (const auto& [pair, count] : flows_) {
    if (pair.first == cell && pair.second != cell) total += count;
  }
  return total;
}

std::size_t FlowMatrix::inflow(geo::CellId cell) const noexcept {
  std::size_t total = 0;
  for (const auto& [pair, count] : flows_) {
    if (pair.second == cell && pair.first != cell) total += count;
  }
  return total;
}

std::vector<std::pair<std::pair<geo::CellId, geo::CellId>, std::size_t>>
FlowMatrix::top_flows(std::size_t n, bool include_stays) const {
  std::vector<std::pair<std::pair<geo::CellId, geo::CellId>, std::size_t>> out;
  for (const auto& entry : flows_) {
    if (!include_stays && entry.first.first == entry.first.second) continue;
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace crowdweb::crowd

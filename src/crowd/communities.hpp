// Crowd communities via label propagation.
//
// The paper tags itself "Social Networks" and cites the authors' label
// propagation work (ref [7]); the natural social structure in a crowd
// model is co-occurrence: users who repeatedly share a (microcell, time
// window) bucket move together. This module builds that weighted user
// graph from the CrowdModel and partitions it with (deterministic,
// seeded) label propagation.
#pragma once

#include <cstdint>
#include <vector>

#include "crowd/model.hpp"
#include "util/rng.hpp"

namespace crowdweb::crowd {

/// A weighted undirected user co-occurrence graph.
struct UserGraph {
  std::vector<data::UserId> users;  ///< node index -> user id (sorted)
  /// (node a, node b, weight); a < b, each pair once.
  std::vector<std::tuple<std::size_t, std::size_t, double>> edges;

  [[nodiscard]] std::size_t node_count() const noexcept { return users.size(); }
};

struct CoOccurrenceOptions {
  /// Two users need at least this many shared (cell, window) buckets to
  /// get an edge.
  double min_weight = 2.0;
  /// Groups larger than this are down-weighted (1/size) so giant venues
  /// don't connect everyone to everyone.
  std::size_t large_group = 16;
};

/// Builds the co-occurrence graph from every window's groups.
[[nodiscard]] UserGraph build_co_occurrence_graph(const CrowdModel& model,
                                                  const CoOccurrenceOptions& options = {});

/// One detected community (members sorted ascending).
struct Community {
  std::vector<data::UserId> members;
};

struct LabelPropagationOptions {
  std::uint64_t seed = 7;
  int max_iterations = 50;
  /// Communities smaller than this are reported as singletons-dropped.
  std::size_t min_size = 2;
};

/// Runs synchronous-free (sequential, random order) label propagation on
/// the graph; returns communities of at least `min_size`, largest first.
/// Deterministic for a given seed.
[[nodiscard]] std::vector<Community> label_propagation(
    const UserGraph& graph, const LabelPropagationOptions& options = {});

}  // namespace crowdweb::crowd

#include "crowd/streaming.hpp"

#include "util/format.hpp"

namespace crowdweb::crowd {

Result<StreamingCrowd> StreamingCrowd::create(const geo::SpatialGrid& grid,
                                              const StreamingOptions& options) {
  if (options.window_minutes <= 0 || (24 * 60) % options.window_minutes != 0)
    return invalid_argument(
        crowdweb::format("window_minutes must divide a day, got {}", options.window_minutes));
  if (options.history == 0) return invalid_argument("history must be positive");
  return StreamingCrowd(grid, options);
}

std::int64_t StreamingCrowd::window_index(std::int64_t timestamp) const noexcept {
  const std::int64_t window_seconds = static_cast<std::int64_t>(options_.window_minutes) * 60;
  // Floor division handles pre-epoch timestamps too.
  std::int64_t index = timestamp / window_seconds;
  if (timestamp % window_seconds != 0 && timestamp < 0) --index;
  return index;
}

void StreamingCrowd::roll_to(std::int64_t window_index_value) {
  const int windows_per_day = (24 * 60) / options_.window_minutes;
  if (current_index_ >= 0 && window_index_value > current_index_) {
    history_.push_back(std::move(current_));
    while (history_.size() > options_.history) history_.pop_front();
    // Intermediate empty windows are recorded too, so history spacing is
    // uniform (a dashboard can rely on one entry per window).
    for (std::int64_t w = current_index_ + 1; w < window_index_value; ++w) {
      history_.emplace_back(static_cast<int>(w % windows_per_day));
      while (history_.size() > options_.history) history_.pop_front();
    }
  }
  current_ = CrowdDistribution(static_cast<int>(window_index_value % windows_per_day));
  current_index_ = window_index_value;
}

Status StreamingCrowd::observe(const data::CheckIn& checkin) {
  const std::int64_t index = window_index(checkin.timestamp);
  if (current_index_ >= 0 && index < current_index_)
    return failed_precondition(
        crowdweb::format("out-of-order check-in: window {} after window {}", index,
                         current_index_));
  if (current_index_ < 0 || index > current_index_) roll_to(index);
  current_.add(grid_.clamped_cell_of(checkin.position));
  ++observed_;
  return Status::ok();
}

void StreamingCrowd::advance_to(std::int64_t timestamp) {
  const std::int64_t index = window_index(timestamp);
  if (current_index_ < 0) {
    roll_to(index);
    return;
  }
  if (index > current_index_) roll_to(index);
}

}  // namespace crowdweb::crowd

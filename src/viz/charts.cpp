#include "viz/charts.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"

namespace crowdweb::viz {

namespace {

constexpr Color kInk{40, 40, 48};
constexpr Color kGridline{225, 225, 230};

struct PlotArea {
  double left, top, right, bottom;
  double x_lo, x_hi, y_lo, y_hi;

  [[nodiscard]] double x_of(double x) const noexcept {
    const double span = x_hi - x_lo;
    const double t = span > 0 ? (x - x_lo) / span : 0.5;
    return left + t * (right - left);
  }
  [[nodiscard]] double y_of(double y) const noexcept {
    const double span = y_hi - y_lo;
    const double t = span > 0 ? (y - y_lo) / span : 0.5;
    return bottom - t * (bottom - top);
  }
};

std::string tick_label(double value) {
  if (std::abs(value - std::round(value)) < 1e-9 && std::abs(value) < 1e7)
    return crowdweb::format("{}", static_cast<long long>(std::llround(value)));
  return crowdweb::format("{:.2f}", value);
}

void draw_frame(SvgDocument& svg, const PlotArea& area, const std::string& title,
                const std::string& x_label, const std::string& y_label) {
  if (!title.empty())
    svg.text((area.left + area.right) / 2, area.top - 14, title, 15, kInk,
             TextAnchor::kMiddle, true);
  if (!x_label.empty())
    svg.text((area.left + area.right) / 2, area.bottom + 36, x_label, 12, kInk,
             TextAnchor::kMiddle);
  if (!y_label.empty()) {
    // Rotated y-axis label.
    svg.raw(crowdweb::format(
        "<text x=\"{:.2f}\" y=\"{:.2f}\" font-size=\"12\" fill=\"{}\""
        " text-anchor=\"middle\" font-family=\"Helvetica,Arial,sans-serif\""
        " transform=\"rotate(-90 {:.2f} {:.2f})\">{}</text>\n",
        area.left - 42.0, (area.top + area.bottom) / 2, to_hex(kInk), area.left - 42.0,
        (area.top + area.bottom) / 2, xml_escape(y_label)));
  }
  svg.line(area.left, area.bottom, area.right, area.bottom, stroke_style(kInk, 1.2));
  svg.line(area.left, area.top, area.left, area.bottom, stroke_style(kInk, 1.2));
}

void draw_x_ticks(SvgDocument& svg, const PlotArea& area, const std::vector<double>& ticks) {
  for (const double tick : ticks) {
    const double x = area.x_of(tick);
    svg.line(x, area.bottom, x, area.bottom + 4, stroke_style(kInk, 1.0));
    svg.line(x, area.top, x, area.bottom, stroke_style(kGridline, 0.8));
    svg.text(x, area.bottom + 17, tick_label(tick), 11, kInk, TextAnchor::kMiddle);
  }
}

void draw_y_ticks(SvgDocument& svg, const PlotArea& area, const std::vector<double>& ticks) {
  for (const double tick : ticks) {
    const double y = area.y_of(tick);
    svg.line(area.left - 4, y, area.left, y, stroke_style(kInk, 1.0));
    svg.line(area.left, y, area.right, y, stroke_style(kGridline, 0.8));
    svg.text(area.left - 7, y + 4, tick_label(tick), 11, kInk, TextAnchor::kEnd);
  }
}

}  // namespace

std::vector<double> nice_ticks(double lo, double hi, std::size_t count) {
  if (count == 0) return {};
  if (hi <= lo) return {lo};
  const double raw_step = (hi - lo) / static_cast<double>(count);
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (const double mult : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (magnitude * mult >= raw_step) {
      step = magnitude * mult;
      break;
    }
  }
  std::vector<double> ticks;
  const double start = std::ceil(lo / step - 1e-9) * step;
  for (double tick = start; tick <= hi + step * 1e-6; tick += step) {
    // Snap tiny float error to zero.
    ticks.push_back(std::abs(tick) < step * 1e-6 ? 0.0 : tick);
  }
  return ticks;
}

std::string render_line_chart(const LineChartSpec& spec) {
  SvgDocument svg(spec.size.width, spec.size.height);
  svg.rect(0, 0, spec.size.width, spec.size.height, fill_style({255, 255, 255}));

  double x_lo = 0.0, x_hi = 1.0, y_lo = 0.0, y_hi = 1.0;
  bool first = true;
  for (const Series& series : spec.series) {
    for (std::size_t i = 0; i < series.x.size() && i < series.y.size(); ++i) {
      if (first) {
        x_lo = x_hi = series.x[i];
        y_lo = y_hi = series.y[i];
        first = false;
      }
      x_lo = std::min(x_lo, series.x[i]);
      x_hi = std::max(x_hi, series.x[i]);
      y_lo = std::min(y_lo, series.y[i]);
      y_hi = std::max(y_hi, series.y[i]);
    }
  }
  if (spec.y_from_zero) y_lo = std::min(0.0, y_lo);
  if (y_hi <= y_lo) y_hi = y_lo + 1.0;
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;
  y_hi += (y_hi - y_lo) * 0.06;  // headroom

  PlotArea area{64, 40, spec.size.width - 20, spec.size.height - 56, x_lo, x_hi, y_lo, y_hi};
  draw_x_ticks(svg, area, nice_ticks(x_lo, x_hi, 6));
  draw_y_ticks(svg, area, nice_ticks(y_lo, y_hi, 6));
  draw_frame(svg, area, spec.title, spec.x_label, spec.y_label);

  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    const Series& series = spec.series[s];
    const Color color = categorical(s);
    std::vector<std::pair<double, double>> points;
    for (std::size_t i = 0; i < series.x.size() && i < series.y.size(); ++i)
      points.emplace_back(area.x_of(series.x[i]), area.y_of(series.y[i]));
    svg.polyline(points, stroke_style(color, 2.0));
    if (spec.draw_markers) {
      for (const auto& [x, y] : points) svg.circle(x, y, 3.5, fill_style(color));
    }
    // Legend entry.
    if (spec.series.size() > 1 || !series.name.empty()) {
      const double ly = area.top + 16 * static_cast<double>(s);
      svg.line(area.right - 120, ly, area.right - 96, ly, stroke_style(color, 2.5));
      svg.text(area.right - 90, ly + 4, series.name, 11, kInk);
    }
  }
  return svg.to_string();
}

std::string render_bar_chart(const BarChartSpec& spec) {
  SvgDocument svg(spec.size.width, spec.size.height);
  svg.rect(0, 0, spec.size.width, spec.size.height, fill_style({255, 255, 255}));

  double y_hi = 1.0;
  for (const auto& [label, value] : spec.bars) y_hi = std::max(y_hi, value);
  y_hi *= 1.08;

  PlotArea area{64, 40, spec.size.width - 20, spec.size.height - 56, 0,
                static_cast<double>(std::max<std::size_t>(1, spec.bars.size())), 0, y_hi};
  draw_y_ticks(svg, area, nice_ticks(0, y_hi, 6));
  draw_frame(svg, area, spec.title, spec.x_label, spec.y_label);

  const double slot = (area.right - area.left) /
                      static_cast<double>(std::max<std::size_t>(1, spec.bars.size()));
  for (std::size_t i = 0; i < spec.bars.size(); ++i) {
    const auto& [label, value] = spec.bars[i];
    const double x = area.left + slot * static_cast<double>(i);
    const double y = area.y_of(value);
    svg.rect(x + slot * 0.15, y, slot * 0.7, area.bottom - y,
             fill_style(categorical(0), 0.9));
    svg.text(x + slot * 0.5, area.bottom + 15, label, 10, kInk, TextAnchor::kMiddle);
  }
  return svg.to_string();
}

std::string render_distribution_plot(const DistributionPlotSpec& spec) {
  SvgDocument svg(spec.size.width, spec.size.height);
  svg.rect(0, 0, spec.size.width, spec.size.height, fill_style({255, 255, 255}));

  const stats::Histogram histogram =
      stats::Histogram::from_samples(spec.values, std::max<std::size_t>(1, spec.bins));
  const stats::DensityCurve curve = stats::kde_curve(spec.values, 160);

  // Convert histogram counts to density so the KDE overlays correctly.
  double y_hi = 1e-12;
  const double total = static_cast<double>(std::max<std::size_t>(1, histogram.total()));
  std::vector<double> bin_density(histogram.bins().size(), 0.0);
  for (std::size_t i = 0; i < histogram.bins().size(); ++i) {
    const auto& bin = histogram.bins()[i];
    const double width = std::max(1e-12, bin.hi - bin.lo);
    bin_density[i] = static_cast<double>(bin.count) / (total * width);
    y_hi = std::max(y_hi, bin_density[i]);
  }
  for (const double d : curve.density) y_hi = std::max(y_hi, d);
  y_hi *= 1.08;

  double x_lo = histogram.lo();
  double x_hi = histogram.hi();
  if (!curve.x.empty()) {
    x_lo = std::min(x_lo, curve.x.front());
    x_hi = std::max(x_hi, curve.x.back());
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;

  PlotArea area{64, 40, spec.size.width - 20, spec.size.height - 56, x_lo, x_hi, 0, y_hi};
  draw_x_ticks(svg, area, nice_ticks(x_lo, x_hi, 6));
  draw_y_ticks(svg, area, nice_ticks(0, y_hi, 5));
  draw_frame(svg, area, spec.title, spec.x_label, "density");

  for (std::size_t i = 0; i < histogram.bins().size(); ++i) {
    const auto& bin = histogram.bins()[i];
    const double x0 = area.x_of(bin.lo);
    const double x1 = area.x_of(bin.hi);
    const double y = area.y_of(bin_density[i]);
    svg.rect(x0, y, std::max(0.5, x1 - x0 - 1.0), area.bottom - y,
             fill_style(categorical(0), 0.55));
  }
  std::vector<std::pair<double, double>> points;
  for (std::size_t i = 0; i < curve.x.size(); ++i)
    points.emplace_back(area.x_of(curve.x[i]), area.y_of(curve.density[i]));
  svg.polyline(points, stroke_style(categorical(1), 2.2));
  return svg.to_string();
}

std::string render_heatmap(const HeatmapSpec& spec) {
  SvgDocument svg(spec.size.width, spec.size.height);
  svg.rect(0, 0, spec.size.width, spec.size.height, fill_style({255, 255, 255}));

  const std::size_t rows = spec.row_labels.size();
  const std::size_t cols = spec.col_labels.size();
  const double left = 170.0;
  const double top = 46.0;
  const double right = spec.size.width - 16.0;
  const double bottom = spec.size.height - 40.0;
  if (!spec.title.empty())
    svg.text(spec.size.width / 2, 24, spec.title, 15, kInk, TextAnchor::kMiddle, true);
  if (rows == 0 || cols == 0) return svg.to_string();

  double max_value = 1e-12;
  for (const auto& row : spec.values) {
    for (const double v : row) max_value = std::max(max_value, v);
  }
  const auto intensity = [&](double v) {
    if (v <= 0.0) return 0.0;
    return spec.log_scale ? std::log1p(v) / std::log1p(max_value) : v / max_value;
  };

  const double cell_w = (right - left) / static_cast<double>(cols);
  const double cell_h = (bottom - top) / static_cast<double>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    svg.text(left - 8, top + cell_h * (static_cast<double>(r) + 0.5) + 4,
             spec.row_labels[r], 11, kInk, TextAnchor::kEnd);
    for (std::size_t c = 0; c < cols; ++c) {
      const double v =
          r < spec.values.size() && c < spec.values[r].size() ? spec.values[r][c] : 0.0;
      const double x = left + cell_w * static_cast<double>(c);
      const double y = top + cell_h * static_cast<double>(r);
      if (v <= 0.0) {
        svg.rect(x, y, cell_w - 1, cell_h - 1, fill_style({240, 241, 245}));
      } else {
        svg.rect(x, y, cell_w - 1, cell_h - 1, fill_style(sequential_scale(intensity(v))));
      }
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    // Label every column when they fit, else every other one.
    if (cols > 16 && c % 2 == 1) continue;
    svg.text(left + cell_w * (static_cast<double>(c) + 0.5), bottom + 16,
             spec.col_labels[c], 10, kInk, TextAnchor::kMiddle);
  }
  return svg.to_string();
}

}  // namespace crowdweb::viz

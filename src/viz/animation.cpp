#include "viz/animation.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/format.hpp"
#include "viz/svg.hpp"

namespace crowdweb::viz {

namespace {

/// Maps lat/lon into the canvas with aspect preserved (same math as the
/// static city map).
struct Frame {
  const geo::BoundingBox bounds;
  double scale_x, scale_y, margin;

  Frame(const geo::BoundingBox& box, double width, double height, double margin_px)
      : bounds(box), margin(margin_px) {
    const double lat_span = std::max(1e-9, box.max_lat - box.min_lat);
    const double lon_span = std::max(1e-9, box.max_lon - box.min_lon);
    const double aspect =
        lon_span * std::cos(geo::deg_to_rad((box.min_lat + box.max_lat) / 2)) / lat_span;
    const double usable_w = width - 2 * margin_px;
    const double usable_h = height - 2 * margin_px;
    if (usable_w / usable_h > aspect) {
      scale_y = usable_h / lat_span;
      scale_x = usable_h * aspect / lon_span;
    } else {
      scale_x = usable_w / lon_span;
      scale_y = usable_w / aspect / lat_span;
    }
  }
  [[nodiscard]] double x(double lon) const { return margin + (lon - bounds.min_lon) * scale_x; }
  [[nodiscard]] double y(double lat) const { return margin + (bounds.max_lat - lat) * scale_y; }
};

}  // namespace

std::string render_crowd_animation(const crowd::CrowdModel& model,
                                   const AnimationOptions& options) {
  const int windows = model.window_count();
  const double cycle_seconds =
      std::max(0.1, options.seconds_per_window) * std::max(1, windows);

  // Collect per-cell counts across all windows and the global peak.
  std::map<geo::CellId, std::vector<std::size_t>> cell_series;
  std::size_t peak = 1;
  for (int w = 0; w < windows; ++w) {
    const crowd::CrowdDistribution distribution = model.distribution(w);
    for (const auto& [cell, count] : distribution.cells()) {
      auto& series = cell_series[cell];
      if (series.empty()) series.assign(static_cast<std::size_t>(windows), 0);
      series[static_cast<std::size_t>(w)] = count;
      peak = std::max(peak, count);
    }
  }
  // Keep only the busiest cells if the map would get too heavy.
  if (cell_series.size() > options.max_cells) {
    std::vector<std::pair<std::size_t, geo::CellId>> ranked;
    ranked.reserve(cell_series.size());
    for (const auto& [cell, series] : cell_series) {
      std::size_t total = 0;
      for (const std::size_t c : series) total += c;
      ranked.push_back({total, cell});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    ranked.resize(options.max_cells);
    std::map<geo::CellId, std::vector<std::size_t>> kept;
    for (const auto& [total, cell] : ranked) kept.emplace(cell, cell_series[cell]);
    cell_series = std::move(kept);
  }

  SvgDocument svg(options.width, options.height);
  svg.rect(0, 0, options.width, options.height, fill_style({247, 248, 250}));
  const Frame frame(model.grid().bounds(), options.width, options.height, 28.0);

  for (const auto& [cell, series] : cell_series) {
    const geo::BoundingBox box = model.grid().cell_bounds(cell);
    const double x = frame.x(box.min_lon);
    const double y = frame.y(box.max_lat);
    const double w = frame.x(box.max_lon) - x;
    const double h = frame.y(box.min_lat) - y;

    // Color by the cell's own peak; opacity animates with the count.
    std::size_t cell_peak = 0;
    for (const std::size_t c : series) cell_peak = std::max(cell_peak, c);
    const double t = std::log1p(static_cast<double>(cell_peak)) /
                     std::log1p(static_cast<double>(peak));
    std::string values;
    for (std::size_t w_index = 0; w_index < series.size(); ++w_index) {
      if (w_index > 0) values += ';';
      const double opacity =
          cell_peak == 0
              ? 0.0
              : 0.9 * static_cast<double>(series[w_index]) / static_cast<double>(cell_peak);
      values += crowdweb::format("{:.3f}", opacity);
    }
    svg.raw(crowdweb::format(
        "<rect x=\"{:.2f}\" y=\"{:.2f}\" width=\"{:.2f}\" height=\"{:.2f}\" fill=\"{}\""
        " opacity=\"0\"><animate attributeName=\"opacity\" dur=\"{:.2f}s\""
        " repeatCount=\"indefinite\" values=\"{}\"/></rect>\n",
        x, y, w, h, to_hex(sequential_scale(t)), cycle_seconds, values));
  }

  // Animated clock: one label per window, visible only during its slot.
  for (int w = 0; w < windows; ++w) {
    std::string values;
    for (int k = 0; k < windows; ++k) {
      if (k > 0) values += ';';
      values += (k == w) ? "1" : "0";
    }
    svg.raw(crowdweb::format(
        "<text x=\"{:.2f}\" y=\"{:.2f}\" font-size=\"18\" font-weight=\"bold\""
        " fill=\"#28282f\" font-family=\"Helvetica,Arial,sans-serif\" opacity=\"0\">{}"
        "<animate attributeName=\"opacity\" dur=\"{:.2f}s\" repeatCount=\"indefinite\""
        " calcMode=\"discrete\" values=\"{}\"/></text>\n",
        options.width - 170.0, 30.0, xml_escape(model.window_label(w)), cycle_seconds,
        values));
  }

  if (!options.title.empty())
    svg.text(options.width / 2, 22, options.title, 15, {40, 40, 48}, TextAnchor::kMiddle,
             true);
  return svg.to_string();
}

}  // namespace crowdweb::viz

// Chart renderers for the evaluation figures.
//
// Three chart types cover everything the paper plots: line charts with
// markers (Figures 5 and 7 — metric vs. minimum support), bar charts
// (monthly corpus volumes), and distribution plots (Figures 6 and 8 —
// histogram plus KDE curve, seaborn-displot style). All emit standalone
// SVG documents.
#pragma once

#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "viz/svg.hpp"

namespace crowdweb::viz {

struct ChartSize {
  double width = 640.0;
  double height = 420.0;
};

/// One line-chart series.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;  ///< same length as x
};

struct LineChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<Series> series;
  ChartSize size;
  bool draw_markers = true;
  bool y_from_zero = true;
};

/// Renders a multi-series line chart with axes, ticks, and a legend.
[[nodiscard]] std::string render_line_chart(const LineChartSpec& spec);

struct BarChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::pair<std::string, double>> bars;  ///< (label, value)
  ChartSize size;
};

[[nodiscard]] std::string render_bar_chart(const BarChartSpec& spec);

struct DistributionPlotSpec {
  std::string title;
  std::string x_label;
  std::vector<double> values;
  std::size_t bins = 20;
  ChartSize size;
};

/// Histogram of the sample with the Gaussian-KDE curve overlaid —
/// the paper's "distribution plot".
[[nodiscard]] std::string render_distribution_plot(const DistributionPlotSpec& spec);

struct HeatmapSpec {
  std::string title;
  std::vector<std::string> row_labels;
  std::vector<std::string> col_labels;
  /// values[row][col]; rows may be ragged (missing cells render empty).
  std::vector<std::vector<double>> values;
  ChartSize size;
  /// Log-compress the color scale (good for skewed counts).
  bool log_scale = true;
};

/// Renders a labeled matrix heat map (e.g. place type x hour rhythm).
[[nodiscard]] std::string render_heatmap(const HeatmapSpec& spec);

/// Picks `count` round tick values covering [lo, hi].
[[nodiscard]] std::vector<double> nice_ticks(double lo, double hi, std::size_t count);

}  // namespace crowdweb::viz

// A small SVG document builder.
//
// Emits well-formed SVG 1.1. All text content and attribute values are
// XML-escaped; numeric attributes are rendered with enough precision for
// map work. The builder is deliberately low-level — charts and map
// renderers compose on top of it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "viz/color.hpp"

namespace crowdweb::viz {

/// Escapes &, <, >, ", ' for XML attribute/text contexts.
[[nodiscard]] std::string xml_escape(std::string_view text);

/// Style of a drawn shape.
struct Style {
  std::string fill = "none";      ///< "#rrggbb" or "none"
  std::string stroke = "none";
  double stroke_width = 1.0;
  double opacity = 1.0;
};

[[nodiscard]] inline Style fill_style(const Color& color, double opacity = 1.0) {
  return {to_hex(color), "none", 0.0, opacity};
}
[[nodiscard]] inline Style stroke_style(const Color& color, double width = 1.0,
                                        double opacity = 1.0) {
  return {"none", to_hex(color), width, opacity};
}

enum class TextAnchor { kStart, kMiddle, kEnd };

/// An SVG document under construction (origin top-left, y down).
class SvgDocument {
 public:
  SvgDocument(double width, double height);

  void rect(double x, double y, double w, double h, const Style& style, double rx = 0.0);
  void circle(double cx, double cy, double r, const Style& style);
  void line(double x1, double y1, double x2, double y2, const Style& style);
  /// Open polyline through the points.
  void polyline(const std::vector<std::pair<double, double>>& points, const Style& style);
  /// Closed filled polygon.
  void polygon(const std::vector<std::pair<double, double>>& points, const Style& style);
  /// Straight arrow with a filled head at the target.
  void arrow(double x1, double y1, double x2, double y2, const Color& color, double width);
  void text(double x, double y, std::string_view content, double size_px,
            const Color& color, TextAnchor anchor = TextAnchor::kStart,
            bool bold = false);
  /// Raw fragment escape hatch (must be well-formed SVG).
  void raw(std::string_view fragment);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double height() const noexcept { return height_; }

  /// Finishes the document; the builder remains usable (idempotent).
  [[nodiscard]] std::string to_string() const;

 private:
  void append_style(const Style& style);

  double width_;
  double height_;
  std::string body_;
};

}  // namespace crowdweb::viz

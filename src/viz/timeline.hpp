// Per-user visit timeline — the iMAP individual view's second panel.
//
// One row per recorded day (most recent at the bottom), x = hour of day,
// one colored marker per visit; colors are assigned per label with a
// legend. Makes a user's routine visible at a glance: vertical stripes
// are fixed habits (the 9 am office column), scattered marks are
// exploration.
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "mining/seqdb.hpp"

namespace crowdweb::viz {

struct TimelineOptions {
  double width = 760.0;
  double row_height = 14.0;
  /// Render at most this many most-recent days.
  std::size_t max_days = 60;
  std::string title;
};

/// Renders the visit timeline of one user's day sequences.
[[nodiscard]] std::string render_timeline(const mining::UserSequences& sequences,
                                          const data::Taxonomy& taxonomy,
                                          const data::Dataset& dataset,
                                          mining::LabelMode mode,
                                          const TimelineOptions& options = {});

}  // namespace crowdweb::viz

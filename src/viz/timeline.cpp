#include "viz/timeline.hpp"

#include <algorithm>
#include <map>

#include "util/format.hpp"
#include "viz/svg.hpp"

namespace crowdweb::viz {

std::string render_timeline(const mining::UserSequences& sequences,
                            const data::Taxonomy& taxonomy, const data::Dataset& dataset,
                            mining::LabelMode mode, const TimelineOptions& options) {
  const std::size_t total_days = sequences.day_count();
  const std::size_t days = std::min(options.max_days, total_days);
  const std::size_t first_day = total_days - days;

  // Stable color per label, in order of first appearance.
  std::map<mining::Item, std::size_t> color_index;
  for (std::size_t d = first_day; d < total_days; ++d) {
    for (const mining::Item label : sequences.day(d))
      color_index.emplace(label, color_index.size());
  }

  const double top = 46.0;
  const double left = 70.0;
  const double right = options.width - 16.0;
  const double legend_height = 18.0 * (static_cast<double>(color_index.size() + 2) / 3.0);
  const double height =
      top + options.row_height * static_cast<double>(std::max<std::size_t>(1, days)) +
      40.0 + legend_height;

  SvgDocument svg(options.width, height);
  svg.rect(0, 0, options.width, height, fill_style({255, 255, 255}));
  if (!options.title.empty())
    svg.text(options.width / 2, 24, options.title, 15, {40, 40, 48}, TextAnchor::kMiddle,
             true);

  // Hour grid.
  const double bottom = top + options.row_height * static_cast<double>(days);
  for (int hour = 0; hour <= 24; hour += 3) {
    const double x = left + (right - left) * hour / 24.0;
    svg.line(x, top, x, bottom, stroke_style({228, 229, 234}, 0.8));
    svg.text(x, bottom + 14, crowdweb::format("{:02}h", hour), 10, {80, 82, 92},
             TextAnchor::kMiddle);
  }

  // Day rows.
  for (std::size_t row = 0; row < days; ++row) {
    const std::size_t d = first_day + row;
    const double y = top + options.row_height * (static_cast<double>(row) + 0.5);
    if (row % 5 == 0)
      svg.text(left - 8, y + 3, crowdweb::format("day {}", d + 1), 9, {80, 82, 92},
               TextAnchor::kEnd);
    const auto day = sequences.day(d);
    const auto minutes = sequences.minutes_of(d);
    for (std::size_t i = 0; i < day.size(); ++i) {
      const double x =
          left + (right - left) * static_cast<double>(minutes[i]) / 1440.0;
      svg.circle(x, y, options.row_height * 0.32,
                 fill_style(categorical(color_index[day[i]]), 0.9));
    }
  }

  // Legend.
  double legend_y = bottom + 34.0;
  double legend_x = left;
  for (const auto& [label, index] : color_index) {
    const std::string name = mining::label_name(label, mode, taxonomy, dataset);
    svg.circle(legend_x, legend_y - 3, 5, fill_style(categorical(index), 0.9));
    svg.text(legend_x + 10, legend_y, name, 10, {40, 40, 48});
    legend_x += 12.0 + 7.0 * static_cast<double>(name.size());
    if (legend_x > right - 140.0) {
      legend_x = left;
      legend_y += 18.0;
    }
  }
  return svg.to_string();
}

}  // namespace crowdweb::viz

#include "viz/layout.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"
#include "viz/svg.hpp"

namespace crowdweb::viz {

std::vector<std::pair<double, double>> force_layout(
    std::size_t node_count, const std::vector<patterns::PlaceEdge>& edges,
    const LayoutOptions& options) {
  std::vector<std::pair<double, double>> positions(node_count);
  if (node_count == 0) return positions;

  Rng rng(options.seed);
  const double margin = 40.0;
  const double usable_w = std::max(1.0, options.width - 2 * margin);
  const double usable_h = std::max(1.0, options.height - 2 * margin);
  for (auto& [x, y] : positions) {
    x = margin + rng.uniform() * usable_w;
    y = margin + rng.uniform() * usable_h;
  }
  if (node_count == 1) {
    positions[0] = {options.width / 2, options.height / 2};
    return positions;
  }

  const double area = usable_w * usable_h;
  const double k = std::sqrt(area / static_cast<double>(node_count));  // ideal distance
  double temperature = std::max(usable_w, usable_h) / 8.0;
  const double cooling =
      std::pow(0.02, 1.0 / std::max(1, options.iterations));  // ends at 2% of start

  std::vector<std::pair<double, double>> displacement(node_count);
  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    for (auto& d : displacement) d = {0.0, 0.0};

    // Repulsion between every pair.
    for (std::size_t i = 0; i < node_count; ++i) {
      for (std::size_t j = i + 1; j < node_count; ++j) {
        double dx = positions[i].first - positions[j].first;
        double dy = positions[i].second - positions[j].second;
        double dist = std::hypot(dx, dy);
        if (dist < 1e-6) {
          // Coincident nodes: nudge apart deterministically.
          dx = 1e-3 * static_cast<double>(i - j);
          dy = 1e-3;
          dist = std::hypot(dx, dy);
        }
        const double force = k * k / dist;
        displacement[i].first += dx / dist * force;
        displacement[i].second += dy / dist * force;
        displacement[j].first -= dx / dist * force;
        displacement[j].second -= dy / dist * force;
      }
    }
    // Attraction along edges (weight-scaled).
    for (const patterns::PlaceEdge& edge : edges) {
      if (edge.from >= node_count || edge.to >= node_count || edge.from == edge.to) continue;
      double dx = positions[edge.from].first - positions[edge.to].first;
      double dy = positions[edge.from].second - positions[edge.to].second;
      const double dist = std::max(1e-6, std::hypot(dx, dy));
      const double weight = 1.0 + std::log1p(static_cast<double>(edge.count));
      const double force = dist * dist / k * weight * 0.1;
      displacement[edge.from].first -= dx / dist * force;
      displacement[edge.from].second -= dy / dist * force;
      displacement[edge.to].first += dx / dist * force;
      displacement[edge.to].second += dy / dist * force;
    }
    // Apply, capped by temperature, clamped to the canvas.
    for (std::size_t i = 0; i < node_count; ++i) {
      const double length = std::hypot(displacement[i].first, displacement[i].second);
      if (length < 1e-9) continue;
      const double capped = std::min(length, temperature);
      positions[i].first += displacement[i].first / length * capped;
      positions[i].second += displacement[i].second / length * capped;
      positions[i].first = std::clamp(positions[i].first, margin, options.width - margin);
      positions[i].second = std::clamp(positions[i].second, margin, options.height - margin);
    }
    temperature *= cooling;
  }
  return positions;
}

std::string render_place_graph(const patterns::PlaceGraph& graph,
                               const PlaceGraphRender& options) {
  SvgDocument svg(options.layout.width, options.layout.height);
  svg.rect(0, 0, options.layout.width, options.layout.height, fill_style({252, 252, 254}));
  if (!options.title.empty())
    svg.text(options.layout.width / 2, 22, options.title, 15, {40, 40, 48},
             TextAnchor::kMiddle, true);

  const auto positions = force_layout(graph.nodes.size(), graph.edges, options.layout);

  std::size_t max_visits = 1;
  std::size_t max_edge = 1;
  for (const patterns::PlaceNode& node : graph.nodes)
    max_visits = std::max(max_visits, node.visits);
  for (const patterns::PlaceEdge& edge : graph.edges)
    max_edge = std::max(max_edge, edge.count);

  for (const patterns::PlaceEdge& edge : graph.edges) {
    if (edge.from >= positions.size() || edge.to >= positions.size()) continue;
    const auto& [x1, y1] = positions[edge.from];
    const auto& [x2, y2] = positions[edge.to];
    const double width =
        1.0 + 3.0 * static_cast<double>(edge.count) / static_cast<double>(max_edge);
    svg.arrow(x1, y1, x2, y2, {150, 155, 170}, width);
  }
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const patterns::PlaceNode& node = graph.nodes[i];
    const auto& [x, y] = positions[i];
    const double radius =
        10.0 + 14.0 * std::sqrt(static_cast<double>(node.visits) /
                                static_cast<double>(max_visits));
    svg.circle(x, y, radius, fill_style(categorical(i), 0.9));
    svg.circle(x, y, radius, stroke_style({60, 60, 70}, 1.0));
    const int minute = static_cast<int>(node.mean_minute + 0.5);
    svg.text(x, y - radius - 6, node.name, 11, {40, 40, 48}, TextAnchor::kMiddle, true);
    svg.text(x, y + 4,
             crowdweb::format("{} @{:02}:{:02}", node.visits, minute / 60, minute % 60), 9,
             {255, 255, 255}, TextAnchor::kMiddle);
  }
  return svg.to_string();
}

}  // namespace crowdweb::viz

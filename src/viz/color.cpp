#include "viz/color.hpp"

#include <algorithm>
#include <array>

#include "util/format.hpp"

namespace crowdweb::viz {

std::string to_hex(const Color& color) {
  return crowdweb::format("#{:02x}{:02x}{:02x}", color.r, color.g, color.b);
}

Color lerp(const Color& a, const Color& b, double t) noexcept {
  t = std::clamp(t, 0.0, 1.0);
  const auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(x + (y - x) * t + 0.5);
  };
  return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

namespace {

/// Piecewise-linear ramp through control points.
template <std::size_t N>
Color ramp(const std::array<Color, N>& stops, double t) noexcept {
  t = std::clamp(t, 0.0, 1.0);
  const double scaled = t * static_cast<double>(N - 1);
  const auto index = static_cast<std::size_t>(scaled);
  if (index + 1 >= N) return stops[N - 1];
  return lerp(stops[index], stops[index + 1], scaled - static_cast<double>(index));
}

}  // namespace

Color sequential_scale(double t) noexcept {
  static constexpr std::array<Color, 5> kViridis{{{68, 1, 84},
                                                  {59, 82, 139},
                                                  {33, 145, 140},
                                                  {94, 201, 98},
                                                  {253, 231, 37}}};
  return ramp(kViridis, t);
}

Color diverging_scale(double t) noexcept {
  static constexpr std::array<Color, 3> kBlueRed{{{33, 102, 172},
                                                  {247, 247, 247},
                                                  {178, 24, 43}}};
  return ramp(kBlueRed, t);
}

Color categorical(std::size_t index) noexcept {
  static constexpr std::array<Color, 12> kPalette{{{31, 119, 180},
                                                   {255, 127, 14},
                                                   {44, 160, 44},
                                                   {214, 39, 40},
                                                   {148, 103, 189},
                                                   {140, 86, 75},
                                                   {227, 119, 194},
                                                   {127, 127, 127},
                                                   {188, 189, 34},
                                                   {23, 190, 207},
                                                   {174, 199, 232},
                                                   {255, 187, 120}}};
  return kPalette[index % kPalette.size()];
}

}  // namespace crowdweb::viz

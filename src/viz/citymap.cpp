#include "viz/citymap.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"
#include "viz/svg.hpp"

namespace crowdweb::viz {

namespace {

/// Maps lat/lon to canvas pixels preserving aspect ratio.
class MapFrame {
 public:
  MapFrame(const geo::BoundingBox& bounds, double width, double height, double margin)
      : bounds_(bounds), margin_(margin) {
    const double lat_span = std::max(1e-9, bounds.max_lat - bounds.min_lat);
    const double lon_span = std::max(1e-9, bounds.max_lon - bounds.min_lon);
    // Approximate aspect correction: shrink longitude by cos(latitude).
    const double aspect =
        lon_span * std::cos(geo::deg_to_rad((bounds.min_lat + bounds.max_lat) / 2)) /
        lat_span;
    const double usable_w = width - 2 * margin;
    const double usable_h = height - 2 * margin;
    if (usable_w / usable_h > aspect) {
      scale_y_ = usable_h / lat_span;
      scale_x_ = usable_h * aspect / lon_span;
    } else {
      scale_x_ = usable_w / lon_span;
      scale_y_ = usable_w / aspect / lat_span;
    }
    origin_x_ = margin;
    origin_y_ = margin;
  }

  [[nodiscard]] double x_of(double lon) const noexcept {
    return origin_x_ + (lon - bounds_.min_lon) * scale_x_;
  }
  [[nodiscard]] double y_of(double lat) const noexcept {
    return origin_y_ + (bounds_.max_lat - lat) * scale_y_;
  }

 private:
  geo::BoundingBox bounds_;
  double margin_;
  double scale_x_ = 1.0;
  double scale_y_ = 1.0;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
};

void draw_heat_cells(SvgDocument& svg, const MapFrame& frame,
                     const crowd::CrowdDistribution& distribution,
                     const geo::SpatialGrid& grid) {
  std::size_t max_count = 1;
  for (const auto& [cell, count] : distribution.cells()) max_count = std::max(max_count, count);
  for (const auto& [cell, count] : distribution.cells()) {
    const geo::BoundingBox box = grid.cell_bounds(cell);
    const double x = frame.x_of(box.min_lon);
    const double y = frame.y_of(box.max_lat);
    const double w = frame.x_of(box.max_lon) - x;
    const double h = frame.y_of(box.min_lat) - y;
    const double t = std::log1p(static_cast<double>(count)) /
                     std::log1p(static_cast<double>(max_count));
    svg.rect(x, y, w, h, fill_style(sequential_scale(t), 0.85));
  }
}

void draw_bubbles(SvgDocument& svg, const MapFrame& frame,
                  const crowd::CrowdDistribution& distribution,
                  const geo::SpatialGrid& grid, std::size_t bubble_count) {
  const auto top = distribution.top_cells(bubble_count);
  std::size_t max_count = top.empty() ? 1 : top.front().second;
  for (const auto& [cell, count] : top) {
    const geo::LatLon center = grid.cell_center(cell);
    const double x = frame.x_of(center.lon);
    const double y = frame.y_of(center.lat);
    const double radius =
        8.0 + 14.0 * std::sqrt(static_cast<double>(count) / static_cast<double>(max_count));
    svg.circle(x, y, radius, fill_style({214, 39, 40}, 0.35));
    svg.circle(x, y, radius, stroke_style({214, 39, 40}, 1.5));
    svg.text(x, y + 4, crowdweb::format("{}", count), 11, {120, 10, 10},
             TextAnchor::kMiddle, true);
  }
}

void draw_legend(SvgDocument& svg, double width, double height, std::size_t total,
                 std::string_view what) {
  const double x = width - 190;
  const double y = height - 46;
  svg.rect(x, y, 176, 34, fill_style({255, 255, 255}, 0.85), 4);
  for (int i = 0; i < 100; ++i)
    svg.rect(x + 8 + i * 1.2, y + 8, 1.2, 10, fill_style(sequential_scale(i / 99.0)));
  svg.text(x + 8, y + 30, "low", 9, {60, 60, 70});
  svg.text(x + 128, y + 30, "high", 9, {60, 60, 70});
  svg.text(x + 8, y - 4, crowdweb::format("{} {}", total, what), 11, {40, 40, 48});
}

void draw_venues(SvgDocument& svg, const MapFrame& frame, const data::Dataset& dataset) {
  for (const data::Venue& venue : dataset.venues()) {
    svg.circle(frame.x_of(venue.position.lon), frame.y_of(venue.position.lat), 0.8,
               fill_style({120, 125, 140}, 0.35));
  }
}

}  // namespace

std::string render_city_map(const crowd::CrowdDistribution& distribution,
                            const geo::SpatialGrid& grid, const data::Dataset& dataset,
                            const CityMapOptions& options) {
  SvgDocument svg(options.width, options.height);
  svg.rect(0, 0, options.width, options.height, fill_style({247, 248, 250}));
  const MapFrame frame(grid.bounds(), options.width, options.height, 28.0);

  if (options.draw_venues) draw_venues(svg, frame, dataset);
  draw_heat_cells(svg, frame, distribution, grid);
  draw_bubbles(svg, frame, distribution, grid, options.bubble_count);
  if (!options.title.empty())
    svg.text(options.width / 2, 20, options.title, 15, {40, 40, 48}, TextAnchor::kMiddle,
             true);
  draw_legend(svg, options.width, options.height, distribution.total(), "users placed");
  return svg.to_string();
}

std::string render_flow_map(const crowd::FlowMatrix& flow,
                            const crowd::CrowdDistribution& destination,
                            const geo::SpatialGrid& grid, const data::Dataset& dataset,
                            const CityMapOptions& options) {
  SvgDocument svg(options.width, options.height);
  svg.rect(0, 0, options.width, options.height, fill_style({247, 248, 250}));
  const MapFrame frame(grid.bounds(), options.width, options.height, 28.0);

  if (options.draw_venues) draw_venues(svg, frame, dataset);
  draw_heat_cells(svg, frame, destination, grid);

  const auto top = flow.top_flows(std::max<std::size_t>(options.bubble_count, 12));
  std::size_t max_flow = top.empty() ? 1 : top.front().second;
  for (const auto& [pair, count] : top) {
    const geo::LatLon from = grid.cell_center(pair.first);
    const geo::LatLon to = grid.cell_center(pair.second);
    const double width =
        1.0 + 4.0 * static_cast<double>(count) / static_cast<double>(max_flow);
    svg.arrow(frame.x_of(from.lon), frame.y_of(from.lat), frame.x_of(to.lon),
              frame.y_of(to.lat), {214, 39, 40}, width);
  }
  if (!options.title.empty())
    svg.text(options.width / 2, 20, options.title, 15, {40, 40, 48}, TextAnchor::kMiddle,
             true);
  draw_legend(svg, options.width, options.height, flow.total(), "users tracked");
  return svg.to_string();
}

}  // namespace crowdweb::viz

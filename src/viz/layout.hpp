// Force-directed graph layout and place-graph rendering.
//
// The iMAP/CrowdWeb user view draws the visited-places graph; this module
// lays it out with Fruchterman-Reingold (spring-electrical) iterations
// and renders nodes sized by visit count and edges weighted by transition
// frequency.
#pragma once

#include <string>
#include <vector>

#include "patterns/place_graph.hpp"
#include "util/rng.hpp"

namespace crowdweb::viz {

struct LayoutOptions {
  double width = 640.0;
  double height = 480.0;
  int iterations = 300;
  std::uint64_t seed = 1;  ///< initial placement seed (layout is deterministic)
};

/// Node positions after force-directed iteration, in [0,width]x[0,height].
[[nodiscard]] std::vector<std::pair<double, double>> force_layout(
    std::size_t node_count, const std::vector<patterns::PlaceEdge>& edges,
    const LayoutOptions& options = {});

struct PlaceGraphRender {
  LayoutOptions layout;
  std::string title;
};

/// Renders a user's place graph to SVG.
[[nodiscard]] std::string render_place_graph(const patterns::PlaceGraph& graph,
                                             const PlaceGraphRender& options = {});

}  // namespace crowdweb::viz

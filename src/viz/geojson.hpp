// GeoJSON (RFC 7946) export.
//
// Gives downstream GIS tools (kepler.gl, QGIS, Leaflet) direct access to
// the crowd model: distributions as cell polygons with headcount
// properties, flows as LineStrings, and venues as Points.
#pragma once

#include <string>

#include "crowd/distribution.hpp"
#include "data/dataset.hpp"
#include "json/json.hpp"

namespace crowdweb::viz {

/// FeatureCollection of cell polygons with {cell, count, window}.
[[nodiscard]] json::Value distribution_geojson(const crowd::CrowdDistribution& distribution,
                                               const geo::SpatialGrid& grid);

/// FeatureCollection of LineStrings with {from, to, count} (stays omitted).
[[nodiscard]] json::Value flow_geojson(const crowd::FlowMatrix& flow,
                                       const geo::SpatialGrid& grid);

/// FeatureCollection of venue Points with {id, name, category}.
[[nodiscard]] json::Value venues_geojson(const data::Dataset& dataset,
                                         const data::Taxonomy& taxonomy);

}  // namespace crowdweb::viz

// City map renderer — the CrowdWeb smart-city view (Figures 3 and 4).
//
// Draws the microcell grid as a heat map of the crowd distribution for a
// selected time window, with bubbles over the most crowded cells, an
// optional venue underlay, and a legend. Pure SVG; the HTTP viewer embeds
// these documents directly.
#pragma once

#include <optional>
#include <string>

#include "crowd/distribution.hpp"
#include "crowd/model.hpp"
#include "data/dataset.hpp"

namespace crowdweb::viz {

struct CityMapOptions {
  double width = 760.0;
  double height = 640.0;
  std::string title;
  /// Draw the venue point cloud under the heat map.
  bool draw_venues = false;
  /// Label this many of the busiest cells with their headcount.
  std::size_t bubble_count = 8;
};

/// Renders the crowd distribution of one window over its grid.
[[nodiscard]] std::string render_city_map(const crowd::CrowdDistribution& distribution,
                                          const geo::SpatialGrid& grid,
                                          const data::Dataset& dataset,
                                          const CityMapOptions& options = {});

/// Renders the movement between two windows: the destination distribution
/// as the heat map plus arrows for the largest flows.
[[nodiscard]] std::string render_flow_map(const crowd::FlowMatrix& flow,
                                          const crowd::CrowdDistribution& destination,
                                          const geo::SpatialGrid& grid,
                                          const data::Dataset& dataset,
                                          const CityMapOptions& options = {});

}  // namespace crowdweb::viz

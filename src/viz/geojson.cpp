#include "viz/geojson.hpp"

namespace crowdweb::viz {

namespace {

json::Value position(const geo::LatLon& p) {
  // GeoJSON order is [lon, lat].
  return json::array({p.lon, p.lat});
}

json::Value polygon_of(const geo::BoundingBox& box) {
  json::Value ring;
  ring.push_back(position({box.min_lat, box.min_lon}));
  ring.push_back(position({box.min_lat, box.max_lon}));
  ring.push_back(position({box.max_lat, box.max_lon}));
  ring.push_back(position({box.max_lat, box.min_lon}));
  ring.push_back(position({box.min_lat, box.min_lon}));  // closed ring
  json::Value rings;
  rings.push_back(std::move(ring));
  return json::object({{"type", "Polygon"}, {"coordinates", std::move(rings)}});
}

json::Value feature(json::Value geometry, json::Value properties) {
  return json::object({{"type", "Feature"},
                       {"geometry", std::move(geometry)},
                       {"properties", std::move(properties)}});
}

json::Value collection(json::Value features) {
  return json::object({{"type", "FeatureCollection"}, {"features", std::move(features)}});
}

}  // namespace

json::Value distribution_geojson(const crowd::CrowdDistribution& distribution,
                                 const geo::SpatialGrid& grid) {
  json::Value features;
  features = json::Value(json::Array{});
  for (const auto& [cell, count] : distribution.cells()) {
    features.push_back(feature(
        polygon_of(grid.cell_bounds(cell)),
        json::object({{"cell", static_cast<std::int64_t>(cell)},
                      {"count", static_cast<std::int64_t>(count)},
                      {"window", distribution.window()}})));
  }
  return collection(std::move(features));
}

json::Value flow_geojson(const crowd::FlowMatrix& flow, const geo::SpatialGrid& grid) {
  json::Value features = json::Value(json::Array{});
  for (const auto& [pair, count] : flow.flows()) {
    if (pair.first == pair.second) continue;
    json::Value coordinates;
    coordinates.push_back(position(grid.cell_center(pair.first)));
    coordinates.push_back(position(grid.cell_center(pair.second)));
    features.push_back(feature(
        json::object({{"type", "LineString"}, {"coordinates", std::move(coordinates)}}),
        json::object({{"from", static_cast<std::int64_t>(pair.first)},
                      {"to", static_cast<std::int64_t>(pair.second)},
                      {"count", static_cast<std::int64_t>(count)}})));
  }
  return collection(std::move(features));
}

json::Value venues_geojson(const data::Dataset& dataset, const data::Taxonomy& taxonomy) {
  json::Value features = json::Value(json::Array{});
  for (const data::Venue& venue : dataset.venues()) {
    features.push_back(feature(
        json::object({{"type", "Point"}, {"coordinates", position(venue.position)}}),
        json::object({{"id", static_cast<std::int64_t>(venue.id)},
                      {"name", std::string(dataset.venue_name(venue.id))},
                      {"category", taxonomy.name(venue.category)}})));
  }
  return collection(std::move(features));
}

}  // namespace crowdweb::viz

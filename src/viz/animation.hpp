// Animated crowd movement — the paper's stated future work ("we plan to
// allow users to scale the time frames for the crowd movement and
// automate the crowd movement animation").
//
// Renders one self-contained SVG whose microcells pulse through the
// day: each occupied cell carries a SMIL <animate> over its opacity with
// one keyframe per time window, plus an animated clock label. The window
// scale is whatever the CrowdModel was built with (hourly, 30-minute,
// ...), so time-frame scaling comes for free.
#pragma once

#include <string>

#include "crowd/model.hpp"
#include "data/dataset.hpp"

namespace crowdweb::viz {

struct AnimationOptions {
  double width = 760.0;
  double height = 640.0;
  /// Wall-clock seconds each window is displayed.
  double seconds_per_window = 0.5;
  /// At most this many cells participate (the busiest across the day).
  std::size_t max_cells = 600;
  std::string title = "Crowd movement";
};

/// Renders the full-day crowd animation of `model` as an SVG document.
[[nodiscard]] std::string render_crowd_animation(const crowd::CrowdModel& model,
                                                 const AnimationOptions& options = {});

}  // namespace crowdweb::viz

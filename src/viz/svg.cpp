#include "viz/svg.hpp"

#include <cmath>

#include "util/format.hpp"

namespace crowdweb::viz {

namespace {

std::string num(double value) {
  if (!std::isfinite(value)) return "0";
  // Two decimals is below half a pixel everywhere we draw.
  return crowdweb::format("{:.2f}", value);
}

}  // namespace

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

SvgDocument::SvgDocument(double width, double height) : width_(width), height_(height) {}

void SvgDocument::append_style(const Style& style) {
  body_ += crowdweb::format(" fill=\"{}\" stroke=\"{}\"", xml_escape(style.fill),
                            xml_escape(style.stroke));
  if (style.stroke != "none")
    body_ += crowdweb::format(" stroke-width=\"{}\"", num(style.stroke_width));
  if (style.opacity < 1.0) body_ += crowdweb::format(" opacity=\"{}\"", num(style.opacity));
}

void SvgDocument::rect(double x, double y, double w, double h, const Style& style,
                       double rx) {
  body_ += crowdweb::format("<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\"", num(x),
                            num(y), num(w), num(h));
  if (rx > 0.0) body_ += crowdweb::format(" rx=\"{}\"", num(rx));
  append_style(style);
  body_ += "/>\n";
}

void SvgDocument::circle(double cx, double cy, double r, const Style& style) {
  body_ += crowdweb::format("<circle cx=\"{}\" cy=\"{}\" r=\"{}\"", num(cx), num(cy), num(r));
  append_style(style);
  body_ += "/>\n";
}

void SvgDocument::line(double x1, double y1, double x2, double y2, const Style& style) {
  body_ += crowdweb::format("<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"", num(x1), num(y1),
                            num(x2), num(y2));
  append_style(style);
  body_ += "/>\n";
}

namespace {

std::string points_attribute(const std::vector<std::pair<double, double>>& points) {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out += ' ';
    out += num(points[i].first);
    out += ',';
    out += num(points[i].second);
  }
  return out;
}

}  // namespace

void SvgDocument::polyline(const std::vector<std::pair<double, double>>& points,
                           const Style& style) {
  if (points.size() < 2) return;
  body_ += crowdweb::format("<polyline points=\"{}\"", points_attribute(points));
  append_style(style);
  body_ += "/>\n";
}

void SvgDocument::polygon(const std::vector<std::pair<double, double>>& points,
                          const Style& style) {
  if (points.size() < 3) return;
  body_ += crowdweb::format("<polygon points=\"{}\"", points_attribute(points));
  append_style(style);
  body_ += "/>\n";
}

void SvgDocument::arrow(double x1, double y1, double x2, double y2, const Color& color,
                        double width) {
  const double dx = x2 - x1;
  const double dy = y2 - y1;
  const double length = std::hypot(dx, dy);
  if (length < 1e-9) return;
  line(x1, y1, x2, y2, stroke_style(color, width));
  // Arrow head: an isosceles triangle at the target.
  const double ux = dx / length;
  const double uy = dy / length;
  const double head = std::max(4.0, 3.0 * width);
  const double bx = x2 - ux * head;
  const double by = y2 - uy * head;
  polygon({{x2, y2},
           {bx - uy * head * 0.5, by + ux * head * 0.5},
           {bx + uy * head * 0.5, by - ux * head * 0.5}},
          fill_style(color));
}

void SvgDocument::text(double x, double y, std::string_view content, double size_px,
                       const Color& color, TextAnchor anchor, bool bold) {
  const std::string_view anchor_name =
      anchor == TextAnchor::kStart ? "start" : (anchor == TextAnchor::kMiddle ? "middle" : "end");
  body_ += crowdweb::format(
      "<text x=\"{}\" y=\"{}\" font-size=\"{}\" fill=\"{}\" text-anchor=\"{}\""
      " font-family=\"Helvetica,Arial,sans-serif\"",
      num(x), num(y), num(size_px), to_hex(color), anchor_name);
  if (bold) body_ += " font-weight=\"bold\"";
  body_ += ">";
  body_ += xml_escape(content);
  body_ += "</text>\n";
}

void SvgDocument::raw(std::string_view fragment) { body_ += fragment; }

std::string SvgDocument::to_string() const {
  std::string out = crowdweb::format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\""
      " viewBox=\"0 0 {} {}\">\n",
      num(width_), num(height_), num(width_), num(height_));
  out += body_;
  out += "</svg>\n";
  return out;
}

}  // namespace crowdweb::viz

// Colors and color scales for the renderers.
#pragma once

#include <cstdint>
#include <string>

namespace crowdweb::viz {

/// An sRGB color.
struct Color {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Color&, const Color&) = default;
};

/// "#rrggbb".
[[nodiscard]] std::string to_hex(const Color& color);

/// Linear interpolation in sRGB, t clamped to [0, 1].
[[nodiscard]] Color lerp(const Color& a, const Color& b, double t) noexcept;

/// Sequential scale for densities/heat maps (viridis-like: dark violet ->
/// teal -> yellow). t is clamped to [0, 1].
[[nodiscard]] Color sequential_scale(double t) noexcept;

/// Diverging heat scale (blue -> pale -> red) for flow deltas.
[[nodiscard]] Color diverging_scale(double t) noexcept;

/// A categorical palette of 12 visually distinct colors, cycled by index.
[[nodiscard]] Color categorical(std::size_t index) noexcept;

}  // namespace crowdweb::viz

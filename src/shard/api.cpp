#include "shard/api.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/handlers.hpp"
#include "json/json.hpp"
#include "mining/registry.hpp"
#include "patterns/mobility.hpp"
#include "transport/csv_source.hpp"
#include "telemetry/exposition.hpp"

namespace crowdweb::shard {

namespace {

using core::handlers::CrowdView;
using http::PathParams;
using http::Request;
using http::Response;

/// Runs `fn` against the current merged view. The MergedPtr lives on
/// this frame for the whole call, pinning every contributing epoch.
/// 503 when no shard is serving; degraded reads are accounted.
template <typename Fn>
Response with_merged(ShardRouter& router, Fn&& fn) {
  const MergedPtr view = router.merged();
  if (!view->crowd.has_value() || view->dataset == nullptr)
    return Response::text(503, "no shard is serving; retry shortly\n");
  if (view->degraded) router.note_degraded_read();
  return fn(CrowdView{*view->dataset, *view->grid, *view->crowd,
                      router.platform().config().sequences.mode, router.taxonomy(),
                      view->degraded, view->missing});
}

/// Appends the degraded marker to non-crowd JSON payloads (users,
/// patterns) the same way core::handlers does for crowd bodies.
void mark_degraded(const MergedView& view, json::Value& payload) {
  if (!view.degraded) return;
  payload.set("degraded", true);
  json::Value missing = json::Value(json::Array{});
  for (const std::size_t id : view.missing)
    missing.push_back(static_cast<std::int64_t>(id));
  payload.set("missing_shards", std::move(missing));
}

/// The per-shard mobility tables of a merged view, for k-way merging.
std::vector<const patterns::MobilityTable*> mobility_parts(const MergedView& view) {
  std::vector<const patterns::MobilityTable*> parts;
  for (const ingest::SnapshotPtr& pin : view.pins)
    if (pin != nullptr) parts.push_back(&pin->mobility);
  return parts;
}

/// K-way merge by ascending user id. Each user lives on exactly one
/// shard under the hash layout, so this reproduces the single-process
/// iteration order; duplicate ids (region mode) keep the first part.
template <typename Fn>
void for_each_merged_user(const std::vector<const patterns::MobilityTable*>& parts,
                          Fn&& fn) {
  std::vector<std::size_t> cursor(parts.size(), 0);
  data::UserId last_user = 0;
  bool emitted = false;
  while (true) {
    std::size_t pick = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      while (cursor[i] < parts[i]->size() && emitted &&
             (*parts[i])[cursor[i]].user <= last_user)
        ++cursor[i];  // duplicate of an already-emitted user
      if (cursor[i] >= parts[i]->size()) continue;
      if (pick == parts.size() ||
          (*parts[i])[cursor[i]].user < (*parts[pick])[cursor[pick]].user)
        pick = i;
    }
    if (pick == parts.size()) return;
    const patterns::UserMobility& entry = (*parts[pick])[cursor[pick]++];
    last_user = entry.user;
    emitted = true;
    fn(entry);
  }
}

Response users_handler(ShardRouter& router) {
  const MergedPtr view = router.merged();
  if (view->dataset == nullptr)
    return Response::text(503, "no shard is serving; retry shortly\n");
  if (view->degraded) router.note_degraded_read();
  json::Value users = json::Value(json::Array{});
  for_each_merged_user(mobility_parts(*view), [&](const patterns::UserMobility& mobility) {
    users.push_back(json::object(
        {{"id", static_cast<std::int64_t>(mobility.user)},
         {"recorded_days", static_cast<std::int64_t>(mobility.recorded_days)},
         {"patterns", static_cast<std::int64_t>(mobility.served_pattern_count())}}));
  });
  json::Value payload = json::object({{"users", std::move(users)}});
  mark_degraded(*view, payload);
  return Response::json(200, json::dump(payload));
}

Response user_patterns_handler(ShardRouter& router, const PathParams& params) {
  const auto id = core::handlers::int_param(params, "id");
  if (!id || *id < 0) return core::handlers::bad_user_id(params);
  const MergedPtr view = router.merged();
  if (view->dataset == nullptr)
    return Response::text(503, "no shard is serving; retry shortly\n");
  if (view->degraded) router.note_degraded_read();

  const auto user = static_cast<data::UserId>(*id);
  const patterns::UserMobility* mobility = nullptr;
  const ingest::PlatformSnapshot* home = nullptr;
  for (const ingest::SnapshotPtr& pin : view->pins) {
    if (pin == nullptr) continue;
    if (const patterns::UserMobility* entry = pin->mobility.find(user)) {
      mobility = entry;
      home = pin.get();
      break;
    }
  }
  if (mobility == nullptr) return Response::not_found_404();

  // Closed-mode entries expand lazily for this request: the wire
  // contract lists the full frequent set regardless of how the owning
  // shard stores it, so the bytes match the expanded-mode response.
  const std::vector<patterns::MobilityPattern>* listed = &mobility->patterns;
  std::vector<patterns::MobilityPattern> expanded;
  if (mobility->closed_only) {
    patterns::MobilityOptions mobility_options;
    mobility_options.sequences = router.platform().config().sequences;
    mobility_options.mining = router.platform().config().mining;
    expanded = patterns::expand_user_patterns(*mobility, home->dataset,
                                              router.taxonomy(), mobility_options);
    listed = &expanded;
  }
  json::Value list = json::Value(json::Array{});
  for (const patterns::MobilityPattern& pattern : *listed)
    list.push_back(core::handlers::pattern_json(
        pattern, router.platform().config().sequences.mode, router.taxonomy(),
        home->dataset));
  json::Value payload = json::object(
      {{"user", static_cast<std::int64_t>(mobility->user)},
       {"recorded_days", static_cast<std::int64_t>(mobility->recorded_days)},
       {"patterns", std::move(list)}});
  mark_degraded(*view, payload);
  return Response::json(200, json::dump(payload));
}

json::Value shard_block(const Shard& shard) {
  json::Value block = json::object({{"id", static_cast<std::int64_t>(shard.spec().id)},
                                    {"name", shard.spec().name},
                                    {"up", shard.up()}});
  if (shard.spec().region.has_value()) {
    const geo::BoundingBox& box = *shard.spec().region;
    block.set("region", json::object({{"min_lat", box.min_lat},
                                      {"max_lat", box.max_lat},
                                      {"min_lon", box.min_lon},
                                      {"max_lon", box.max_lon}}));
  }
  if (!shard.up()) {
    if (!shard.start_status().is_ok())
      block.set("error", shard.start_status().to_string());
    return block;
  }
  const ingest::SnapshotPtr snapshot = shard.snapshot();
  const ingest::IngestStats stats = shard.worker().stats();
  block.set("epoch", static_cast<std::int64_t>(stats.current_epoch));
  if (snapshot != nullptr) {
    block.set("corpus",
              json::object(
                  {{"checkins", static_cast<std::int64_t>(snapshot->dataset.checkin_count())},
                   {"users", static_cast<std::int64_t>(snapshot->dataset.user_count())},
                   {"venues", static_cast<std::int64_t>(snapshot->dataset.venue_count())}}));
  }
  block.set("live_checkins", static_cast<std::int64_t>(stats.live_checkins));
  block.set("queue", json::object({{"depth", static_cast<std::int64_t>(stats.queue_depth)},
                                   {"capacity",
                                    static_cast<std::int64_t>(stats.queue_capacity)}}));
  block.set("last_rebuild_ms", stats.last_rebuild_ms);
  return block;
}

Response status_handler(ShardRouter& router, const ShardApiOptions& options) {
  const MergedPtr view = router.merged();

  json::Value shards = json::Value(json::Array{});
  for (std::size_t id = 0; id < router.shard_count(); ++id)
    shards.push_back(shard_block(router.shard(id)));
  json::Value epochs = json::Value(json::Array{});
  for (const std::uint64_t epoch : view->epochs)
    epochs.push_back(static_cast<std::int64_t>(epoch));
  json::Value missing = json::Value(json::Array{});
  for (const std::size_t id : view->missing)
    missing.push_back(static_cast<std::int64_t>(id));

  json::Value payload = json::object(
      {{"shards", std::move(shards)},
       {"epoch_vector", std::move(epochs)},
       // The splitmix64 mixdown of the vector — the response-cache key.
       // Emitted as a string: it is an opaque 64-bit id, not a counter.
       {"epoch_tag", view->epoch_tag},
       {"combined_epoch", std::to_string(view->combined_epoch)},
       {"degraded", view->degraded},
       {"missing_shards", std::move(missing)},
       {"experiment",
        json::object({{"checkins", static_cast<std::int64_t>(view->total_checkins)}})}});
  if (view->crowd.has_value()) {
    payload.set("windows", view->crowd->window_count());
    payload.set("placements", static_cast<std::int64_t>(view->crowd->total_placements()));
  }
  if (view->grid != nullptr) {
    payload.set("grid",
                json::object({{"rows", static_cast<std::int64_t>(view->grid->rows())},
                              {"cols", static_cast<std::int64_t>(view->grid->cols())},
                              {"cell_meters", view->grid->cell_size_meters()}}));
  }
  // Mining block, same shape as the single-process API: the configured
  // miner + serving mode, with the pattern-set footprint aggregated
  // across every shard epoch this view pins.
  const mining::MiningOptions& mining_config = router.platform().config().mining;
  const mining::IMiningAlgorithm* miner = mining::find_miner(mining_config.algorithm);
  const bool closed_mode =
      miner != nullptr && miner->closed_output() && !mining_config.expand_closed;
  patterns::MobilityStats set_stats;
  for (const ingest::SnapshotPtr& pin : view->pins)
    if (pin != nullptr) set_stats.merge(pin->mobility.stats());
  payload.set(
      "mining",
      json::object(
          {{"algorithm", mining_config.algorithm},
           {"min_support", mining_config.min_support},
           {"expand_closed", mining_config.expand_closed},
           {"max_patterns", static_cast<std::int64_t>(mining_config.max_patterns)},
           {"mode", closed_mode ? "closed" : "expanded"},
           {"pattern_set",
            json::object({{"entries", static_cast<std::int64_t>(set_stats.entries)},
                          {"compact_entries",
                           static_cast<std::int64_t>(set_stats.compact_entries)},
                          {"patterns", static_cast<std::int64_t>(set_stats.patterns)},
                          {"placement_candidates",
                           static_cast<std::int64_t>(set_stats.placement_candidates)},
                          {"bytes", static_cast<std::int64_t>(set_stats.bytes)}})}}));

  // Aggregate ingest block, same shape as the single-process API so
  // existing dashboards (examples/live_monitor) keep working; the epoch
  // is the max shard epoch (the vector above is the precise answer).
  const ingest::IngestStats stats = router.aggregated_stats();
  payload.set("ingest",
              json::object({{"epoch", static_cast<std::int64_t>(stats.current_epoch)},
                            {"live_checkins", static_cast<std::int64_t>(stats.live_checkins)},
                            {"queue_depth", static_cast<std::int64_t>(stats.queue_depth)}}));
  if (options.server_stats != nullptr && *options.server_stats) {
    const http::ServerStats server = (*options.server_stats)();
    payload.set(
        "server",
        json::object(
            {{"requests", static_cast<std::int64_t>(server.requests)},
             {"bad_requests", static_cast<std::int64_t>(server.bad_requests)},
             {"connections", static_cast<std::int64_t>(server.connections)},
             {"responses", json::object({{"2xx", static_cast<std::int64_t>(server.responses_2xx)},
                                         {"4xx", static_cast<std::int64_t>(server.responses_4xx)},
                                         {"5xx", static_cast<std::int64_t>(server.responses_5xx)}})},
             {"bytes_written", static_cast<std::int64_t>(server.bytes_written)}}));
  }
  if (options.cache != nullptr || options.http_workers != 0) {
    json::Value http_block =
        json::object({{"workers", static_cast<std::int64_t>(options.http_workers)}});
    if (options.cache != nullptr) {
      const http::ResponseCacheStats cache = options.cache->stats();
      http_block.set(
          "cache",
          json::object({{"epoch", static_cast<std::int64_t>(cache.epoch)},
                        {"hits", static_cast<std::int64_t>(cache.hits)},
                        {"misses", static_cast<std::int64_t>(cache.misses)},
                        {"evictions", static_cast<std::int64_t>(cache.evictions)},
                        {"not_modified", static_cast<std::int64_t>(cache.not_modified)},
                        {"entries", static_cast<std::int64_t>(cache.entries)},
                        {"bytes", static_cast<std::int64_t>(cache.bytes)},
                        {"byte_budget", static_cast<std::int64_t>(cache.byte_budget)}}));
    }
    payload.set("http", std::move(http_block));
  }
  if (options.metrics != nullptr)
    payload.set("telemetry", telemetry::render_json(*options.metrics));
  return Response::json(200, json::dump(payload));
}

Response ingest_stats_handler(const ShardRouter& router) {
  const ingest::IngestStats stats = router.aggregated_stats();
  json::Value per_shard = json::Value(json::Array{});
  for (std::size_t id = 0; id < router.shard_count(); ++id) {
    const Shard& shard = router.shard(id);
    const ingest::IngestStats s = shard.worker().stats();
    per_shard.push_back(json::object(
        {{"shard", static_cast<std::int64_t>(id)},
         {"up", shard.up()},
         {"accepted", static_cast<std::int64_t>(s.accepted)},
         {"epoch", static_cast<std::int64_t>(s.current_epoch)},
         {"queue_depth", static_cast<std::int64_t>(s.queue_depth)},
         {"live_checkins", static_cast<std::int64_t>(s.live_checkins)}}));
  }
  return Response::json(
      200,
      json::dump(json::object(
          {{"submitted", static_cast<std::int64_t>(stats.submitted)},
           {"accepted", static_cast<std::int64_t>(stats.accepted)},
           {"rejected", static_cast<std::int64_t>(stats.rejected)},
           {"invalid", static_cast<std::int64_t>(stats.invalid)},
           {"queue", json::object({{"depth", static_cast<std::int64_t>(stats.queue_depth)},
                                   {"capacity",
                                    static_cast<std::int64_t>(stats.queue_capacity)}})},
           {"epochs_published", static_cast<std::int64_t>(stats.epochs_published)},
           {"live_checkins", static_cast<std::int64_t>(stats.live_checkins)},
           {"shards", std::move(per_shard)}})));
}

Response ingest_handler(ShardRouter& router, const Request& request) {
  const auto parsed = transport::parse_ingest_csv(
      request, router.taxonomy(), [&router] { return router.allocate_guest_id(); });
  if (!parsed) return transport::bad_ingest_request(parsed.status());
  if (parsed->invalid > 0) router.note_invalid(parsed->invalid);
  const ingest::SubmitResult result = router.submit(parsed->events);
  // aggregated_stats' epoch is the max shard epoch — a small monotonic
  // number like the single-process response, not the opaque cache key.
  // Shard submits partition across queues rather than filling a suffix,
  // so the sharded route stays spool-less (PipelineOutcome.spooled = 0).
  return transport::ingest_response(*parsed, {result.accepted, result.rejected, 0},
                                    router.aggregated_stats(),
                                    router.config().worker.rebuild_interval);
}

Response checkpoint_handler(ShardRouter& router) {
  const Status status = router.checkpoint_all(std::chrono::seconds(10));
  if (!status.is_ok())
    return Response::json(503, json::dump(json::object(
                                   {{"ok", false}, {"error", status.to_string()}})));
  return Response::json(200, json::dump(json::object({{"ok", true}})));
}

}  // namespace

http::Router make_shard_api_router(ShardRouter& router, ShardApiOptions options) {
  http::Router api;
  ShardRouter* r = &router;

  api.get_cached("/", [](const Request&, const PathParams&) {
    return Response::html(200, std::string(core::handlers::viewer_html()));
  });
  api.get("/api/status", [r, options](const Request&, const PathParams&) {
    return status_handler(*r, options);
  });
  api.get("/api/shards", [r](const Request&, const PathParams&) {
    json::Value shards = json::Value(json::Array{});
    for (std::size_t id = 0; id < r->shard_count(); ++id)
      shards.push_back(shard_block(r->shard(id)));
    return Response::json(200, json::dump(json::object({{"shards", std::move(shards)}})));
  });
  api.get_cached("/api/users",
                 [r](const Request&, const PathParams&) { return users_handler(*r); });
  api.get_cached("/api/user/:id/patterns", [r](const Request&, const PathParams& params) {
    return user_patterns_handler(*r, params);
  });
  api.get_cached("/api/crowd/:window", [r](const Request&, const PathParams& params) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::crowd_handler(view, params);
    });
  });
  api.get_cached("/api/crowd/:window/map.svg", [r](const Request&, const PathParams& params) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::crowd_map_handler(view, params);
    });
  });
  api.get_cached("/api/crowd/:window/geojson", [r](const Request&, const PathParams& params) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::crowd_geojson_handler(view, params);
    });
  });
  api.get_cached("/api/groups/:window", [r](const Request&, const PathParams& params) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::groups_handler(view, params);
    });
  });
  api.get_cached("/api/flow/:from/:to", [r](const Request&, const PathParams& params) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::flow_handler(view, params, /*as_map=*/false);
    });
  });
  api.get_cached("/api/flow/:from/:to/map.svg", [r](const Request&, const PathParams& params) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::flow_handler(view, params, /*as_map=*/true);
    });
  });
  api.get_cached("/api/animation.svg", [r](const Request& request, const PathParams&) {
    return with_merged(*r, [&](const CrowdView& view) {
      return core::handlers::animation_handler(view, request);
    });
  });
  api.get_cached("/api/rhythm.svg", [r](const Request&, const PathParams&) {
    return with_merged(
        *r, [&](const CrowdView& view) { return core::handlers::rhythm_handler(view); });
  });
  api.post("/api/ingest", [r](const Request& request, const PathParams&) {
    return ingest_handler(*r, request);
  });
  api.get("/api/ingest/stats", [r](const Request&, const PathParams&) {
    return ingest_stats_handler(*r);
  });
  api.post("/api/admin/checkpoint", [r](const Request&, const PathParams&) {
    return checkpoint_handler(*r);
  });
  if (telemetry::Registry* metrics = options.metrics; metrics != nullptr) {
    api.get("/metrics", [metrics](const Request&, const PathParams&) {
      return Response::text(200, telemetry::render_prometheus(*metrics),
                            telemetry::kPrometheusContentType);
    });
  }
  return api;
}

}  // namespace crowdweb::shard

// Scatter-gather routing across region shards.
//
// The ShardRouter owns N Shards (see shard.hpp) under one static
// layout, fixed at creation:
//   - region mode: each shard owns a named bounding box; events route
//     to the first region containing their position (hash fallback for
//     positions outside every box). Base users are assigned wholly to
//     one shard by their first check-in's position, so the seeded
//     corpora are disjoint; a live user roaming across regions can
//     appear on several shards, which the merge tolerates (their
//     placements interleave) but double-counts — region mode trades
//     exactness for locality.
//   - hash mode: shard = splitmix64(user) % N (see hash.hpp). A user's
//     whole history lives on exactly one shard, which makes the merged
//     read path value-identical to a single-process deployment.
//
// Writes (`submit`) partition the batch by owning shard. Reads call
// `merged()`: every shard's current epoch snapshot is pinned, and the
// per-shard crowd models are k-way merged by user id into one
// CrowdModel the shared core handlers render — possible because every
// shard's grid is pinned to the same city-wide bounds
// (IngestPipelineConfig::fixed_grid_bounds), so cell ids agree across
// shards. The merge is cached per epoch vector; it reruns only when
// some shard publishes.
//
// Cross-shard consistency is expressed as the epoch vector
// (epoch-per-shard, e.g. [3,5,2]): /api/status reports it, ETags embed
// its dotted form ("3.5.2-<hash>"), and the response cache is re-keyed
// with its splitmix64 mixdown on every shard publish, so cached bodies
// can never mix state across epoch-vector changes. A shard that is
// down simply drops out: reads return a partial merge with an explicit
// "degraded" marker (HTTP 200) and its slot reads 0 in the vector.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "crowd/model.hpp"
#include "http/cache.hpp"
#include "ingest/event.hpp"
#include "ingest/worker.hpp"
#include "shard/shard.hpp"
#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace crowdweb::shard {

/// One named region of the static layout (region mode).
struct ShardRegion {
  std::string name;
  geo::BoundingBox box;
};

struct ShardRouterConfig {
  /// Hash-mode shard count; ignored when `regions` is non-empty.
  std::size_t shard_count = 2;
  /// Region mode: one shard per entry, in order (first containing
  /// region wins for positions in overlapping boxes).
  std::vector<ShardRegion> regions;
  /// Deployment registry for the crowdweb_shard_* families (see
  /// docs/OBSERVABILITY.md). Null disables router telemetry. Per-shard
  /// workers always keep private registries — their scrape gauges are
  /// name-keyed and cannot share one registry.
  telemetry::Registry* metrics = nullptr;
  /// Template for every shard's worker. `worker.store.dir` is the
  /// deployment's store *root*: shard k persists under
  /// "<root>/shard-<k>" (empty = durability off). `worker.metrics` is
  /// ignored (see above).
  ingest::IngestWorkerConfig worker;
  /// Re-mining threads per shard (shards already parallelize the
  /// deployment, so the default keeps each shard single-threaded).
  unsigned mining_threads_per_shard = 1;
  /// start(): keep serving when a shard fails to start (it stays down
  /// and reads degrade) instead of failing the whole router.
  bool allow_degraded_start = false;
  /// Shards never started by start() — they stay down, as if crashed.
  /// For degraded-read tests and staged region roll-outs.
  std::vector<std::size_t> disabled_shards;
};

/// One consistent scatter-gather read view: per-shard snapshots pinned
/// at merge time plus the merged crowd model. Immutable and shared —
/// handlers hold the pointer for the whole request, so a concurrent
/// shard publish cannot mutate what they render.
struct MergedView {
  /// Epoch per shard slot (0 = shard down / nothing published).
  std::vector<std::uint64_t> epochs;
  /// Pinned snapshots, parallel to `epochs` (null for down shards).
  std::vector<ingest::SnapshotPtr> pins;
  /// Ids of shards that contributed nothing, ascending.
  std::vector<std::size_t> missing;
  bool degraded = false;  ///< true iff `missing` is non-empty
  std::uint64_t combined_epoch = 0;  ///< mix_epoch_vector(epochs)
  std::string epoch_tag;             ///< dotted vector, e.g. "3.5.2"
  /// K-way merged crowd model (nullopt when no shard is up).
  std::optional<crowd::CrowdModel> crowd;
  /// Corpus + grid of the first live shard, for handlers that need a
  /// dataset (labels) and the pinned grid geometry. Null when no shard
  /// is up. Venue tables are shared across shards at seed time; they
  /// diverge only once live events mint shard-local venues.
  const data::Dataset* dataset = nullptr;
  const geo::SpatialGrid* grid = nullptr;
  std::size_t live_checkins = 0;   ///< summed over live shards
  std::size_t total_checkins = 0;  ///< summed corpus size over live shards
};
using MergedPtr = std::shared_ptr<const MergedView>;

class ShardRouter {
 public:
  /// Builds the layout over `platform`'s experiment corpus: partitions
  /// users (hash or region assignment), seeds one Shard per slot with
  /// its corpus slice + matching phase-2 mobility, and pins every
  /// shard's grid to the full corpus bounds so merged cell ids agree.
  /// `platform` must outlive the router.
  static Result<std::unique_ptr<ShardRouter>> create(const core::Platform& platform,
                                                     ShardRouterConfig config);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts every non-disabled shard (store recovery + first epoch) and
  /// settles the cache epoch tag. Without `allow_degraded_start`, the
  /// first failure stops what already started and returns the error;
  /// with it, failed shards stay down and the router serves degraded.
  /// Fails either way when nothing came up.
  [[nodiscard]] Status start();

  /// Stops all shards (idempotent).
  void stop();

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t up_count() const noexcept;
  [[nodiscard]] Shard& shard(std::size_t id) noexcept { return *shards_[id]; }
  [[nodiscard]] const Shard& shard(std::size_t id) const noexcept { return *shards_[id]; }

  /// The shard an event routes to (hash of the user, or the first
  /// region containing the position — see the header comment).
  [[nodiscard]] std::size_t owner_of(const ingest::IngestEvent& event) const noexcept;

  /// Partitions the batch by owning shard and submits each slice;
  /// per-shard accept/reject outcomes are summed. Thread-safe.
  ingest::SubmitResult submit(std::span<const ingest::IngestEvent> events);

  /// Forwards producer-side invalid-row accounting (to shard 0).
  void note_invalid(std::uint64_t count) noexcept;

  /// A guest id for anonymous submissions (allocated on shard 0; the
  /// id space is global, so routing stays consistent).
  [[nodiscard]] data::UserId allocate_guest_id() noexcept;

  /// The current scatter-gather view. Cached per epoch vector: the
  /// k-way merge runs once per cross-shard state change, every other
  /// call is a pointer copy. Never null; with no shard up the view has
  /// no crowd/dataset and lists every shard as missing.
  [[nodiscard]] MergedPtr merged() const;

  /// Epoch per shard slot, right now (0 for down shards).
  [[nodiscard]] std::vector<std::uint64_t> epoch_vector() const;
  /// Dotted rendition of epoch_vector(), e.g. "3.5.2".
  [[nodiscard]] std::string epoch_tag() const;
  /// Dotted rendition of an arbitrary epoch vector.
  [[nodiscard]] static std::string epoch_tag_of(std::span<const std::uint64_t> epochs);
  /// mix_epoch_vector(epoch_vector()) — the response-cache key epoch.
  [[nodiscard]] std::uint64_t combined_epoch() const;

  /// Re-keys `cache` (epoch + dotted tag) on every shard publish, so
  /// cached responses become unreachable the moment any shard's state
  /// moves. Call before start(); `cache` must outlive the router.
  void rekey_cache_on_publish(http::ResponseCache* cache) noexcept { cache_ = cache; }

  /// Sums per-shard worker stats; `current_epoch` is the max shard
  /// epoch (report the vector, not this, for consistency questions).
  [[nodiscard]] ingest::IngestStats aggregated_stats() const;

  /// Polls until the merged view holds at least `live_checkins` live
  /// events (true) or the timeout expires (false). Test/bench helper.
  [[nodiscard]] bool wait_for_live(std::size_t live_checkins,
                                   std::chrono::milliseconds timeout) const;

  /// Checkpoints every live shard; first error wins (all are attempted).
  [[nodiscard]] Status checkpoint_all(std::chrono::milliseconds timeout);

  /// Accounts one degraded read (crowdweb_shard_degraded_reads_total).
  void note_degraded_read() const noexcept;

  [[nodiscard]] const core::Platform& platform() const noexcept { return *platform_; }
  [[nodiscard]] const data::Taxonomy& taxonomy() const noexcept {
    return platform_->taxonomy();
  }
  [[nodiscard]] const ShardRouterConfig& config() const noexcept { return config_; }

 private:
  ShardRouter() = default;

  /// Hash- or region-assignment of a base user (first check-in wins).
  [[nodiscard]] std::size_t assign_user(data::UserId user,
                                        const geo::LatLon& first_position) const noexcept;
  void init_metrics();
  /// Pushes per-shard gauges (up/epoch/lag/queue/live) to the registry.
  void refresh_gauges() const;

  const core::Platform* platform_ = nullptr;
  ShardRouterConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<bool> disabled_;
  http::ResponseCache* cache_ = nullptr;

  telemetry::Registry* metrics_ = nullptr;
  std::vector<telemetry::Gauge*> up_gauge_;
  std::vector<telemetry::Gauge*> epoch_gauge_;
  std::vector<telemetry::Gauge*> lag_gauge_;
  std::vector<telemetry::Gauge*> depth_gauge_;
  std::vector<telemetry::Gauge*> live_gauge_;
  std::vector<telemetry::Counter*> events_total_;
  telemetry::Histogram* merge_seconds_ = nullptr;
  telemetry::Counter* merges_ = nullptr;
  telemetry::Counter* degraded_reads_ = nullptr;

  mutable std::mutex merge_mutex_;
  mutable MergedPtr merge_cache_;  // guarded by merge_mutex_
};

}  // namespace crowdweb::shard

#include "shard/shard.hpp"

#include <utility>

namespace crowdweb::shard {

Shard::Shard(ShardSpec spec, const data::Dataset& base,
             std::vector<patterns::UserMobility> mobility,
             const data::Taxonomy& taxonomy, ingest::IngestPipelineConfig pipeline,
             ingest::IngestWorkerConfig config)
    : spec_(std::move(spec)),
      worker_(std::make_unique<ingest::IngestWorker>(base, mobility, taxonomy,
                                                     std::move(pipeline),
                                                     std::move(config))) {}

Status Shard::start() {
  start_status_ = worker_->start();
  return start_status_;
}

void Shard::stop() { worker_->stop(); }

}  // namespace crowdweb::shard

// The sharded CrowdWeb HTTP API: the same surface as core/api.hpp,
// served by scatter-gather over a ShardRouter instead of one worker.
//
// Crowd-facing routes (crowd/groups/flow/animation/rhythm) render the
// router's merged view through the shared core::handlers — the bodies
// are value-identical to a single-process deployment over the same
// corpus (hash layout; see router.hpp for the region-mode caveat).
// When one or more shards are down the routes still answer 200, with
// an explicit "degraded": true marker and the missing shard ids in the
// JSON body (SVG routes render the partial merge unmarked).
//
// Deviations from the single-process surface:
//   GET  /api/status       per-shard blocks + the epoch vector (see
//                          docs/API.md)
//   GET  /api/shards       the static layout and per-shard health
//   POST /api/ingest       routes rows to their owning shards; rows for
//                          a down shard count as rejected
//   not served             /api/user/:id/{graph,timeline}.svg,
//                          /api/predict/:id, /api/communities, and
//                          POST /api/analyze — they read batch-platform
//                          state that sharding does not partition yet
#pragma once

#include <functional>
#include <memory>

#include "http/cache.hpp"
#include "http/router.hpp"
#include "http/server.hpp"
#include "shard/router.hpp"
#include "telemetry/metrics.hpp"

namespace crowdweb::shard {

struct ShardApiOptions {
  /// Same contract as core::ApiOptions::server_stats.
  std::shared_ptr<std::function<http::ServerStats()>> server_stats;
  /// Registers GET /metrics and the /api/status telemetry block. Pass
  /// the deployment registry (the one ShardRouterConfig::metrics uses)
  /// so one scrape covers the router and the HTTP server.
  telemetry::Registry* metrics = nullptr;
  /// Cache stats block for /api/status (the cache itself is wired via
  /// ShardRouter::rekey_cache_on_publish + ServerConfig::cache).
  const http::ResponseCache* cache = nullptr;
  /// Resolved ServerConfig::worker_threads for /api/status.
  int http_workers = 0;
};

/// Builds the scatter-gather API over a started (or starting) router.
/// The router must outlive the returned router object.
[[nodiscard]] http::Router make_shard_api_router(ShardRouter& router,
                                                 ShardApiOptions options = {});

}  // namespace crowdweb::shard

// Deterministic user→shard assignment.
//
// Shard layouts must survive restarts, crash recovery, and rebuilds on
// different machines: the same user must land on the same shard every
// time, or recovered WALs would replay users into foreign corpora and
// the scatter-gather merge would double-count them. `std::hash` is
// implementation-defined (libstdc++ hashes integers to themselves,
// libc++ differs, and either may change between releases), so the
// assignment uses splitmix64 — a fixed, well-mixed 64-bit permutation
// with published constants. tests/shard_test.cpp pins known
// assignments so any accidental change to this function fails loudly.
#pragma once

#include <cstdint>
#include <span>

#include "data/checkin.hpp"

namespace crowdweb::shard {

/// splitmix64 finalizer (Steele, Lea & Flood; public-domain constants).
/// A bijection on 64-bit values with strong avalanche behavior.
[[nodiscard]] constexpr std::uint64_t stable_hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The shard that owns `user` under a `shard_count`-way hash layout.
[[nodiscard]] constexpr std::size_t shard_of_user(data::UserId user,
                                                  std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(stable_hash64(user) % shard_count);
}

/// Mixes a per-shard epoch vector into one 64-bit cache epoch: any
/// single shard publishing changes the result, so a ResponseCache keyed
/// on it re-keys exactly when cross-shard state moves. Position-
/// dependent so permuted vectors do not collide.
[[nodiscard]] constexpr std::uint64_t mix_epoch_vector(
    std::span<const std::uint64_t> epochs) noexcept {
  std::uint64_t mixed = 0x243f6a8885a308d3ull;  // pi fractional bits
  for (std::size_t i = 0; i < epochs.size(); ++i)
    mixed = stable_hash64(mixed ^ stable_hash64(epochs[i] + i));
  return mixed;
}

}  // namespace crowdweb::shard

// Binary frame ingestion for the sharded deployment.
//
// Two layouts over the same transport pieces (src/transport):
//
//   - routed (default): one FrameServer whose pipeline submits through
//     ShardRouter::submit — every frame is partitioned across owning
//     shards exactly like a POST /api/ingest body. Producers need no
//     knowledge of the layout.
//   - per-shard listeners: one FrameServer per live shard, each
//     submitting straight to that shard's worker queue. A producer that
//     already partitions by the layout (or a shard-local collector)
//     connects to its shard's port and skips the routing hop.
//
// Both run spool-less: ShardRouter::submit partitions batches rather
// than rejecting a suffix (the IngestPipeline spool contract needs a
// suffix), and per-shard bursts are the queue's own backpressure story.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shard/router.hpp"
#include "telemetry/metrics.hpp"
#include "transport/frame_server.hpp"
#include "transport/pipeline.hpp"
#include "util/status.hpp"

namespace crowdweb::shard {

struct ShardTransportConfig {
  std::string address = "127.0.0.1";
  /// true = one listener per live shard; false = one routed listener.
  bool per_shard_listeners = false;
  /// First listener port; listener k binds base_port + k. 0 binds
  /// ephemeral ports throughout (read back via port(k)).
  std::uint16_t base_port = 0;
  /// Idle-producer reap timeout for every listener (0 disables).
  std::chrono::milliseconds idle_timeout{60'000};
  /// Registry for the crowdweb_transport_* families. Per-shard
  /// listeners share it: series stay distinct only by source label, so
  /// attach a registry per transport if per-listener series matter.
  telemetry::Registry* metrics = nullptr;
};

/// The sharded deployment's frame ingest edge. Create after the router,
/// start after ShardRouter::start (listeners bind to live shards),
/// destroy before the router.
class ShardTransport {
 public:
  /// `router` must outlive the transport.
  ShardTransport(ShardRouter& router, ShardTransportConfig config = {});
  ~ShardTransport();
  ShardTransport(const ShardTransport&) = delete;
  ShardTransport& operator=(const ShardTransport&) = delete;

  [[nodiscard]] Status start();
  void stop();

  /// Listeners actually bound: 1 (routed) or the live-shard count.
  [[nodiscard]] std::size_t listener_count() const noexcept;

  /// The bound port of listener `index` (routed mode: index 0). The
  /// shard a per-shard listener feeds is shard_of(index).
  [[nodiscard]] std::uint16_t port(std::size_t index) const;

  /// The shard id listener `index` submits to (routed mode: every
  /// listener routes, the value is meaningless and returns 0).
  [[nodiscard]] std::size_t shard_of(std::size_t index) const;

  /// Summed listener stats across all listeners.
  [[nodiscard]] transport::SourceStats stats() const;

 private:
  struct Listener {
    std::size_t shard = 0;
    std::unique_ptr<transport::IngestPipeline> pipeline;
    std::unique_ptr<transport::FrameServer> server;
  };

  ShardRouter& router_;
  ShardTransportConfig config_;
  std::vector<Listener> listeners_;
  bool running_ = false;
};

}  // namespace crowdweb::shard

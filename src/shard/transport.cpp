#include "shard/transport.hpp"

#include <span>
#include <utility>

#include "ingest/event.hpp"
#include "ingest/worker.hpp"

namespace crowdweb::shard {

ShardTransport::ShardTransport(ShardRouter& router, ShardTransportConfig config)
    : router_(router), config_(std::move(config)) {}

ShardTransport::~ShardTransport() { stop(); }

Status ShardTransport::start() {
  if (running_) return Status::ok();
  listeners_.clear();

  const auto add_listener = [&](std::size_t shard, transport::SubmitFn submit,
                                std::uint16_t port) -> Status {
    Listener listener;
    listener.shard = shard;
    transport::PipelineConfig pipeline_config;
    pipeline_config.metrics = config_.metrics;
    listener.pipeline = std::make_unique<transport::IngestPipeline>(
        std::move(submit), std::move(pipeline_config));
    transport::FrameServerConfig server_config;
    server_config.address = config_.address;
    server_config.port = port;
    server_config.idle_timeout = config_.idle_timeout;
    server_config.metrics = config_.metrics;
    listener.server = std::make_unique<transport::FrameServer>(*listener.pipeline,
                                                               server_config);
    const Status started = listener.server->start();
    if (!started.is_ok()) return started;
    listeners_.push_back(std::move(listener));
    return Status::ok();
  };

  Status status = Status::ok();
  if (config_.per_shard_listeners) {
    std::size_t bound = 0;
    for (std::size_t id = 0; id < router_.shard_count(); ++id) {
      if (!router_.shard(id).up()) continue;
      ingest::IngestWorker* worker = &router_.shard(id).worker();
      const std::uint16_t port =
          config_.base_port == 0
              ? std::uint16_t{0}
              : static_cast<std::uint16_t>(config_.base_port + bound);
      status = add_listener(
          id,
          [worker](std::span<const ingest::IngestEvent> events) {
            return worker->submit(events);
          },
          port);
      if (!status.is_ok()) break;
      ++bound;
    }
    if (status.is_ok() && listeners_.empty())
      status = failed_precondition("no live shard to bind a listener to");
  } else {
    ShardRouter* router = &router_;
    status = add_listener(
        0,
        [router](std::span<const ingest::IngestEvent> events) {
          return router->submit(events);
        },
        config_.base_port);
  }
  if (!status.is_ok()) {
    stop();
    return status;
  }
  running_ = true;
  return Status::ok();
}

void ShardTransport::stop() {
  for (Listener& listener : listeners_) {
    if (listener.server) listener.server->stop();
  }
  listeners_.clear();
  running_ = false;
}

std::size_t ShardTransport::listener_count() const noexcept {
  return listeners_.size();
}

std::uint16_t ShardTransport::port(std::size_t index) const {
  return listeners_[index].server->port();
}

std::size_t ShardTransport::shard_of(std::size_t index) const {
  return listeners_[index].shard;
}

transport::SourceStats ShardTransport::stats() const {
  transport::SourceStats total;
  for (const Listener& listener : listeners_) {
    const transport::SourceStats stats = listener.server->stats();
    total.frames += stats.frames;
    total.events += stats.events;
    total.accepted += stats.accepted;
    total.rejected += stats.rejected;
    total.spooled += stats.spooled;
    total.invalid += stats.invalid;
    total.decode_errors += stats.decode_errors;
  }
  return total;
}

}  // namespace crowdweb::shard

#include "shard/router.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "shard/hash.hpp"
#include "telemetry/timer.hpp"
#include "util/format.hpp"

namespace crowdweb::shard {

namespace {

/// Per-shard worker config derived from the deployment template: a
/// private registry (worker scrape gauges are name-keyed) and a
/// "shard-<k>" store subdirectory under the deployment root.
ingest::IngestWorkerConfig worker_config_for(const ShardRouterConfig& config,
                                             std::size_t id) {
  ingest::IngestWorkerConfig worker = config.worker;
  worker.metrics = nullptr;
  if (!worker.store.dir.empty())
    worker.store.dir = crowdweb::format("{}/shard-{}", worker.store.dir, id);
  worker.store.metrics = nullptr;
  return worker;
}

}  // namespace

Result<std::unique_ptr<ShardRouter>> ShardRouter::create(const core::Platform& platform,
                                                         ShardRouterConfig config) {
  const std::size_t count =
      config.regions.empty() ? std::max<std::size_t>(1, config.shard_count)
                             : config.regions.size();
  for (const std::size_t id : config.disabled_shards) {
    if (id >= count)
      return invalid_argument(crowdweb::format("disabled shard {} out of range", id));
  }

  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->platform_ = &platform;
  router->config_ = std::move(config);
  router->disabled_.assign(count, false);
  for (const std::size_t id : router->config_.disabled_shards)
    router->disabled_[id] = true;

  // Partition the experiment corpus: every base user goes wholly to one
  // shard, so seeded corpora are disjoint and the k-way merge of
  // user-sorted state reproduces single-process order.
  const data::Dataset& experiment = platform.experiment_dataset();
  std::vector<std::vector<data::UserId>> users_of(count);
  for (const data::UserId user : experiment.users()) {
    const auto records = experiment.checkins_for(user);
    const geo::LatLon first =
        records.empty() ? geo::LatLon{} : records.front().position;
    users_of[router->assign_user(user, first)].push_back(user);
  }
  std::vector<std::vector<patterns::UserMobility>> mobility_of(count);
  for (const patterns::UserMobility& entry : platform.mobility()) {
    const auto records = experiment.checkins_for(entry.user);
    const geo::LatLon first =
        records.empty() ? geo::LatLon{} : records.front().position;
    mobility_of[router->assign_user(entry.user, first)].push_back(entry);
  }

  // Every shard renders onto the same city-wide grid: cell ids must
  // agree across shards for merged crowd windows to be meaningful.
  ingest::IngestPipelineConfig pipeline;
  pipeline.grid_cell_meters = platform.config().grid_cell_meters;
  pipeline.crowd = platform.config().crowd;
  pipeline.sequences = platform.config().sequences;
  pipeline.mining = platform.config().mining;
  pipeline.mining_threads = router->config_.mining_threads_per_shard;
  pipeline.fixed_grid_bounds = experiment.bounds();

  router->shards_.reserve(count);
  for (std::size_t id = 0; id < count; ++id) {
    ShardSpec spec;
    spec.id = id;
    if (router->config_.regions.empty()) {
      spec.name = crowdweb::format("hash-{}", id);
    } else {
      spec.name = router->config_.regions[id].name;
      spec.region = router->config_.regions[id].box;
    }
    router->shards_.push_back(std::make_unique<Shard>(
        std::move(spec), experiment.filter_users(users_of[id]),
        std::move(mobility_of[id]), platform.taxonomy(), pipeline,
        worker_config_for(router->config_, id)));
  }

  router->init_metrics();

  // Publish hooks: per-shard epoch gauge plus a response-cache re-key,
  // registered before start() so the first epoch is observed too. The
  // hook runs on the publishing shard's worker thread.
  for (std::size_t id = 0; id < count; ++id) {
    ShardRouter* self = router.get();
    router->shards_[id]->worker().hub().on_publish(
        [self, id](const ingest::PlatformSnapshot& snapshot) {
          if (self->epoch_gauge_[id] != nullptr)
            self->epoch_gauge_[id]->set(static_cast<double>(snapshot.epoch));
          if (self->cache_ != nullptr)
            self->cache_->set_epoch(self->combined_epoch(), self->epoch_tag());
        });
  }
  return router;
}

ShardRouter::~ShardRouter() { stop(); }

Status ShardRouter::start() {
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    if (disabled_[id]) continue;
    const Status status = shards_[id]->start();
    if (!status.is_ok() && !config_.allow_degraded_start) {
      stop();
      return status;
    }
  }
  if (up_count() == 0) {
    stop();
    return unavailable("no shard came up");
  }
  // Hooks fired while siblings were still starting saw their epochs as
  // 0; settle the cache key on the complete vector.
  if (cache_ != nullptr) cache_->set_epoch(combined_epoch(), epoch_tag());
  refresh_gauges();
  return Status::ok();
}

void ShardRouter::stop() {
  for (auto& shard : shards_) shard->stop();
}

std::size_t ShardRouter::up_count() const noexcept {
  std::size_t up = 0;
  for (const auto& shard : shards_)
    if (shard->up()) ++up;
  return up;
}

std::size_t ShardRouter::assign_user(data::UserId user,
                                     const geo::LatLon& first_position) const noexcept {
  for (std::size_t id = 0; id < config_.regions.size(); ++id) {
    if (config_.regions[id].box.contains(first_position)) return id;
  }
  return shard_of_user(user, shards_.empty() ? std::max<std::size_t>(1, config_.shard_count)
                                             : shards_.size());
}

std::size_t ShardRouter::owner_of(const ingest::IngestEvent& event) const noexcept {
  for (std::size_t id = 0; id < config_.regions.size(); ++id) {
    if (config_.regions[id].box.contains(event.position)) return id;
  }
  return shard_of_user(event.user, shards_.size());
}

ingest::SubmitResult ShardRouter::submit(std::span<const ingest::IngestEvent> events) {
  std::vector<std::vector<ingest::IngestEvent>> slices(shards_.size());
  for (const ingest::IngestEvent& event : events)
    slices[owner_of(event)].push_back(event);

  ingest::SubmitResult total;
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    if (slices[id].empty()) continue;
    if (!shards_[id]->up()) {
      // Events for a down shard are refused, not silently dropped —
      // same contract as a full queue: the producer retries.
      total.rejected += slices[id].size();
      continue;
    }
    const ingest::SubmitResult result = shards_[id]->worker().submit(slices[id]);
    total.accepted += result.accepted;
    total.rejected += result.rejected;
    if (events_total_.size() > id && events_total_[id] != nullptr)
      events_total_[id]->increment(result.accepted);
  }
  return total;
}

void ShardRouter::note_invalid(std::uint64_t count) noexcept {
  shards_.front()->worker().note_invalid(count);
}

data::UserId ShardRouter::allocate_guest_id() noexcept {
  return shards_.front()->worker().allocate_guest_id();
}

MergedPtr ShardRouter::merged() const {
  std::vector<ingest::SnapshotPtr> pins(shards_.size());
  std::vector<std::uint64_t> epochs(shards_.size(), 0);
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    pins[id] = shards_[id]->snapshot();
    epochs[id] = pins[id] ? pins[id]->epoch : 0;
  }

  std::lock_guard<std::mutex> lock(merge_mutex_);
  if (merge_cache_ != nullptr && merge_cache_->epochs == epochs) return merge_cache_;

  auto view = std::make_shared<MergedView>();
  view->epochs = epochs;
  view->pins = std::move(pins);
  view->combined_epoch = mix_epoch_vector(view->epochs);
  view->epoch_tag = epoch_tag_of(view->epochs);

  std::vector<const crowd::CrowdModel*> parts;
  for (std::size_t id = 0; id < view->pins.size(); ++id) {
    const ingest::SnapshotPtr& pin = view->pins[id];
    if (pin == nullptr) {
      view->missing.push_back(id);
      continue;
    }
    parts.push_back(&pin->crowd);
    if (view->dataset == nullptr) {
      view->dataset = &pin->dataset;
      view->grid = &pin->grid;
    }
    view->live_checkins += pin->live_checkins;
    view->total_checkins += pin->dataset.checkin_count();
  }
  view->degraded = !view->missing.empty();

  if (!parts.empty()) {
    const telemetry::ScopedTimer timer(merge_seconds_);
    auto merged_crowd = crowd::CrowdModel::merge(parts);
    if (merged_crowd) {
      view->crowd = std::move(*merged_crowd);
    } else {
      // Grid/options disagreement is a construction bug (the router
      // pins both); degrade to the first live shard rather than 500.
      view->crowd = *parts.front();
    }
    if (merges_ != nullptr) merges_->increment();
  }

  refresh_gauges();
  merge_cache_ = std::move(view);
  return merge_cache_;
}

std::vector<std::uint64_t> ShardRouter::epoch_vector() const {
  std::vector<std::uint64_t> epochs(shards_.size(), 0);
  for (std::size_t id = 0; id < shards_.size(); ++id)
    epochs[id] = shards_[id]->epoch();
  return epochs;
}

std::string ShardRouter::epoch_tag() const { return epoch_tag_of(epoch_vector()); }

std::uint64_t ShardRouter::combined_epoch() const {
  const std::vector<std::uint64_t> epochs = epoch_vector();
  return mix_epoch_vector(epochs);
}

ingest::IngestStats ShardRouter::aggregated_stats() const {
  ingest::IngestStats total;
  for (const auto& shard : shards_) {
    const ingest::IngestStats stats = shard->worker().stats();
    total.submitted += stats.submitted;
    total.accepted += stats.accepted;
    total.rejected += stats.rejected;
    total.invalid += stats.invalid;
    total.epochs_published += stats.epochs_published;
    total.current_epoch = std::max(total.current_epoch, stats.current_epoch);
    total.queue_depth += stats.queue_depth;
    total.queue_capacity += stats.queue_capacity;
    total.live_checkins += stats.live_checkins;
    total.last_rebuild_ms = std::max(total.last_rebuild_ms, stats.last_rebuild_ms);
    total.total_rebuild_ms += stats.total_rebuild_ms;
  }
  return total;
}

bool ShardRouter::wait_for_live(std::size_t live_checkins,
                                std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (merged()->live_checkins >= live_checkins) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Status ShardRouter::checkpoint_all(std::chrono::milliseconds timeout) {
  Status first_error = Status::ok();
  for (auto& shard : shards_) {
    if (!shard->up()) continue;
    const Status status = shard->worker().checkpoint_now(timeout);
    if (!status.is_ok() && first_error.is_ok()) first_error = status;
  }
  return first_error;
}

void ShardRouter::note_degraded_read() const noexcept {
  if (degraded_reads_ != nullptr) degraded_reads_->increment();
}

std::string ShardRouter::epoch_tag_of(std::span<const std::uint64_t> epochs) {
  std::string tag;
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    if (i > 0) tag.push_back('.');
    tag += std::to_string(epochs[i]);
  }
  return tag;
}

void ShardRouter::init_metrics() {
  metrics_ = config_.metrics;
  up_gauge_.assign(shards_.size(), nullptr);
  epoch_gauge_.assign(shards_.size(), nullptr);
  lag_gauge_.assign(shards_.size(), nullptr);
  depth_gauge_.assign(shards_.size(), nullptr);
  live_gauge_.assign(shards_.size(), nullptr);
  events_total_.assign(shards_.size(), nullptr);
  if (metrics_ == nullptr) return;

  metrics_->gauge("crowdweb_shard_count", "Shards in the deployment layout")
      .set(static_cast<double>(shards_.size()));
  auto& up = metrics_->gauge_family("crowdweb_shard_up",
                                    "1 when the shard serves, 0 when down", {"shard"});
  auto& epoch = metrics_->gauge_family("crowdweb_shard_epoch",
                                       "Published epoch per shard", {"shard"});
  auto& lag = metrics_->gauge_family(
      "crowdweb_shard_epoch_lag",
      "Distance from the shard's epoch to the deployment's max epoch", {"shard"});
  auto& depth = metrics_->gauge_family("crowdweb_shard_queue_depth",
                                       "Ingest queue depth per shard", {"shard"});
  auto& live = metrics_->gauge_family("crowdweb_shard_live_checkins",
                                      "Accepted live events in the shard's epoch",
                                      {"shard"});
  auto& events = metrics_->counter_family("crowdweb_shard_ingest_events_total",
                                          "Events routed to and accepted by the shard",
                                          {"shard"});
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    const std::vector<std::string> labels{std::to_string(id)};
    up_gauge_[id] = &up.with_labels(labels);
    epoch_gauge_[id] = &epoch.with_labels(labels);
    lag_gauge_[id] = &lag.with_labels(labels);
    depth_gauge_[id] = &depth.with_labels(labels);
    live_gauge_[id] = &live.with_labels(labels);
    events_total_[id] = &events.with_labels(labels);
  }
  merge_seconds_ = &metrics_->histogram(
      "crowdweb_shard_merge_duration_seconds",
      "Wall-clock cost of one scatter-gather crowd merge",
      telemetry::default_duration_buckets());
  merges_ = &metrics_->counter("crowdweb_shard_merges_total",
                               "Scatter-gather crowd merges performed");
  degraded_reads_ = &metrics_->counter(
      "crowdweb_shard_degraded_reads_total",
      "Reads served as a partial merge because a shard was down");
}

void ShardRouter::refresh_gauges() const {
  if (metrics_ == nullptr) return;
  std::uint64_t max_epoch = 0;
  for (const auto& shard : shards_) max_epoch = std::max(max_epoch, shard->epoch());
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    const bool up = shards_[id]->up();
    const std::uint64_t epoch = shards_[id]->epoch();
    const ingest::IngestStats stats = shards_[id]->worker().stats();
    up_gauge_[id]->set(up ? 1.0 : 0.0);
    epoch_gauge_[id]->set(static_cast<double>(epoch));
    lag_gauge_[id]->set(static_cast<double>(max_epoch - epoch));
    depth_gauge_[id]->set(static_cast<double>(stats.queue_depth));
    live_gauge_[id]->set(up ? static_cast<double>(stats.live_checkins) : 0.0);
  }
}

}  // namespace crowdweb::shard

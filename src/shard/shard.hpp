// One region shard: the unit of horizontal partitioning.
//
// A Shard bundles everything that used to be process-global state —
// its slice of the corpus, a durable store directory (WAL +
// checkpoints), an ingest queue with its IngestWorker, and the epoch
// SnapshotHub the worker publishes through — behind one lifecycle.
// The ShardRouter owns N of these, routes writes to the owning shard,
// and scatter-gathers reads across their snapshots (see router.hpp).
//
// Each shard's worker keeps a private telemetry registry: the worker's
// scrape-time gauges are registered by name, so N workers cannot share
// one registry. The router re-exports the interesting per-shard series
// as labeled crowdweb_shard_* families on the deployment registry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "geo/point.hpp"
#include "ingest/snapshot.hpp"
#include "ingest/worker.hpp"
#include "patterns/mobility.hpp"
#include "util/status.hpp"

namespace crowdweb::shard {

/// Static identity of one shard in the deployment layout.
struct ShardSpec {
  std::size_t id = 0;
  std::string name;  ///< region name, or "hash-<id>" in hash mode
  /// Region mode: events whose position falls in this box route here.
  /// Unset = the shard owns a hash slice of the user space.
  std::optional<geo::BoundingBox> region;
};

/// A started shard runs its own IngestWorker (queue -> validate ->
/// delta merge -> epoch publish) over its slice of the corpus, with an
/// optional durable store directory underneath. A shard that failed to
/// start — or was deliberately left down — stays constructed: the
/// router keeps routing around it and serves degraded reads.
class Shard {
 public:
  /// `base` seeds the shard's live corpus with its slice of the batch
  /// experiment dataset (sharing the full venue table keeps venue ids
  /// aligned across shards); `mobility` is the matching slice of the
  /// batch phase-2 output. `taxonomy` must outlive the shard.
  Shard(ShardSpec spec, const data::Dataset& base,
        std::vector<patterns::UserMobility> mobility, const data::Taxonomy& taxonomy,
        ingest::IngestPipelineConfig pipeline, ingest::IngestWorkerConfig config);

  /// Runs store recovery (when configured) and publishes the shard's
  /// first epoch. Failure leaves the shard down, not broken: up() stays
  /// false and start_status() reports why.
  [[nodiscard]] Status start();

  /// Stops the worker (idempotent; safe on a shard that never started).
  void stop();

  /// True between a successful start() and stop().
  [[nodiscard]] bool up() const noexcept { return worker_->running(); }

  /// Outcome of the last start() (OK before any attempt).
  [[nodiscard]] const Status& start_status() const noexcept { return start_status_; }

  /// The latest published epoch snapshot, or null while the shard is
  /// down (a stopped shard's last snapshot is deliberately not served —
  /// its store may be recovering elsewhere).
  [[nodiscard]] ingest::SnapshotPtr snapshot() const noexcept {
    return up() ? worker_->hub().current() : nullptr;
  }

  /// Published epoch (0 while down or before the first publication).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return up() ? worker_->hub().epoch() : 0;
  }

  [[nodiscard]] const ShardSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] ingest::IngestWorker& worker() noexcept { return *worker_; }
  [[nodiscard]] const ingest::IngestWorker& worker() const noexcept { return *worker_; }

 private:
  ShardSpec spec_;
  std::unique_ptr<ingest::IngestWorker> worker_;
  Status start_status_;
};

}  // namespace crowdweb::shard

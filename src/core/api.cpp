#include "core/api.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/handlers.hpp"
#include "crowd/communities.hpp"
#include "data/csv.hpp"
#include "ingest/queue.hpp"
#include "ingest/snapshot.hpp"
#include "mining/registry.hpp"
#include "predict/predictor.hpp"
#include "transport/csv_source.hpp"
#include "transport/sse.hpp"
#include "json/json.hpp"
#include "telemetry/exposition.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"
#include "viz/layout.hpp"
#include "viz/timeline.hpp"

namespace crowdweb::core {

namespace {

using handlers::bad_user_id;
using handlers::CrowdView;
using handlers::int_param;
using http::PathParams;
using http::Request;
using http::Response;

json::Value pattern_json(const patterns::MobilityPattern& pattern, const Platform& platform) {
  return handlers::pattern_json(pattern, platform.config().sequences.mode,
                                platform.taxonomy(), platform.experiment_dataset());
}

Response status_handler(const Platform& platform, const ApiOptions& options) {
  const data::DatasetStats full = platform.full_dataset().stats();
  const data::DatasetStats experiment = platform.experiment_dataset().stats();

  // The mining block: active miner + the serving mode, plus the resident
  // pattern-set footprint of the epoch this process is serving (the live
  // worker's published epoch when one is attached, the batch build
  // otherwise). "closed" means compact tables + placement indexes are
  // what the crowd layer reads.
  const mining::IMiningAlgorithm* miner =
      mining::find_miner(platform.config().mining.algorithm);
  const bool closed_mode = miner != nullptr && miner->closed_output() &&
                           !platform.config().mining.expand_closed;
  patterns::MobilityStats set_stats;
  bool have_stats = false;
  if (options.ingest != nullptr) {
    if (const ingest::SnapshotPtr snapshot = options.ingest->hub().current()) {
      set_stats = snapshot->mobility.stats();
      have_stats = true;
    }
  }
  if (!have_stats) {
    for (const patterns::UserMobility& entry : platform.mobility()) set_stats.add(entry);
  }
  json::Value mining_block =
      json::object({{"algorithm", platform.config().mining.algorithm},
                    {"min_support", platform.config().mining.min_support},
                    {"expand_closed", platform.config().mining.expand_closed},
                    {"max_patterns",
                     static_cast<std::int64_t>(platform.config().mining.max_patterns)},
                    {"mode", closed_mode ? "closed" : "expanded"},
                    {"pattern_set",
                     json::object({{"entries", static_cast<std::int64_t>(set_stats.entries)},
                                   {"compact_entries",
                                    static_cast<std::int64_t>(set_stats.compact_entries)},
                                   {"patterns", static_cast<std::int64_t>(set_stats.patterns)},
                                   {"placement_candidates",
                                    static_cast<std::int64_t>(set_stats.placement_candidates)},
                                   {"bytes", static_cast<std::int64_t>(set_stats.bytes)}})}});

  json::Value payload = json::object(
      {{"full",
        json::object({{"checkins", static_cast<std::int64_t>(full.checkin_count)},
                      {"users", static_cast<std::int64_t>(full.user_count)},
                      {"venues", static_cast<std::int64_t>(full.venue_count)},
                      {"mean_records_per_user", full.mean_records_per_user},
                      {"median_records_per_user", full.median_records_per_user}})},
       {"experiment",
        json::object({{"checkins", static_cast<std::int64_t>(experiment.checkin_count)},
                      {"users", static_cast<std::int64_t>(experiment.user_count)}})},
       {"windows", platform.crowd_model().window_count()},
       {"grid", json::object({{"rows", static_cast<std::int64_t>(platform.grid().rows())},
                              {"cols", static_cast<std::int64_t>(platform.grid().cols())},
                              {"cell_meters", platform.grid().cell_size_meters()}})},
       {"placements", static_cast<std::int64_t>(platform.crowd_model().total_placements())},
       {"timings_ms", json::object({{"acquisition", platform.timings().acquisition_ms},
                                    {"mining", platform.timings().mining_ms},
                                    {"crowd", platform.timings().crowd_ms}})},
       {"mining", std::move(mining_block)}});
  if (options.server_stats != nullptr && *options.server_stats) {
    const http::ServerStats stats = (*options.server_stats)();
    payload.set(
        "server",
        json::object(
            {{"requests", static_cast<std::int64_t>(stats.requests)},
             {"bad_requests", static_cast<std::int64_t>(stats.bad_requests)},
             {"connections", static_cast<std::int64_t>(stats.connections)},
             {"responses", json::object({{"2xx", static_cast<std::int64_t>(stats.responses_2xx)},
                                         {"4xx", static_cast<std::int64_t>(stats.responses_4xx)},
                                         {"5xx", static_cast<std::int64_t>(stats.responses_5xx)}})},
             {"bytes_written", static_cast<std::int64_t>(stats.bytes_written)}}));
  }
  if (options.cache != nullptr || options.http_workers != 0) {
    json::Value http_block =
        json::object({{"workers", static_cast<std::int64_t>(options.http_workers)}});
    if (options.cache != nullptr) {
      const http::ResponseCacheStats cache = options.cache->stats();
      http_block.set(
          "cache",
          json::object({{"epoch", static_cast<std::int64_t>(cache.epoch)},
                        {"hits", static_cast<std::int64_t>(cache.hits)},
                        {"misses", static_cast<std::int64_t>(cache.misses)},
                        {"evictions", static_cast<std::int64_t>(cache.evictions)},
                        {"not_modified", static_cast<std::int64_t>(cache.not_modified)},
                        {"entries", static_cast<std::int64_t>(cache.entries)},
                        {"bytes", static_cast<std::int64_t>(cache.bytes)},
                        {"byte_budget", static_cast<std::int64_t>(cache.byte_budget)}}));
    }
    payload.set("http", std::move(http_block));
  }
  if (options.ingest != nullptr) {
    const ingest::IngestStats stats = options.ingest->stats();
    payload.set("ingest",
                json::object({{"epoch", static_cast<std::int64_t>(stats.current_epoch)},
                              {"live_checkins", static_cast<std::int64_t>(stats.live_checkins)},
                              {"queue_depth", static_cast<std::int64_t>(stats.queue_depth)}}));
  }
  if (options.metrics != nullptr)
    payload.set("telemetry", telemetry::render_json(*options.metrics));
  return Response::json(200, json::dump(payload));
}

Response users_handler(const Platform& platform) {
  json::Value users = json::Value(json::Array{});
  for (const patterns::UserMobility& mobility : platform.mobility()) {
    // served_pattern_count keeps the reported count equal to expanded
    // mode's even when the entry stores only the closed set.
    users.push_back(json::object(
        {{"id", static_cast<std::int64_t>(mobility.user)},
         {"recorded_days", static_cast<std::int64_t>(mobility.recorded_days)},
         {"patterns", static_cast<std::int64_t>(mobility.served_pattern_count())}}));
  }
  return Response::json(200, json::dump(json::object({{"users", std::move(users)}})));
}

Response user_patterns_handler(const Platform& platform, const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  const patterns::UserMobility* mobility =
      platform.user_mobility(static_cast<data::UserId>(*id));
  if (mobility == nullptr) return Response::not_found_404();
  json::Value list = json::Value(json::Array{});
  if (mobility->closed_only) {
    // The route's wire contract is the full frequent set; compact
    // entries expand lazily per request (the response cache absorbs
    // repeats), so the body is byte-identical to expanded mode's.
    const std::vector<patterns::MobilityPattern> expanded = patterns::expand_user_patterns(
        *mobility, platform.sequences_for(static_cast<data::UserId>(*id)),
        platform.config().mining);
    for (const patterns::MobilityPattern& pattern : expanded)
      list.push_back(pattern_json(pattern, platform));
  } else {
    for (const patterns::MobilityPattern& pattern : mobility->patterns)
      list.push_back(pattern_json(pattern, platform));
  }
  return Response::json(
      200, json::dump(json::object(
               {{"user", static_cast<std::int64_t>(mobility->user)},
                {"recorded_days", static_cast<std::int64_t>(mobility->recorded_days)},
                {"patterns", std::move(list)}})));
}

Response user_graph_handler(const Platform& platform, const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  if (platform.user_mobility(static_cast<data::UserId>(*id)) == nullptr)
    return Response::not_found_404();
  const patterns::PlaceGraph graph = platform.place_graph(static_cast<data::UserId>(*id));
  viz::PlaceGraphRender render;
  render.title = crowdweb::format("User {} - visited places", *id);
  return Response::svg(200, viz::render_place_graph(graph, render));
}

Response user_timeline_handler(const Platform& platform, const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  if (platform.user_mobility(static_cast<data::UserId>(*id)) == nullptr)
    return Response::not_found_404();
  const mining::UserSequences sequences =
      platform.sequences_for(static_cast<data::UserId>(*id));
  viz::TimelineOptions options;
  options.title = crowdweb::format("User {} - visit timeline", *id);
  return Response::svg(
      200, viz::render_timeline(sequences, platform.taxonomy(),
                                platform.experiment_dataset(),
                                platform.config().sequences.mode, options));
}

Response communities_handler(const Platform& platform) {
  const crowd::UserGraph graph =
      crowd::build_co_occurrence_graph(platform.crowd_model());
  const auto communities = crowd::label_propagation(graph);
  json::Value list = json::Value(json::Array{});
  for (const crowd::Community& community : communities) {
    json::Value members = json::Value(json::Array{});
    for (const data::UserId user : community.members)
      members.push_back(static_cast<std::int64_t>(user));
    list.push_back(json::object({{"size", static_cast<std::int64_t>(community.members.size())},
                                 {"members", std::move(members)}}));
  }
  return Response::json(
      200, json::dump(json::object(
               {{"graph", json::object({{"users", static_cast<std::int64_t>(graph.users.size())},
                                        {"edges", static_cast<std::int64_t>(graph.edges.size())}})},
                {"communities", std::move(list)}})));
}

/// Next-place prediction for a user: trains the pattern predictor on
/// their history and ranks their likely next place at the given time.
/// Training is per-request (a user's history is tiny), keeping the
/// platform immutable.
Response predict_handler(const Platform& platform, const Request& request,
                         const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  if (platform.user_mobility(static_cast<data::UserId>(*id)) == nullptr)
    return Response::not_found_404();
  int minute = 9 * 60;
  if (const auto minute_param = request.query_param("minute")) {
    const auto parsed = parse_int(*minute_param);
    if (!parsed || *parsed < 0 || *parsed >= 24 * 60)
      return Response::bad_request_400("minute must be in [0, 1440)");
    minute = static_cast<int>(*parsed);
  }

  const mining::UserSequences history =
      platform.sequences_for(static_cast<data::UserId>(*id));
  const auto predictor = predict::make_ensemble_predictor();
  predictor->train(history);
  predict::Query query;
  query.minute = minute;
  // "Today" context: visits of the user's last recorded day before `minute`.
  std::vector<mining::Item> today;
  if (!history.empty()) {
    const auto last_day = history.day(history.day_count() - 1);
    const auto last_minutes = history.minutes_of(history.day_count() - 1);
    for (std::size_t i = 0; i < last_day.size(); ++i) {
      if (last_minutes[i] < minute) today.push_back(last_day[i]);
    }
  }
  query.today = today;
  const auto ranked = predictor->predict(query);

  json::Value predictions = json::Value(json::Array{});
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    predictions.push_back(json::object(
        {{"label", mining::label_name(ranked[i].label, platform.config().sequences.mode,
                                      platform.taxonomy(), platform.experiment_dataset())},
         {"score", ranked[i].score}}));
  }
  return Response::json(
      200, json::dump(json::object({{"user", *id},
                                    {"minute", minute},
                                    {"predictor", predictor->name()},
                                    {"predictions", std::move(predictions)}})));
}

/// The booth feature: a visitor uploads their check-in history as CSV
/// (category,lat,lon,timestamp) and gets their mined, time-annotated
/// mobility patterns back. Purely functional — the platform is not
/// mutated.
Response analyze_handler(const Platform& platform, const Request& request) {
  double min_support = 0.25;
  if (const auto support = request.query_param("support")) {
    const auto parsed = parse_double(*support);
    if (!parsed || *parsed <= 0.0 || *parsed > 1.0)
      return Response::bad_request_400("support must be in (0, 1]");
    min_support = *parsed;
  }
  std::string algorithm = platform.config().mining.algorithm;
  if (const auto requested = request.query_param("algorithm")) {
    if (const auto miner = mining::resolve_miner(*requested); !miner)
      return Response::bad_request_400(miner.status().message());
    algorithm = std::string(*requested);
  }

  const auto rows = data::parse_csv(request.body);
  if (!rows) return Response::bad_request_400(rows.status().to_string());
  if (rows->empty() || (*rows)[0] != data::CsvRow{"category", "lat", "lon", "timestamp"})
    return Response::bad_request_400(
        "expected header: category,lat,lon,timestamp");

  // Parse the visitor's records into (root label, timestamp) events.
  struct Event {
    mining::Item label;
    std::int64_t timestamp;
  };
  std::vector<Event> events;
  const data::Taxonomy& taxonomy = platform.taxonomy();
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const data::CsvRow& row = (*rows)[i];
    if (row.size() != 4)
      return Response::bad_request_400(
          crowdweb::format("row {} has {} fields, expected 4", i + 1, row.size()));
    const auto category = taxonomy.find(row[0]);
    const auto lat = parse_double(row[1]);
    const auto lon = parse_double(row[2]);
    const auto timestamp = parse_timestamp(row[3]);
    if (!category)
      return Response::bad_request_400(
          crowdweb::format("row {}: unknown category '{}'", i + 1, row[0]));
    if (!lat || !lon || !geo::is_valid({*lat, *lon}))
      return Response::bad_request_400(crowdweb::format("row {}: bad position", i + 1));
    if (!timestamp)
      return Response::bad_request_400(
          crowdweb::format("row {}: bad timestamp '{}'", i + 1, row[3]));
    events.push_back({taxonomy.root_of(*category), *timestamp});
  }
  if (events.empty()) return Response::bad_request_400("no check-in rows");
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.timestamp < b.timestamp; });

  // Build per-day sequences (same abstraction pipeline as phase 2).
  mining::UserSequences sequences;
  std::vector<mining::Item> day_items;
  std::vector<int> day_minutes;
  std::int64_t current_day = 0;
  bool have_day = false;
  const auto flush_day = [&] {
    if (have_day) sequences.append_day(day_items, day_minutes);
    day_items.clear();
    day_minutes.clear();
  };
  for (const Event& event : events) {
    const std::int64_t day = day_index(event.timestamp);
    if (!have_day || day != current_day) {
      flush_day();
      current_day = day;
      have_day = true;
    }
    if (!day_items.empty() && day_items.back() == event.label)
      continue;  // collapse repeats
    day_items.push_back(event.label);
    const CivilTime civil = to_civil(event.timestamp);
    day_minutes.push_back(civil.hour * 60 + civil.minute);
  }
  flush_day();

  mining::MiningOptions mining_options = platform.config().mining;
  mining_options.min_support = min_support;
  mining_options.algorithm = algorithm;
  const mining::MiningResult mined = mining::mine_with(sequences.columns(), mining_options);

  json::Value list = json::Value(json::Array{});
  for (const mining::Pattern& pattern : mined.patterns) {
    const patterns::MobilityPattern annotated =
        patterns::annotate_pattern(pattern, sequences);
    list.push_back(pattern_json(annotated, platform));
  }
  return Response::json(
      200, json::dump(json::object(
               {{"records", static_cast<std::int64_t>(events.size())},
                {"recorded_days", static_cast<std::int64_t>(sequences.day_count())},
                {"min_support", min_support},
                {"algorithm", algorithm},
                {"truncated", mined.stats.truncated},
                {"closed", mined.closed},
                {"patterns", std::move(list)}})));
}

/// Runs `fn` against the crowd state this route should serve: the batch
/// platform's phase-3 output in static mode, or — when an IngestWorker
/// is attached — the latest published epoch. The snapshot shared_ptr
/// lives on this frame for the whole call, pinning the epoch until the
/// response is built even if the worker publishes a newer one meanwhile.
template <typename Fn>
Response with_crowd_view(const Platform& platform, ingest::IngestWorker* worker,
                         Fn&& fn) {
  if (worker == nullptr) {
    return fn(CrowdView{platform.experiment_dataset(), platform.grid(),
                        platform.crowd_model(), platform.config().sequences.mode,
                        platform.taxonomy(), /*degraded=*/false,
                        /*missing_shards=*/{}});
  }
  const ingest::SnapshotPtr snapshot = worker->hub().current();
  if (snapshot == nullptr)
    return Response::text(503, "no epoch published yet; retry shortly\n");
  return fn(CrowdView{snapshot->dataset, snapshot->grid, snapshot->crowd,
                      platform.config().sequences.mode, worker->taxonomy(),
                      /*degraded=*/false, /*missing_shards=*/{}});
}

}  // namespace

http::Router make_api_router(const Platform& platform, ApiOptions options) {
  http::Router router;
  const Platform* p = &platform;
  ingest::IngestWorker* w = options.ingest;

  router.get_cached("/", [](const Request&, const PathParams&) {
    return Response::html(200, std::string(handlers::viewer_html()));
  });
  router.get("/api/status", [p, options](const Request&, const PathParams&) {
    return status_handler(*p, options);
  });
  router.get_cached("/api/users",
             [p](const Request&, const PathParams&) { return users_handler(*p); });
  router.get_cached("/api/user/:id/patterns", [p](const Request&, const PathParams& params) {
    return user_patterns_handler(*p, params);
  });
  router.get_cached("/api/user/:id/graph.svg", [p](const Request&, const PathParams& params) {
    return user_graph_handler(*p, params);
  });
  router.get_cached("/api/user/:id/timeline.svg", [p](const Request&, const PathParams& params) {
    return user_timeline_handler(*p, params);
  });
  router.get_cached("/api/crowd/:window", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::crowd_handler(view, params);
    });
  });
  router.get_cached("/api/crowd/:window/map.svg", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::crowd_map_handler(view, params);
    });
  });
  router.get_cached("/api/crowd/:window/geojson", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::crowd_geojson_handler(view, params);
    });
  });
  router.get_cached("/api/groups/:window", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::groups_handler(view, params);
    });
  });
  router.get_cached("/api/flow/:from/:to", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::flow_handler(view, params, /*as_map=*/false);
    });
  });
  router.get_cached("/api/flow/:from/:to/map.svg", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::flow_handler(view, params, /*as_map=*/true);
    });
  });
  router.get_cached("/api/animation.svg", [p, w](const Request& request, const PathParams&) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::animation_handler(view, request);
    });
  });
  router.get_cached("/api/communities", [p](const Request&, const PathParams&) {
    return communities_handler(*p);
  });
  router.post("/api/analyze", [p](const Request& request, const PathParams&) {
    return analyze_handler(*p, request);
  });
  router.get_cached("/api/rhythm.svg", [p, w](const Request&, const PathParams&) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return handlers::rhythm_handler(view);
    });
  });
  router.get_cached("/api/predict/:id", [p](const Request& request, const PathParams& params) {
    return predict_handler(*p, request, params);
  });
  if (w != nullptr) {
    if (options.pipeline != nullptr) {
      // Spool-backed route: the shared pipeline absorbs rejected
      // suffixes onto disk, and the route's accounting lands on the
      // crowdweb_transport_* families alongside the binary listeners.
      transport::HttpCsvSource::Config source_config;
      source_config.taxonomy = &w->taxonomy();
      source_config.allocate_guest = [w] { return w->allocate_guest_id(); };
      source_config.stats = [w] { return w->stats(); };
      source_config.rebuild_interval = w->config().rebuild_interval;
      auto source = std::make_shared<transport::HttpCsvSource>(
          *options.pipeline, std::move(source_config));
      (void)source->start();
      router.post("/api/ingest", [source](const Request& request, const PathParams&) {
        return source->handle(request);
      });
    } else {
      router.post("/api/ingest", [w](const Request& request, const PathParams&) {
        return handlers::ingest_handler(*w, request);
      });
    }
    if (options.stream) {
      // The SSE subscribe routes. They only open the stream (the server
      // subscribes the connection when it flushes the response); events
      // arrive once attach_stream_publisher() hooks the snapshot hub.
      router.get("/api/stream/epochs", [w](const Request&, const PathParams&) {
        std::string initial = "retry: 2000\n\n";
        initial += transport::sse_comment("subscribed epochs");
        if (const ingest::SnapshotPtr snapshot = w->hub().current()) {
          initial += transport::sse_event(
              "epoch", transport::EpochStreamPublisher::epoch_event_json(*snapshot));
        }
        return transport::sse_response(std::string(transport::kEpochChannel),
                                       std::move(initial));
      });
      router.get("/api/stream/crowd/:window",
                 [p, w](const Request&, const PathParams& params) {
        return with_crowd_view(*p, w, [&](const CrowdView& view) {
          const auto window = int_param(params, "window");
          if (!window || !handlers::valid_window(view, *window))
            return handlers::bad_window(params, "window", view.crowd.window_count());
          std::string initial = "retry: 2000\n\n";
          initial += transport::sse_comment("subscribed crowd window");
          // Seed the stream with the current state so a consumer needs
          // no separate GET before the next epoch arrives.
          http::Response current = handlers::crowd_handler(view, params);
          if (current.status == 200)
            initial += transport::sse_event("crowd", current.body);
          return transport::sse_response(
              transport::crowd_channel(static_cast<int>(*window)), std::move(initial));
        });
      });
    }
    router.get("/api/ingest/stats", [w](const Request&, const PathParams&) {
      return handlers::ingest_stats_handler(*w);
    });
    router.get("/api/store/stats", [w](const Request&, const PathParams&) {
      return handlers::store_stats_handler(*w);
    });
    router.post("/api/admin/checkpoint", [w](const Request&, const PathParams&) {
      return handlers::checkpoint_handler(*w);
    });
  }
  if (telemetry::Registry* metrics = options.metrics; metrics != nullptr) {
    router.get("/metrics", [metrics](const Request&, const PathParams&) {
      return Response::text(200, telemetry::render_prometheus(*metrics),
                            telemetry::kPrometheusContentType);
    });
  }
  return router;
}

std::unique_ptr<transport::EpochStreamPublisher> attach_stream_publisher(
    http::Server& server, const Platform& platform, ingest::IngestWorker& worker,
    http::ResponseCache* cache) {
  const Platform* p = &platform;
  ingest::IngestWorker* w = &worker;
  transport::EpochStreamOptions options;
  options.cache = cache;
  return std::make_unique<transport::EpochStreamPublisher>(
      server, worker.hub(),
      [p, w](const ingest::PlatformSnapshot& snapshot, int window) {
        // Same render as GET /api/crowd/:window over the same snapshot,
        // so the streamed bytes match what a poller would fetch.
        const CrowdView view{snapshot.dataset, snapshot.grid, snapshot.crowd,
                             p->config().sequences.mode, w->taxonomy(),
                             /*degraded=*/false, /*missing_shards=*/{}};
        PathParams params;
        params.emplace("window", std::to_string(window));
        return handlers::crowd_handler(view, params);
      },
      options);
}

std::unique_ptr<ingest::IngestWorker> make_ingest_worker(const Platform& platform,
                                                         ingest::IngestWorkerConfig config) {
  ingest::IngestPipelineConfig pipeline;
  pipeline.grid_cell_meters = platform.config().grid_cell_meters;
  pipeline.crowd = platform.config().crowd;
  pipeline.sequences = platform.config().sequences;
  pipeline.mining = platform.config().mining;
  pipeline.mining_threads = platform.config().mining_threads;
  // Inherit the platform's registry so one scrape covers the batch build
  // and the live worker, unless the caller picked a registry explicitly.
  if (config.metrics == nullptr) config.metrics = platform.config().metrics;
  // Same for durability: the platform-level store config applies unless
  // the worker config already names a directory.
  if (config.store.dir.empty()) config.store = platform.config().store;
  return std::make_unique<ingest::IngestWorker>(platform.experiment_dataset(),
                                                platform.mobility(), platform.taxonomy(),
                                                pipeline, config);
}

}  // namespace crowdweb::core

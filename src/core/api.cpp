#include "core/api.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "crowd/communities.hpp"
#include "data/csv.hpp"
#include "ingest/queue.hpp"
#include "ingest/snapshot.hpp"
#include "mining/prefixspan.hpp"
#include "predict/predictor.hpp"
#include "json/json.hpp"
#include "telemetry/exposition.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"
#include "viz/animation.hpp"
#include "viz/charts.hpp"
#include "viz/citymap.hpp"
#include "viz/geojson.hpp"
#include "viz/layout.hpp"
#include "viz/timeline.hpp"

namespace crowdweb::core {

namespace {

using http::PathParams;
using http::Request;
using http::Response;

/// Parses an integer path parameter, returning nullopt on junk.
std::optional<std::int64_t> int_param(const PathParams& params, std::string_view name) {
  const auto it = params.find(name);
  if (it == params.end()) return std::nullopt;
  const auto value = parse_int(it->second);
  if (!value) return std::nullopt;
  return *value;
}

/// The raw (unparsed) value of a path parameter, for error messages.
std::string_view raw_param(const PathParams& params, std::string_view name) {
  const auto it = params.find(name);
  return it == params.end() ? std::string_view{} : std::string_view(it->second);
}

/// 400 naming the offending value and the valid window range, so a
/// client sees "bad window index 'xyz' for parameter 'window': expected
/// an integer in [0, 24)" instead of a bare "bad window index".
Response bad_window(const PathParams& params, std::string_view name, int window_count) {
  return Response::bad_request_400(crowdweb::format(
      "bad window index '{}' for parameter '{}': expected an integer in [0, {})",
      raw_param(params, name), name, window_count));
}

/// 400 naming the offending user id value.
Response bad_user_id(const PathParams& params) {
  return Response::bad_request_400(
      crowdweb::format("bad user id '{}': expected a non-negative integer",
                       raw_param(params, "id")));
}

json::Value pattern_json(const patterns::MobilityPattern& pattern, const Platform& platform) {
  json::Value elements = json::Value(json::Array{});
  for (const patterns::TimedElement& element : pattern.elements) {
    const int minute = static_cast<int>(element.mean_minute + 0.5);
    elements.push_back(json::object(
        {{"label", mining::label_name(element.label, platform.config().sequences.mode,
                                      platform.taxonomy(), platform.experiment_dataset())},
         {"mean_minute", element.mean_minute},
         {"stddev_minute", element.stddev_minute},
         {"time", crowdweb::format("{:02}:{:02}", minute / 60, minute % 60)}}));
  }
  return json::object({{"elements", std::move(elements)},
                       {"support", pattern.support},
                       {"support_count", static_cast<std::int64_t>(pattern.support_count)}});
}

/// The state a crowd-facing handler reads: either the batch platform's
/// phase-3 output, or — in live mode — one published epoch, pinned for
/// the duration of the request by the shared_ptr the caller holds.
struct CrowdView {
  const data::Dataset& dataset;
  const geo::SpatialGrid& grid;
  const crowd::CrowdModel& crowd;
  mining::LabelMode mode;
  const data::Taxonomy& taxonomy;
};

Response status_handler(const Platform& platform, const ApiOptions& options) {
  const data::DatasetStats full = platform.full_dataset().stats();
  const data::DatasetStats experiment = platform.experiment_dataset().stats();
  json::Value payload = json::object(
      {{"full",
        json::object({{"checkins", static_cast<std::int64_t>(full.checkin_count)},
                      {"users", static_cast<std::int64_t>(full.user_count)},
                      {"venues", static_cast<std::int64_t>(full.venue_count)},
                      {"mean_records_per_user", full.mean_records_per_user},
                      {"median_records_per_user", full.median_records_per_user}})},
       {"experiment",
        json::object({{"checkins", static_cast<std::int64_t>(experiment.checkin_count)},
                      {"users", static_cast<std::int64_t>(experiment.user_count)}})},
       {"windows", platform.crowd_model().window_count()},
       {"grid", json::object({{"rows", static_cast<std::int64_t>(platform.grid().rows())},
                              {"cols", static_cast<std::int64_t>(platform.grid().cols())},
                              {"cell_meters", platform.grid().cell_size_meters()}})},
       {"placements", static_cast<std::int64_t>(platform.crowd_model().total_placements())},
       {"timings_ms", json::object({{"acquisition", platform.timings().acquisition_ms},
                                    {"mining", platform.timings().mining_ms},
                                    {"crowd", platform.timings().crowd_ms}})}});
  if (options.server_stats != nullptr && *options.server_stats) {
    const http::ServerStats stats = (*options.server_stats)();
    payload.set(
        "server",
        json::object(
            {{"requests", static_cast<std::int64_t>(stats.requests)},
             {"bad_requests", static_cast<std::int64_t>(stats.bad_requests)},
             {"connections", static_cast<std::int64_t>(stats.connections)},
             {"responses", json::object({{"2xx", static_cast<std::int64_t>(stats.responses_2xx)},
                                         {"4xx", static_cast<std::int64_t>(stats.responses_4xx)},
                                         {"5xx", static_cast<std::int64_t>(stats.responses_5xx)}})},
             {"bytes_written", static_cast<std::int64_t>(stats.bytes_written)}}));
  }
  if (options.cache != nullptr || options.http_workers != 0) {
    json::Value http_block =
        json::object({{"workers", static_cast<std::int64_t>(options.http_workers)}});
    if (options.cache != nullptr) {
      const http::ResponseCacheStats cache = options.cache->stats();
      http_block.set(
          "cache",
          json::object({{"epoch", static_cast<std::int64_t>(cache.epoch)},
                        {"hits", static_cast<std::int64_t>(cache.hits)},
                        {"misses", static_cast<std::int64_t>(cache.misses)},
                        {"evictions", static_cast<std::int64_t>(cache.evictions)},
                        {"not_modified", static_cast<std::int64_t>(cache.not_modified)},
                        {"entries", static_cast<std::int64_t>(cache.entries)},
                        {"bytes", static_cast<std::int64_t>(cache.bytes)},
                        {"byte_budget", static_cast<std::int64_t>(cache.byte_budget)}}));
    }
    payload.set("http", std::move(http_block));
  }
  if (options.ingest != nullptr) {
    const ingest::IngestStats stats = options.ingest->stats();
    payload.set("ingest",
                json::object({{"epoch", static_cast<std::int64_t>(stats.current_epoch)},
                              {"live_checkins", static_cast<std::int64_t>(stats.live_checkins)},
                              {"queue_depth", static_cast<std::int64_t>(stats.queue_depth)}}));
  }
  if (options.metrics != nullptr)
    payload.set("telemetry", telemetry::render_json(*options.metrics));
  return Response::json(200, json::dump(payload));
}

Response users_handler(const Platform& platform) {
  json::Value users = json::Value(json::Array{});
  for (const patterns::UserMobility& mobility : platform.mobility()) {
    users.push_back(json::object(
        {{"id", static_cast<std::int64_t>(mobility.user)},
         {"recorded_days", static_cast<std::int64_t>(mobility.recorded_days)},
         {"patterns", static_cast<std::int64_t>(mobility.patterns.size())}}));
  }
  return Response::json(200, json::dump(json::object({{"users", std::move(users)}})));
}

Response user_patterns_handler(const Platform& platform, const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  const patterns::UserMobility* mobility =
      platform.user_mobility(static_cast<data::UserId>(*id));
  if (mobility == nullptr) return Response::not_found_404();
  json::Value list = json::Value(json::Array{});
  for (const patterns::MobilityPattern& pattern : mobility->patterns)
    list.push_back(pattern_json(pattern, platform));
  return Response::json(
      200, json::dump(json::object(
               {{"user", static_cast<std::int64_t>(mobility->user)},
                {"recorded_days", static_cast<std::int64_t>(mobility->recorded_days)},
                {"patterns", std::move(list)}})));
}

Response user_graph_handler(const Platform& platform, const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  if (platform.user_mobility(static_cast<data::UserId>(*id)) == nullptr)
    return Response::not_found_404();
  const patterns::PlaceGraph graph = platform.place_graph(static_cast<data::UserId>(*id));
  viz::PlaceGraphRender render;
  render.title = crowdweb::format("User {} - visited places", *id);
  return Response::svg(200, viz::render_place_graph(graph, render));
}

Response user_timeline_handler(const Platform& platform, const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  if (platform.user_mobility(static_cast<data::UserId>(*id)) == nullptr)
    return Response::not_found_404();
  const mining::UserSequences sequences =
      platform.sequences_for(static_cast<data::UserId>(*id));
  viz::TimelineOptions options;
  options.title = crowdweb::format("User {} - visit timeline", *id);
  return Response::svg(
      200, viz::render_timeline(sequences, platform.taxonomy(),
                                platform.experiment_dataset(),
                                platform.config().sequences.mode, options));
}

bool valid_window(const CrowdView& view, std::int64_t window) {
  return window >= 0 && window < view.crowd.window_count();
}

Response crowd_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  const crowd::CrowdDistribution distribution =
      view.crowd.distribution(static_cast<int>(*window));
  json::Value cells = json::Value(json::Array{});
  for (const auto& [cell, count] : distribution.top_cells(50)) {
    const geo::LatLon center = view.grid.cell_center(cell);
    cells.push_back(json::object({{"cell", static_cast<std::int64_t>(cell)},
                                  {"count", static_cast<std::int64_t>(count)},
                                  {"lat", center.lat},
                                  {"lon", center.lon}}));
  }
  return Response::json(
      200,
      json::dump(json::object(
          {{"window", static_cast<std::int64_t>(*window)},
           {"label", view.crowd.window_label(static_cast<int>(*window))},
           {"total", static_cast<std::int64_t>(distribution.total())},
           {"occupied_cells", static_cast<std::int64_t>(distribution.occupied_cells())},
           {"top_cells", std::move(cells)}})));
}

Response crowd_map_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  const crowd::CrowdDistribution distribution =
      view.crowd.distribution(static_cast<int>(*window));
  viz::CityMapOptions options;
  options.title = crowdweb::format(
      "Crowd {} ", view.crowd.window_label(static_cast<int>(*window)));
  return Response::svg(200, viz::render_city_map(distribution, view.grid,
                                                 view.dataset, options));
}

Response crowd_geojson_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  const crowd::CrowdDistribution distribution =
      view.crowd.distribution(static_cast<int>(*window));
  return Response::json(200,
                        json::dump(viz::distribution_geojson(distribution, view.grid)));
}

Response groups_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  json::Value list = json::Value(json::Array{});
  for (const crowd::CrowdGroup& group :
       view.crowd.groups(static_cast<int>(*window))) {
    json::Value members = json::Value(json::Array{});
    for (const data::UserId user : group.users)
      members.push_back(static_cast<std::int64_t>(user));
    const geo::LatLon center = view.grid.cell_center(group.cell);
    list.push_back(json::object(
        {{"cell", static_cast<std::int64_t>(group.cell)},
         {"label", mining::label_name(group.label, view.mode,
                                      view.taxonomy, view.dataset)},
         {"lat", center.lat},
         {"lon", center.lon},
         {"users", std::move(members)}}));
  }
  return Response::json(200, json::dump(json::object({{"groups", std::move(list)}})));
}

Response flow_handler(const CrowdView& view, const PathParams& params, bool as_map) {
  const auto from = int_param(params, "from");
  const auto to = int_param(params, "to");
  if (!from || !valid_window(view, *from))
    return bad_window(params, "from", view.crowd.window_count());
  if (!to || !valid_window(view, *to))
    return bad_window(params, "to", view.crowd.window_count());
  const crowd::FlowMatrix flow =
      view.crowd.flow(static_cast<int>(*from), static_cast<int>(*to));
  if (as_map) {
    const crowd::CrowdDistribution destination =
        view.crowd.distribution(static_cast<int>(*to));
    viz::CityMapOptions options;
    options.title = crowdweb::format(
        "Crowd flow {} to {}", view.crowd.window_label(static_cast<int>(*from)),
        view.crowd.window_label(static_cast<int>(*to)));
    return Response::svg(200, viz::render_flow_map(flow, destination, view.grid,
                                                   view.dataset, options));
  }
  json::Value moves = json::Value(json::Array{});
  for (const auto& [pair, count] : flow.top_flows(50)) {
    const geo::LatLon a = view.grid.cell_center(pair.first);
    const geo::LatLon b = view.grid.cell_center(pair.second);
    moves.push_back(json::object({{"from_cell", static_cast<std::int64_t>(pair.first)},
                                  {"to_cell", static_cast<std::int64_t>(pair.second)},
                                  {"count", static_cast<std::int64_t>(count)},
                                  {"from", json::array({a.lon, a.lat})},
                                  {"to", json::array({b.lon, b.lat})}}));
  }
  return Response::json(
      200, json::dump(json::object({{"from_window", static_cast<std::int64_t>(*from)},
                                    {"to_window", static_cast<std::int64_t>(*to)},
                                    {"total", static_cast<std::int64_t>(flow.total())},
                                    {"top_flows", std::move(moves)}})));
}

Response animation_handler(const CrowdView& view, const Request& request) {
  viz::AnimationOptions options;
  options.title = "Crowd movement across the day";
  if (const auto seconds = request.query_param("seconds")) {
    const auto parsed = parse_double(*seconds);
    if (!parsed || *parsed <= 0.0 || *parsed > 60.0)
      return Response::bad_request_400("seconds must be in (0, 60]");
    options.seconds_per_window = *parsed;
  }
  return Response::svg(200, viz::render_crowd_animation(view.crowd, options));
}

Response communities_handler(const Platform& platform) {
  const crowd::UserGraph graph =
      crowd::build_co_occurrence_graph(platform.crowd_model());
  const auto communities = crowd::label_propagation(graph);
  json::Value list = json::Value(json::Array{});
  for (const crowd::Community& community : communities) {
    json::Value members = json::Value(json::Array{});
    for (const data::UserId user : community.members)
      members.push_back(static_cast<std::int64_t>(user));
    list.push_back(json::object({{"size", static_cast<std::int64_t>(community.members.size())},
                                 {"members", std::move(members)}}));
  }
  return Response::json(
      200, json::dump(json::object(
               {{"graph", json::object({{"users", static_cast<std::int64_t>(graph.users.size())},
                                        {"edges", static_cast<std::int64_t>(graph.edges.size())}})},
                {"communities", std::move(list)}})));
}

/// Next-place prediction for a user: trains the pattern predictor on
/// their history and ranks their likely next place at the given time.
/// Training is per-request (a user's history is tiny), keeping the
/// platform immutable.
Response predict_handler(const Platform& platform, const Request& request,
                         const PathParams& params) {
  const auto id = int_param(params, "id");
  if (!id || *id < 0) return bad_user_id(params);
  if (platform.user_mobility(static_cast<data::UserId>(*id)) == nullptr)
    return Response::not_found_404();
  int minute = 9 * 60;
  if (const auto minute_param = request.query_param("minute")) {
    const auto parsed = parse_int(*minute_param);
    if (!parsed || *parsed < 0 || *parsed >= 24 * 60)
      return Response::bad_request_400("minute must be in [0, 1440)");
    minute = static_cast<int>(*parsed);
  }

  const mining::UserSequences history =
      platform.sequences_for(static_cast<data::UserId>(*id));
  const auto predictor = predict::make_ensemble_predictor();
  predictor->train(history);
  predict::Query query;
  query.minute = minute;
  // "Today" context: visits of the user's last recorded day before `minute`.
  std::vector<mining::Item> today;
  if (!history.days.empty()) {
    const auto& last_day = history.days.back();
    const auto& last_minutes = history.minutes.back();
    for (std::size_t i = 0; i < last_day.size(); ++i) {
      if (last_minutes[i] < minute) today.push_back(last_day[i]);
    }
  }
  query.today = today;
  const auto ranked = predictor->predict(query);

  json::Value predictions = json::Value(json::Array{});
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    predictions.push_back(json::object(
        {{"label", mining::label_name(ranked[i].label, platform.config().sequences.mode,
                                      platform.taxonomy(), platform.experiment_dataset())},
         {"score", ranked[i].score}}));
  }
  return Response::json(
      200, json::dump(json::object({{"user", *id},
                                    {"minute", minute},
                                    {"predictor", predictor->name()},
                                    {"predictions", std::move(predictions)}})));
}

Response rhythm_handler(const CrowdView& view) {
  const crowd::CrowdModel::Rhythm rhythm = view.crowd.rhythm();
  viz::HeatmapSpec spec;
  spec.title = "Crowd rhythm: place type by time window";
  spec.size.width = 900;
  for (const mining::Item label : rhythm.labels)
    spec.row_labels.push_back(
        mining::label_name(label, view.mode, view.taxonomy, view.dataset));
  for (int w = 0; w < view.crowd.window_count(); ++w)
    spec.col_labels.push_back(
        crowdweb::format("{:02}", w * view.crowd.options().window_minutes / 60));
  for (const auto& row : rhythm.counts) {
    std::vector<double> values;
    for (const std::size_t count : row) values.push_back(static_cast<double>(count));
    spec.values.push_back(std::move(values));
  }
  return Response::svg(200, viz::render_heatmap(spec));
}

/// The booth feature: a visitor uploads their check-in history as CSV
/// (category,lat,lon,timestamp) and gets their mined, time-annotated
/// mobility patterns back. Purely functional — the platform is not
/// mutated.
Response analyze_handler(const Platform& platform, const Request& request) {
  double min_support = 0.25;
  if (const auto support = request.query_param("support")) {
    const auto parsed = parse_double(*support);
    if (!parsed || *parsed <= 0.0 || *parsed > 1.0)
      return Response::bad_request_400("support must be in (0, 1]");
    min_support = *parsed;
  }

  const auto rows = data::parse_csv(request.body);
  if (!rows) return Response::bad_request_400(rows.status().to_string());
  if (rows->empty() || (*rows)[0] != data::CsvRow{"category", "lat", "lon", "timestamp"})
    return Response::bad_request_400(
        "expected header: category,lat,lon,timestamp");

  // Parse the visitor's records into (root label, timestamp) events.
  struct Event {
    mining::Item label;
    std::int64_t timestamp;
  };
  std::vector<Event> events;
  const data::Taxonomy& taxonomy = platform.taxonomy();
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const data::CsvRow& row = (*rows)[i];
    if (row.size() != 4)
      return Response::bad_request_400(
          crowdweb::format("row {} has {} fields, expected 4", i + 1, row.size()));
    const auto category = taxonomy.find(row[0]);
    const auto lat = parse_double(row[1]);
    const auto lon = parse_double(row[2]);
    const auto timestamp = parse_timestamp(row[3]);
    if (!category)
      return Response::bad_request_400(
          crowdweb::format("row {}: unknown category '{}'", i + 1, row[0]));
    if (!lat || !lon || !geo::is_valid({*lat, *lon}))
      return Response::bad_request_400(crowdweb::format("row {}: bad position", i + 1));
    if (!timestamp)
      return Response::bad_request_400(
          crowdweb::format("row {}: bad timestamp '{}'", i + 1, row[3]));
    events.push_back({taxonomy.root_of(*category), *timestamp});
  }
  if (events.empty()) return Response::bad_request_400("no check-in rows");
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.timestamp < b.timestamp; });

  // Build per-day sequences (same abstraction pipeline as phase 2).
  mining::UserSequences sequences;
  std::int64_t current_day = 0;
  bool have_day = false;
  for (const Event& event : events) {
    const std::int64_t day = day_index(event.timestamp);
    if (!have_day || day != current_day) {
      sequences.days.emplace_back();
      sequences.minutes.emplace_back();
      current_day = day;
      have_day = true;
    }
    if (!sequences.days.back().empty() && sequences.days.back().back() == event.label)
      continue;  // collapse repeats
    sequences.days.back().push_back(event.label);
    const CivilTime civil = to_civil(event.timestamp);
    sequences.minutes.back().push_back(civil.hour * 60 + civil.minute);
  }

  mining::MiningOptions mining_options;
  mining_options.min_support = min_support;
  const auto mined = mining::prefixspan(sequences.days, mining_options);

  json::Value list = json::Value(json::Array{});
  for (const mining::Pattern& pattern : mined) {
    const patterns::MobilityPattern annotated =
        patterns::annotate_pattern(pattern, sequences);
    list.push_back(pattern_json(annotated, platform));
  }
  return Response::json(
      200, json::dump(json::object(
               {{"records", static_cast<std::int64_t>(events.size())},
                {"recorded_days", static_cast<std::int64_t>(sequences.days.size())},
                {"min_support", min_support},
                {"patterns", std::move(list)}})));
}

/// Live ingestion: parses CSV check-ins and submits them to the worker's
/// queue. Two headers are accepted — `user,category,lat,lon,timestamp`
/// attributes rows to corpus users, `category,lat,lon,timestamp` (the
/// /api/analyze schema) books the whole upload under a fresh guest id.
/// Malformed rows are skipped and counted as invalid rather than failing
/// the batch; a full queue answers 429 so clients know to retry.
Response ingest_handler(ingest::IngestWorker& worker, const Request& request) {
  const auto rows = data::parse_csv(request.body);
  if (!rows) return Response::bad_request_400(rows.status().to_string());
  const data::CsvRow with_user{"user", "category", "lat", "lon", "timestamp"};
  const data::CsvRow anonymous{"category", "lat", "lon", "timestamp"};
  if (rows->empty() || ((*rows)[0] != with_user && (*rows)[0] != anonymous))
    return Response::bad_request_400("expected header: [user,]category,lat,lon,timestamp");
  const bool has_user = (*rows)[0] == with_user;
  const data::Taxonomy& taxonomy = worker.taxonomy();
  const data::UserId guest = has_user ? 0 : worker.allocate_guest_id();

  std::vector<ingest::IngestEvent> events;
  events.reserve(rows->size() - 1);
  std::uint64_t invalid = 0;
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const data::CsvRow& row = (*rows)[i];
    if (row.size() != (has_user ? 5u : 4u)) {
      ++invalid;
      continue;
    }
    std::size_t field = 0;
    data::UserId user = guest;
    if (has_user) {
      const auto parsed_user = parse_int(row[field++]);
      if (!parsed_user || *parsed_user < 0) {
        ++invalid;
        continue;
      }
      user = static_cast<data::UserId>(*parsed_user);
    }
    const auto category = taxonomy.find(row[field]);
    const auto lat = parse_double(row[field + 1]);
    const auto lon = parse_double(row[field + 2]);
    auto timestamp = parse_timestamp(row[field + 3]);
    if (!timestamp) timestamp = parse_int(row[field + 3]);  // raw epoch seconds
    if (!category || !lat || !lon || !geo::is_valid({*lat, *lon}) || !timestamp ||
        *timestamp <= 0) {
      ++invalid;
      continue;
    }
    events.push_back({user, *category, {*lat, *lon}, *timestamp});
  }
  if (invalid > 0) worker.note_invalid(invalid);

  const ingest::SubmitResult result = worker.submit(events);
  const ingest::IngestStats stats = worker.stats();
  const int status = (!events.empty() && result.accepted == 0) ? 429 : 200;
  Response response = Response::json(
      status, json::dump(json::object(
                  {{"received", static_cast<std::int64_t>(rows->size() - 1)},
                   {"accepted", static_cast<std::int64_t>(result.accepted)},
                   {"rejected", static_cast<std::int64_t>(result.rejected)},
                   {"invalid", static_cast<std::int64_t>(invalid)},
                   {"queue_depth", static_cast<std::int64_t>(stats.queue_depth)},
                   {"epoch", static_cast<std::int64_t>(stats.current_epoch)}})));
  if (status == 429) {
    // The queue drains at least once per rebuild interval, so that is
    // the honest earliest retry time (rounded up to whole seconds,
    // floor 1 — Retry-After speaks seconds).
    const auto interval = worker.config().rebuild_interval;
    const std::int64_t seconds = std::max<std::int64_t>(
        1, (interval.count() + 999) / 1000);
    response.headers["Retry-After"] = std::to_string(seconds);
  }
  return response;
}

Response store_stats_handler(const ingest::IngestWorker& worker) {
  const store::DurableStore* store = worker.store();
  if (store == nullptr) {
    return Response::json(
        404, json::dump(json::object(
                 {{"error", "durable store not configured (set a store directory)"}})));
  }
  const store::StoreStats stats = store->stats();
  return Response::json(
      200,
      json::dump(json::object(
          {{"dir", stats.dir},
           {"fsync_policy", stats.fsync_policy},
           {"wal",
            json::object(
                {{"segments", static_cast<std::int64_t>(stats.wal_segments)},
                 {"bytes", static_cast<std::int64_t>(stats.wal_bytes)},
                 {"bytes_since_checkpoint",
                  static_cast<std::int64_t>(stats.wal_bytes_since_checkpoint)},
                 {"last_record_seq", static_cast<std::int64_t>(stats.last_record_seq)}})},
           {"appends",
            json::object({{"records", static_cast<std::int64_t>(stats.append_records)},
                          {"bytes", static_cast<std::int64_t>(stats.append_bytes)},
                          {"failures", static_cast<std::int64_t>(stats.append_failures)},
                          {"fsyncs", static_cast<std::int64_t>(stats.fsyncs)}})},
           {"checkpoints",
            json::object(
                {{"written", static_cast<std::int64_t>(stats.checkpoints)},
                 {"last_seq", static_cast<std::int64_t>(stats.last_checkpoint_seq)},
                 {"last_epoch", static_cast<std::int64_t>(stats.last_checkpoint_epoch)}})},
           {"recovery",
            json::object({{"replayed_records",
                           static_cast<std::int64_t>(stats.recovery_replayed_records)},
                          {"truncated_bytes",
                           static_cast<std::int64_t>(stats.recovery_truncated_bytes)}})}})));
}

/// POST /api/admin/checkpoint: asks the worker thread for an immediate
/// checkpoint and waits for it, so when the call returns 200 the corpus
/// image is durably on disk.
Response checkpoint_handler(ingest::IngestWorker& worker) {
  const Status status = worker.checkpoint_now(std::chrono::seconds(30));
  if (!status.is_ok()) {
    const int code = status.code() == StatusCode::kFailedPrecondition ? 404 : 503;
    return Response::json(code,
                          json::dump(json::object({{"error", status.to_string()}})));
  }
  const store::StoreStats stats = worker.store()->stats();
  return Response::json(
      200, json::dump(json::object(
               {{"checkpoint_seq", static_cast<std::int64_t>(stats.last_checkpoint_seq)},
                {"epoch", static_cast<std::int64_t>(stats.last_checkpoint_epoch)},
                {"wal_segments", static_cast<std::int64_t>(stats.wal_segments)}})));
}

Response ingest_stats_handler(const ingest::IngestWorker& worker) {
  const ingest::IngestStats stats = worker.stats();
  return Response::json(
      200,
      json::dump(json::object(
          {{"running", worker.running()},
           {"submitted", static_cast<std::int64_t>(stats.submitted)},
           {"accepted", static_cast<std::int64_t>(stats.accepted)},
           {"rejected", static_cast<std::int64_t>(stats.rejected)},
           {"invalid", static_cast<std::int64_t>(stats.invalid)},
           {"queue", json::object({{"depth", static_cast<std::int64_t>(stats.queue_depth)},
                                   {"capacity",
                                    static_cast<std::int64_t>(stats.queue_capacity)}})},
           {"epoch", static_cast<std::int64_t>(stats.current_epoch)},
           {"epochs_published", static_cast<std::int64_t>(stats.epochs_published)},
           {"live_checkins", static_cast<std::int64_t>(stats.live_checkins)},
           {"last_rebuild_ms", stats.last_rebuild_ms},
           {"total_rebuild_ms", stats.total_rebuild_ms}})));
}

constexpr std::string_view kViewerHtml = R"html(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CrowdWeb - crowd mobility in a smart city</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 0; background: #f2f3f7; color: #23232b; }
  header { background: #232a4d; color: #fff; padding: 12px 24px; }
  header h1 { margin: 0; font-size: 20px; }
  main { display: flex; gap: 16px; padding: 16px 24px; flex-wrap: wrap; }
  section { background: #fff; border-radius: 8px; padding: 14px; box-shadow: 0 1px 4px rgba(0,0,0,.12); }
  #map-panel { flex: 2 1 640px; } #side-panel { flex: 1 1 300px; }
  #map { width: 100%; } #map svg { width: 100%; height: auto; }
  label { font-size: 13px; margin-right: 8px; }
  select, input[type=range] { margin: 4px 0; }
  pre { background: #f6f7fa; padding: 8px; border-radius: 6px; font-size: 12px; overflow: auto; max-height: 300px; }
</style>
</head>
<body>
<header><h1>CrowdWeb &mdash; crowd mobility patterns in a smart city
  <small style="font-size:13px;font-weight:normal;margin-left:14px">
    <a href="/api/animation.svg" style="color:#bcd">day animation</a>
  </small></h1></header>
<main>
  <section id="map-panel">
    <label>Time window <input id="window" type="range" min="0" max="23" value="9"></label>
    <span id="window-label"></span>
    <div id="map"></div>
  </section>
  <section id="side-panel">
    <h3>Platform</h3><pre id="status">loading...</pre>
    <h3>User patterns</h3>
    <label>User <select id="user"></select></label>
    <pre id="patterns"></pre>
    <div id="graph"></div>
    <div id="timeline"></div>
  </section>
</main>
<script>
async function jsonOf(url) { const r = await fetch(url); return r.json(); }
async function textOf(url) { const r = await fetch(url); return r.text(); }
async function refreshMap() {
  const w = document.getElementById('window').value;
  const info = await jsonOf('/api/crowd/' + w);
  document.getElementById('window-label').textContent =
    info.label + ' - ' + info.total + ' users placed';
  document.getElementById('map').innerHTML = await textOf('/api/crowd/' + w + '/map.svg');
}
async function refreshUser() {
  const id = document.getElementById('user').value;
  if (id === '') return;
  const data = await jsonOf('/api/user/' + id + '/patterns');
  document.getElementById('patterns').textContent = JSON.stringify(data.patterns, null, 1);
  document.getElementById('graph').innerHTML = await textOf('/api/user/' + id + '/graph.svg');
  document.getElementById('timeline').innerHTML =
    await textOf('/api/user/' + id + '/timeline.svg');
}
async function init() {
  document.getElementById('status').textContent =
    JSON.stringify(await jsonOf('/api/status'), null, 1);
  const users = (await jsonOf('/api/users')).users.filter(u => u.patterns > 0).slice(0, 200);
  const select = document.getElementById('user');
  for (const u of users) {
    const option = document.createElement('option');
    option.value = u.id;
    option.textContent = 'user ' + u.id + ' (' + u.patterns + ' patterns)';
    select.appendChild(option);
  }
  select.addEventListener('change', refreshUser);
  document.getElementById('window').addEventListener('input', refreshMap);
  await refreshMap();
  if (users.length > 0) { select.value = users[0].id; await refreshUser(); }
}
init();
</script>
</body>
</html>
)html";

/// Runs `fn` against the crowd state this route should serve: the batch
/// platform's phase-3 output in static mode, or — when an IngestWorker
/// is attached — the latest published epoch. The snapshot shared_ptr
/// lives on this frame for the whole call, pinning the epoch until the
/// response is built even if the worker publishes a newer one meanwhile.
template <typename Fn>
Response with_crowd_view(const Platform& platform, ingest::IngestWorker* worker,
                         Fn&& fn) {
  if (worker == nullptr) {
    return fn(CrowdView{platform.experiment_dataset(), platform.grid(),
                        platform.crowd_model(), platform.config().sequences.mode,
                        platform.taxonomy()});
  }
  const ingest::SnapshotPtr snapshot = worker->hub().current();
  if (snapshot == nullptr)
    return Response::text(503, "no epoch published yet; retry shortly\n");
  return fn(CrowdView{snapshot->dataset, snapshot->grid, snapshot->crowd,
                      platform.config().sequences.mode, worker->taxonomy()});
}

}  // namespace

http::Router make_api_router(const Platform& platform, ApiOptions options) {
  http::Router router;
  const Platform* p = &platform;
  ingest::IngestWorker* w = options.ingest;

  router.get_cached("/", [](const Request&, const PathParams&) {
    return Response::html(200, std::string(kViewerHtml));
  });
  router.get("/api/status", [p, options](const Request&, const PathParams&) {
    return status_handler(*p, options);
  });
  router.get_cached("/api/users",
             [p](const Request&, const PathParams&) { return users_handler(*p); });
  router.get_cached("/api/user/:id/patterns", [p](const Request&, const PathParams& params) {
    return user_patterns_handler(*p, params);
  });
  router.get_cached("/api/user/:id/graph.svg", [p](const Request&, const PathParams& params) {
    return user_graph_handler(*p, params);
  });
  router.get_cached("/api/user/:id/timeline.svg", [p](const Request&, const PathParams& params) {
    return user_timeline_handler(*p, params);
  });
  router.get_cached("/api/crowd/:window", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w,
                           [&](const CrowdView& view) { return crowd_handler(view, params); });
  });
  router.get_cached("/api/crowd/:window/map.svg", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(
        *p, w, [&](const CrowdView& view) { return crowd_map_handler(view, params); });
  });
  router.get_cached("/api/crowd/:window/geojson", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(
        *p, w, [&](const CrowdView& view) { return crowd_geojson_handler(view, params); });
  });
  router.get_cached("/api/groups/:window", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(
        *p, w, [&](const CrowdView& view) { return groups_handler(view, params); });
  });
  router.get_cached("/api/flow/:from/:to", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return flow_handler(view, params, /*as_map=*/false);
    });
  });
  router.get_cached("/api/flow/:from/:to/map.svg", [p, w](const Request&, const PathParams& params) {
    return with_crowd_view(*p, w, [&](const CrowdView& view) {
      return flow_handler(view, params, /*as_map=*/true);
    });
  });
  router.get_cached("/api/animation.svg", [p, w](const Request& request, const PathParams&) {
    return with_crowd_view(
        *p, w, [&](const CrowdView& view) { return animation_handler(view, request); });
  });
  router.get_cached("/api/communities", [p](const Request&, const PathParams&) {
    return communities_handler(*p);
  });
  router.post("/api/analyze", [p](const Request& request, const PathParams&) {
    return analyze_handler(*p, request);
  });
  router.get_cached("/api/rhythm.svg", [p, w](const Request&, const PathParams&) {
    return with_crowd_view(*p, w,
                           [&](const CrowdView& view) { return rhythm_handler(view); });
  });
  router.get_cached("/api/predict/:id", [p](const Request& request, const PathParams& params) {
    return predict_handler(*p, request, params);
  });
  if (w != nullptr) {
    router.post("/api/ingest", [w](const Request& request, const PathParams&) {
      return ingest_handler(*w, request);
    });
    router.get("/api/ingest/stats", [w](const Request&, const PathParams&) {
      return ingest_stats_handler(*w);
    });
    router.get("/api/store/stats", [w](const Request&, const PathParams&) {
      return store_stats_handler(*w);
    });
    router.post("/api/admin/checkpoint", [w](const Request&, const PathParams&) {
      return checkpoint_handler(*w);
    });
  }
  if (telemetry::Registry* metrics = options.metrics; metrics != nullptr) {
    router.get("/metrics", [metrics](const Request&, const PathParams&) {
      return Response::text(200, telemetry::render_prometheus(*metrics),
                            telemetry::kPrometheusContentType);
    });
  }
  return router;
}

std::unique_ptr<ingest::IngestWorker> make_ingest_worker(const Platform& platform,
                                                         ingest::IngestWorkerConfig config) {
  ingest::IngestPipelineConfig pipeline;
  pipeline.grid_cell_meters = platform.config().grid_cell_meters;
  pipeline.crowd = platform.config().crowd;
  pipeline.sequences = platform.config().sequences;
  pipeline.mining = platform.config().mining;
  pipeline.mining_threads = platform.config().mining_threads;
  // Inherit the platform's registry so one scrape covers the batch build
  // and the live worker, unless the caller picked a registry explicitly.
  if (config.metrics == nullptr) config.metrics = platform.config().metrics;
  // Same for durability: the platform-level store config applies unless
  // the worker config already names a directory.
  if (config.store.dir.empty()) config.store = platform.config().store;
  return std::make_unique<ingest::IngestWorker>(platform.experiment_dataset(),
                                                platform.mobility(), platform.taxonomy(),
                                                pipeline, config);
}

}  // namespace crowdweb::core

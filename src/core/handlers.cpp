#include "core/handlers.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "data/csv.hpp"
#include "ingest/event.hpp"
#include "transport/csv_source.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"
#include "viz/animation.hpp"
#include "viz/charts.hpp"
#include "viz/citymap.hpp"
#include "viz/geojson.hpp"

namespace crowdweb::core::handlers {

using http::PathParams;
using http::Request;
using http::Response;

std::optional<std::int64_t> int_param(const PathParams& params, std::string_view name) {
  const auto it = params.find(name);
  if (it == params.end()) return std::nullopt;
  const auto value = parse_int(it->second);
  if (!value) return std::nullopt;
  return *value;
}

std::string_view raw_param(const PathParams& params, std::string_view name) {
  const auto it = params.find(name);
  return it == params.end() ? std::string_view{} : std::string_view(it->second);
}

Response bad_window(const PathParams& params, std::string_view name, int window_count) {
  return Response::bad_request_400(crowdweb::format(
      "bad window index '{}' for parameter '{}': expected an integer in [0, {})",
      raw_param(params, name), name, window_count));
}

Response bad_user_id(const PathParams& params) {
  return Response::bad_request_400(
      crowdweb::format("bad user id '{}': expected a non-negative integer",
                       raw_param(params, "id")));
}

bool valid_window(const CrowdView& view, std::int64_t window) {
  return window >= 0 && window < view.crowd.window_count();
}

json::Value pattern_json(const patterns::MobilityPattern& pattern, mining::LabelMode mode,
                         const data::Taxonomy& taxonomy, const data::Dataset& dataset) {
  json::Value elements = json::Value(json::Array{});
  for (const patterns::TimedElement& element : pattern.elements) {
    const int minute = static_cast<int>(element.mean_minute + 0.5);
    elements.push_back(json::object(
        {{"label", mining::label_name(element.label, mode, taxonomy, dataset)},
         {"mean_minute", element.mean_minute},
         {"stddev_minute", element.stddev_minute},
         {"time", crowdweb::format("{:02}:{:02}", minute / 60, minute % 60)}}));
  }
  return json::object({{"elements", std::move(elements)},
                       {"support", pattern.support},
                       {"support_count", static_cast<std::int64_t>(pattern.support_count)}});
}

void add_degraded_marker(const CrowdView& view, json::Value& payload) {
  if (!view.degraded) return;
  payload.set("degraded", true);
  json::Value missing = json::Value(json::Array{});
  for (const std::size_t shard : view.missing_shards)
    missing.push_back(static_cast<std::int64_t>(shard));
  payload.set("missing_shards", std::move(missing));
}

Response crowd_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  const crowd::CrowdDistribution distribution =
      view.crowd.distribution(static_cast<int>(*window));
  json::Value cells = json::Value(json::Array{});
  for (const auto& [cell, count] : distribution.top_cells(50)) {
    const geo::LatLon center = view.grid.cell_center(cell);
    cells.push_back(json::object({{"cell", static_cast<std::int64_t>(cell)},
                                  {"count", static_cast<std::int64_t>(count)},
                                  {"lat", center.lat},
                                  {"lon", center.lon}}));
  }
  json::Value payload = json::object(
      {{"window", static_cast<std::int64_t>(*window)},
       {"label", view.crowd.window_label(static_cast<int>(*window))},
       {"total", static_cast<std::int64_t>(distribution.total())},
       {"occupied_cells", static_cast<std::int64_t>(distribution.occupied_cells())},
       {"top_cells", std::move(cells)}});
  add_degraded_marker(view, payload);
  return Response::json(200, json::dump(payload));
}

Response crowd_map_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  const crowd::CrowdDistribution distribution =
      view.crowd.distribution(static_cast<int>(*window));
  viz::CityMapOptions options;
  options.title = crowdweb::format(
      "Crowd {} ", view.crowd.window_label(static_cast<int>(*window)));
  return Response::svg(200, viz::render_city_map(distribution, view.grid,
                                                 view.dataset, options));
}

Response crowd_geojson_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  const crowd::CrowdDistribution distribution =
      view.crowd.distribution(static_cast<int>(*window));
  json::Value payload = viz::distribution_geojson(distribution, view.grid);
  add_degraded_marker(view, payload);
  return Response::json(200, json::dump(payload));
}

Response groups_handler(const CrowdView& view, const PathParams& params) {
  const auto window = int_param(params, "window");
  if (!window || !valid_window(view, *window))
    return bad_window(params, "window", view.crowd.window_count());
  json::Value list = json::Value(json::Array{});
  for (const crowd::CrowdGroup& group :
       view.crowd.groups(static_cast<int>(*window))) {
    json::Value members = json::Value(json::Array{});
    for (const data::UserId user : group.users)
      members.push_back(static_cast<std::int64_t>(user));
    const geo::LatLon center = view.grid.cell_center(group.cell);
    list.push_back(json::object(
        {{"cell", static_cast<std::int64_t>(group.cell)},
         {"label", mining::label_name(group.label, view.mode,
                                      view.taxonomy, view.dataset)},
         {"lat", center.lat},
         {"lon", center.lon},
         {"users", std::move(members)}}));
  }
  json::Value payload = json::object({{"groups", std::move(list)}});
  add_degraded_marker(view, payload);
  return Response::json(200, json::dump(payload));
}

Response flow_handler(const CrowdView& view, const PathParams& params, bool as_map) {
  const auto from = int_param(params, "from");
  const auto to = int_param(params, "to");
  if (!from || !valid_window(view, *from))
    return bad_window(params, "from", view.crowd.window_count());
  if (!to || !valid_window(view, *to))
    return bad_window(params, "to", view.crowd.window_count());
  const crowd::FlowMatrix flow =
      view.crowd.flow(static_cast<int>(*from), static_cast<int>(*to));
  if (as_map) {
    const crowd::CrowdDistribution destination =
        view.crowd.distribution(static_cast<int>(*to));
    viz::CityMapOptions options;
    options.title = crowdweb::format(
        "Crowd flow {} to {}", view.crowd.window_label(static_cast<int>(*from)),
        view.crowd.window_label(static_cast<int>(*to)));
    return Response::svg(200, viz::render_flow_map(flow, destination, view.grid,
                                                   view.dataset, options));
  }
  json::Value moves = json::Value(json::Array{});
  for (const auto& [pair, count] : flow.top_flows(50)) {
    const geo::LatLon a = view.grid.cell_center(pair.first);
    const geo::LatLon b = view.grid.cell_center(pair.second);
    moves.push_back(json::object({{"from_cell", static_cast<std::int64_t>(pair.first)},
                                  {"to_cell", static_cast<std::int64_t>(pair.second)},
                                  {"count", static_cast<std::int64_t>(count)},
                                  {"from", json::array({a.lon, a.lat})},
                                  {"to", json::array({b.lon, b.lat})}}));
  }
  json::Value payload =
      json::object({{"from_window", static_cast<std::int64_t>(*from)},
                    {"to_window", static_cast<std::int64_t>(*to)},
                    {"total", static_cast<std::int64_t>(flow.total())},
                    {"top_flows", std::move(moves)}});
  add_degraded_marker(view, payload);
  return Response::json(200, json::dump(payload));
}

Response animation_handler(const CrowdView& view, const Request& request) {
  viz::AnimationOptions options;
  options.title = "Crowd movement across the day";
  if (const auto seconds = request.query_param("seconds")) {
    const auto parsed = parse_double(*seconds);
    if (!parsed || *parsed <= 0.0 || *parsed > 60.0)
      return Response::bad_request_400("seconds must be in (0, 60]");
    options.seconds_per_window = *parsed;
  }
  return Response::svg(200, viz::render_crowd_animation(view.crowd, options));
}

Response rhythm_handler(const CrowdView& view) {
  const crowd::CrowdModel::Rhythm rhythm = view.crowd.rhythm();
  viz::HeatmapSpec spec;
  spec.title = "Crowd rhythm: place type by time window";
  spec.size.width = 900;
  for (const mining::Item label : rhythm.labels)
    spec.row_labels.push_back(
        mining::label_name(label, view.mode, view.taxonomy, view.dataset));
  for (int w = 0; w < view.crowd.window_count(); ++w)
    spec.col_labels.push_back(
        crowdweb::format("{:02}", w * view.crowd.options().window_minutes / 60));
  for (const auto& row : rhythm.counts) {
    std::vector<double> values;
    for (const std::size_t count : row) values.push_back(static_cast<double>(count));
    spec.values.push_back(std::move(values));
  }
  return Response::svg(200, viz::render_heatmap(spec));
}

Response ingest_handler(ingest::IngestWorker& worker, const Request& request) {
  // The spool-less path: CSV parsing and the response body live in
  // transport/csv_source.hpp now; this wrapper submits straight to the
  // worker's queue (PipelineOutcome.spooled stays 0).
  const auto parsed = transport::parse_ingest_csv(
      request, worker.taxonomy(), [&worker] { return worker.allocate_guest_id(); });
  if (!parsed) return transport::bad_ingest_request(parsed.status());
  if (parsed->invalid > 0) worker.note_invalid(parsed->invalid);
  const ingest::SubmitResult result = worker.submit(parsed->events);
  return transport::ingest_response(*parsed, {result.accepted, result.rejected, 0},
                                    worker.stats(), worker.config().rebuild_interval);
}

Response ingest_stats_handler(const ingest::IngestWorker& worker) {
  const ingest::IngestStats stats = worker.stats();
  return Response::json(
      200,
      json::dump(json::object(
          {{"running", worker.running()},
           {"submitted", static_cast<std::int64_t>(stats.submitted)},
           {"accepted", static_cast<std::int64_t>(stats.accepted)},
           {"rejected", static_cast<std::int64_t>(stats.rejected)},
           {"invalid", static_cast<std::int64_t>(stats.invalid)},
           {"queue", json::object({{"depth", static_cast<std::int64_t>(stats.queue_depth)},
                                   {"capacity",
                                    static_cast<std::int64_t>(stats.queue_capacity)}})},
           {"epoch", static_cast<std::int64_t>(stats.current_epoch)},
           {"epochs_published", static_cast<std::int64_t>(stats.epochs_published)},
           {"live_checkins", static_cast<std::int64_t>(stats.live_checkins)},
           {"last_rebuild_ms", stats.last_rebuild_ms},
           {"total_rebuild_ms", stats.total_rebuild_ms}})));
}

Response store_stats_handler(const ingest::IngestWorker& worker) {
  const store::DurableStore* store = worker.store();
  if (store == nullptr) {
    return Response::json(
        404, json::dump(json::object(
                 {{"error", "durable store not configured (set a store directory)"}})));
  }
  const store::StoreStats stats = store->stats();
  return Response::json(
      200,
      json::dump(json::object(
          {{"dir", stats.dir},
           {"fsync_policy", stats.fsync_policy},
           {"wal",
            json::object(
                {{"segments", static_cast<std::int64_t>(stats.wal_segments)},
                 {"bytes", static_cast<std::int64_t>(stats.wal_bytes)},
                 {"bytes_since_checkpoint",
                  static_cast<std::int64_t>(stats.wal_bytes_since_checkpoint)},
                 {"last_record_seq", static_cast<std::int64_t>(stats.last_record_seq)}})},
           {"appends",
            json::object({{"records", static_cast<std::int64_t>(stats.append_records)},
                          {"bytes", static_cast<std::int64_t>(stats.append_bytes)},
                          {"failures", static_cast<std::int64_t>(stats.append_failures)},
                          {"fsyncs", static_cast<std::int64_t>(stats.fsyncs)}})},
           {"checkpoints",
            json::object(
                {{"written", static_cast<std::int64_t>(stats.checkpoints)},
                 {"last_seq", static_cast<std::int64_t>(stats.last_checkpoint_seq)},
                 {"last_epoch", static_cast<std::int64_t>(stats.last_checkpoint_epoch)}})},
           {"recovery",
            json::object({{"replayed_records",
                           static_cast<std::int64_t>(stats.recovery_replayed_records)},
                          {"truncated_bytes",
                           static_cast<std::int64_t>(stats.recovery_truncated_bytes)}})}})));
}

Response checkpoint_handler(ingest::IngestWorker& worker) {
  const Status status = worker.checkpoint_now(std::chrono::seconds(30));
  if (!status.is_ok()) {
    const int code = status.code() == StatusCode::kFailedPrecondition ? 404 : 503;
    return Response::json(code,
                          json::dump(json::object({{"error", status.to_string()}})));
  }
  const store::StoreStats stats = worker.store()->stats();
  return Response::json(
      200, json::dump(json::object(
               {{"checkpoint_seq", static_cast<std::int64_t>(stats.last_checkpoint_seq)},
                {"epoch", static_cast<std::int64_t>(stats.last_checkpoint_epoch)},
                {"wal_segments", static_cast<std::int64_t>(stats.wal_segments)}})));
}

namespace {

constexpr std::string_view kViewerHtml = R"html(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CrowdWeb - crowd mobility in a smart city</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 0; background: #f2f3f7; color: #23232b; }
  header { background: #232a4d; color: #fff; padding: 12px 24px; }
  header h1 { margin: 0; font-size: 20px; }
  main { display: flex; gap: 16px; padding: 16px 24px; flex-wrap: wrap; }
  section { background: #fff; border-radius: 8px; padding: 14px; box-shadow: 0 1px 4px rgba(0,0,0,.12); }
  #map-panel { flex: 2 1 640px; } #side-panel { flex: 1 1 300px; }
  #map { width: 100%; } #map svg { width: 100%; height: auto; }
  label { font-size: 13px; margin-right: 8px; }
  select, input[type=range] { margin: 4px 0; }
  pre { background: #f6f7fa; padding: 8px; border-radius: 6px; font-size: 12px; overflow: auto; max-height: 300px; }
</style>
</head>
<body>
<header><h1>CrowdWeb &mdash; crowd mobility patterns in a smart city
  <small style="font-size:13px;font-weight:normal;margin-left:14px">
    <a href="/api/animation.svg" style="color:#bcd">day animation</a>
  </small></h1></header>
<main>
  <section id="map-panel">
    <label>Time window <input id="window" type="range" min="0" max="23" value="9"></label>
    <span id="window-label"></span>
    <div id="map"></div>
  </section>
  <section id="side-panel">
    <h3>Platform</h3><pre id="status">loading...</pre>
    <h3>User patterns</h3>
    <label>User <select id="user"></select></label>
    <pre id="patterns"></pre>
    <div id="graph"></div>
    <div id="timeline"></div>
  </section>
</main>
<script>
async function jsonOf(url) { const r = await fetch(url); return r.json(); }
async function textOf(url) { const r = await fetch(url); return r.text(); }
async function refreshMap() {
  const w = document.getElementById('window').value;
  const info = await jsonOf('/api/crowd/' + w);
  document.getElementById('window-label').textContent =
    info.label + ' - ' + info.total + ' users placed';
  document.getElementById('map').innerHTML = await textOf('/api/crowd/' + w + '/map.svg');
}
async function refreshUser() {
  const id = document.getElementById('user').value;
  if (id === '') return;
  const data = await jsonOf('/api/user/' + id + '/patterns');
  document.getElementById('patterns').textContent = JSON.stringify(data.patterns, null, 1);
  document.getElementById('graph').innerHTML = await textOf('/api/user/' + id + '/graph.svg');
  document.getElementById('timeline').innerHTML =
    await textOf('/api/user/' + id + '/timeline.svg');
}
async function init() {
  document.getElementById('status').textContent =
    JSON.stringify(await jsonOf('/api/status'), null, 1);
  const users = (await jsonOf('/api/users')).users.filter(u => u.patterns > 0).slice(0, 200);
  const select = document.getElementById('user');
  for (const u of users) {
    const option = document.createElement('option');
    option.value = u.id;
    option.textContent = 'user ' + u.id + ' (' + u.patterns + ' patterns)';
    select.appendChild(option);
  }
  select.addEventListener('change', refreshUser);
  document.getElementById('window').addEventListener('input', refreshMap);
  await refreshMap();
  if (users.length > 0) { select.value = users[0].id; await refreshUser(); }
}
init();
</script>
</body>
</html>
)html";

}  // namespace

std::string_view viewer_html() noexcept { return kViewerHtml; }

}  // namespace crowdweb::core::handlers

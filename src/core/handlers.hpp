// Route handlers shared between the single-process API (core/api.cpp)
// and the sharded scatter-gather API (shard/api.cpp).
//
// Everything here is a pure function of a CrowdView — one immutable
// snapshot of phase-3 state — plus request parameters, so the same
// handler renders byte-identical bodies whether the view comes from the
// batch platform, one live epoch, or a merged set of per-shard epochs.
// The sharded router reuses these directly; that is what makes the
// N-shard equivalence guarantee a property of the merge, not of
// duplicated rendering code.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "crowd/model.hpp"
#include "data/dataset.hpp"
#include "geo/grid.hpp"
#include "http/message.hpp"
#include "http/router.hpp"
#include "ingest/worker.hpp"
#include "json/json.hpp"
#include "mining/seqdb.hpp"
#include "patterns/mobility.hpp"

namespace crowdweb::core::handlers {

/// The state a crowd-facing handler reads: the batch platform's phase-3
/// output, one published epoch (pinned for the request by the caller's
/// shared_ptr), or a merged view over several shard epochs.
struct CrowdView {
  const data::Dataset& dataset;
  const geo::SpatialGrid& grid;
  const crowd::CrowdModel& crowd;
  mining::LabelMode mode;
  const data::Taxonomy& taxonomy;
  /// Sharded deployments serving a partial merge (one or more shards
  /// down) set this; JSON bodies then carry an explicit "degraded"
  /// marker plus the missing shard ids. Single-process views leave it
  /// false and bodies are unchanged.
  bool degraded = false;
  std::span<const std::size_t> missing_shards;
};

/// Parses an integer path parameter, returning nullopt on junk.
[[nodiscard]] std::optional<std::int64_t> int_param(const http::PathParams& params,
                                                    std::string_view name);

/// The raw (unparsed) value of a path parameter, for error messages.
[[nodiscard]] std::string_view raw_param(const http::PathParams& params,
                                         std::string_view name);

/// 400 naming the offending value and the valid window range.
[[nodiscard]] http::Response bad_window(const http::PathParams& params,
                                        std::string_view name, int window_count);

/// 400 naming the offending user id value.
[[nodiscard]] http::Response bad_user_id(const http::PathParams& params);

[[nodiscard]] bool valid_window(const CrowdView& view, std::int64_t window);

/// One mined pattern as JSON (elements with labels, times, support).
[[nodiscard]] json::Value pattern_json(const patterns::MobilityPattern& pattern,
                                       mining::LabelMode mode,
                                       const data::Taxonomy& taxonomy,
                                       const data::Dataset& dataset);

/// Appends the degraded marker to a JSON payload when the view is a
/// partial merge; a no-op otherwise (bodies stay byte-identical).
void add_degraded_marker(const CrowdView& view, json::Value& payload);

[[nodiscard]] http::Response crowd_handler(const CrowdView& view,
                                           const http::PathParams& params);
[[nodiscard]] http::Response crowd_map_handler(const CrowdView& view,
                                               const http::PathParams& params);
[[nodiscard]] http::Response crowd_geojson_handler(const CrowdView& view,
                                                   const http::PathParams& params);
[[nodiscard]] http::Response groups_handler(const CrowdView& view,
                                            const http::PathParams& params);
[[nodiscard]] http::Response flow_handler(const CrowdView& view,
                                          const http::PathParams& params, bool as_map);
[[nodiscard]] http::Response animation_handler(const CrowdView& view,
                                               const http::Request& request);
[[nodiscard]] http::Response rhythm_handler(const CrowdView& view);

/// Live ingestion: parses CSV check-ins and submits them to the worker's
/// queue (see core/api.hpp for the accepted headers and status codes).
/// CSV parsing and response rendering moved to transport/csv_source.hpp
/// (transport::parse_ingest_csv / transport::ingest_response); this
/// wrapper runs them around a direct worker submit — no spool — and the
/// sharded API runs the same pieces around a ShardRouter submit.
[[nodiscard]] http::Response ingest_handler(ingest::IngestWorker& worker,
                                            const http::Request& request);
[[nodiscard]] http::Response ingest_stats_handler(const ingest::IngestWorker& worker);
[[nodiscard]] http::Response store_stats_handler(const ingest::IngestWorker& worker);
[[nodiscard]] http::Response checkpoint_handler(ingest::IngestWorker& worker);

/// The embedded single-page viewer served at GET /.
[[nodiscard]] std::string_view viewer_html() noexcept;

}  // namespace crowdweb::core::handlers

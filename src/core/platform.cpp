#include "core/platform.hpp"

#include <algorithm>
#include <chrono>

#include "data/dataset_io.hpp"
#include "mining/registry.hpp"
#include "util/log.hpp"

namespace crowdweb::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Records one batch-build stage into the shared stage family. Get-or-
/// create keeps call sites independent of construction order (synth runs
/// before run_pipeline); the bounds only apply on first creation.
void observe_stage(telemetry::Registry* metrics, const std::string& stage, double ms) {
  if (metrics == nullptr) return;
  metrics
      ->histogram_family(
          "crowdweb_platform_build_stage_duration_seconds",
          "Wall time of one batch platform build stage: synth (corpus generation), "
          "acquisition (window + active-user filtering), mining (per-user "
          "PrefixSpan), crowd (model aggregation).",
          {"stage"}, telemetry::default_duration_buckets())
      .with_labels({stage})
      .observe(ms / 1e3);
}

}  // namespace

const data::Taxonomy& Platform::taxonomy() const noexcept {
  return data::Taxonomy::foursquare();
}

Result<Platform> Platform::create(const PlatformConfig& config) {
  const auto synth_start = Clock::now();
  auto corpus = config.small_corpus ? synth::small_corpus(config.seed)
                                    : synth::paper_corpus(config.seed);
  if (!corpus) return corpus.status();
  observe_stage(config.metrics, "synth", ms_since(synth_start));
  Platform platform;
  platform.config_ = config;
  const Status status = platform.run_pipeline(std::move(corpus->dataset));
  if (!status.is_ok()) return status;
  return platform;
}

Result<Platform> Platform::from_dataset(data::Dataset dataset, const PlatformConfig& config) {
  Platform platform;
  platform.config_ = config;
  const Status status = platform.run_pipeline(std::move(dataset));
  if (!status.is_ok()) return status;
  return platform;
}

Result<Platform> Platform::from_csv_files(const std::string& venues_path,
                                          const std::string& checkins_path,
                                          const PlatformConfig& config) {
  auto venues = data::read_file(venues_path);
  if (!venues) return venues.status();
  auto checkins = data::read_file(checkins_path);
  if (!checkins) return checkins.status();
  auto dataset =
      data::dataset_from_csv(*venues, *checkins, data::Taxonomy::foursquare());
  if (!dataset) return dataset.status();
  return from_dataset(std::move(dataset).value(), config);
}

Result<Platform> Platform::restore(data::Dataset dataset,
                                   std::vector<patterns::UserMobility> mobility,
                                   const PlatformConfig& config) {
  Platform platform;
  platform.config_ = config;
  const Status status = platform.run_pipeline(std::move(dataset), &mobility);
  if (!status.is_ok()) return status;
  return platform;
}

Status Platform::run_pipeline(data::Dataset full,
                              std::vector<patterns::UserMobility>* precomputed) {
  if (full.empty()) return failed_precondition("dataset is empty");
  // Fail fast on a miner name nothing downstream could resolve (the
  // ingest worker and shard workers inherit this config verbatim).
  if (const auto miner = mining::resolve_miner(config_.mining.algorithm); !miner)
    return miner.status();
  full_ = std::move(full);

  // Phase 1: window restriction + active-user selection.
  const auto phase1_start = Clock::now();
  data::Dataset windowed =
      full_.filter_time_range(config_.experiment_start, config_.experiment_end);
  data::ActiveUserCriteria criteria;
  criteria.from = config_.experiment_start;
  criteria.to = config_.experiment_end;
  criteria.min_days = config_.min_active_days;
  criteria.max_gap_seconds = config_.max_gap_seconds;
  experiment_ = windowed.filter_active_users(criteria);
  if (experiment_.empty())
    return failed_precondition(
        "no active users survive preprocessing; relax min_active_days or widen the window");
  timings_.acquisition_ms = ms_since(phase1_start);
  observe_stage(config_.metrics, "acquisition", timings_.acquisition_ms);

  // Phase 2: per-user modified PrefixSpan (or adopt a snapshot).
  const auto phase2_start = Clock::now();
  if (precomputed != nullptr) {
    const auto users = experiment_.users();
    if (precomputed->size() != users.size())
      return failed_precondition(
          "snapshot mobility does not match the preprocessed user set");
    for (std::size_t i = 0; i < users.size(); ++i) {
      if ((*precomputed)[i].user != users[i])
        return failed_precondition(
            "snapshot mobility does not match the preprocessed user set");
    }
    mobility_ = std::move(*precomputed);
  } else {
    patterns::MobilityOptions mobility_options;
    mobility_options.sequences = config_.sequences;
    mobility_options.mining = config_.mining;
    mobility_ = patterns::mine_all_mobility_parallel(
        experiment_, taxonomy(), mobility_options, config_.mining_threads);
  }
  timings_.mining_ms = ms_since(phase2_start);
  observe_stage(config_.metrics, "mining", timings_.mining_ms);
  mining::MiningStats mining_totals;
  for (const patterns::UserMobility& entry : mobility_) mining_totals.merge(entry.mining_stats);
  if (mining_totals.truncated) {
    log_warn(
        "miner '{}' hit the max_patterns cap ({}) for at least one user; "
        "mined tables are incomplete — raise max_patterns or min_support",
        config_.mining.algorithm, config_.mining.max_patterns);
  }

  // Phase 3: crowd synchronization and aggregation.
  const auto phase3_start = Clock::now();
  auto grid = geo::SpatialGrid::create(experiment_.bounds().inflated(0.002),
                                       config_.grid_cell_meters);
  if (!grid) return grid.status();
  grid_ = *grid;
  auto crowd = crowd::CrowdModel::build(experiment_, mobility_, *grid_, config_.crowd);
  if (!crowd) return crowd.status();
  crowd_ = std::move(crowd).value();
  timings_.crowd_ms = ms_since(phase3_start);
  observe_stage(config_.metrics, "crowd", timings_.crowd_ms);

  log_info(
      "platform ready: {} users ({} active), {} check-ins in window, {} placements; "
      "phases {:.0f}/{:.0f}/{:.0f} ms",
      full_.user_count(), experiment_.user_count(), experiment_.checkin_count(),
      crowd_->total_placements(), timings_.acquisition_ms, timings_.mining_ms,
      timings_.crowd_ms);
  return Status::ok();
}

const patterns::UserMobility* Platform::user_mobility(data::UserId user) const noexcept {
  const auto it = std::lower_bound(
      mobility_.begin(), mobility_.end(), user,
      [](const patterns::UserMobility& m, data::UserId id) { return m.user < id; });
  if (it == mobility_.end() || it->user != user) return nullptr;
  return &*it;
}

mining::UserSequences Platform::sequences_for(data::UserId user) const {
  return mining::build_user_sequences(experiment_, user, taxonomy(), config_.sequences);
}

patterns::PlaceGraph Platform::place_graph(data::UserId user) const {
  const mining::UserSequences sequences = sequences_for(user);
  patterns::PlaceGraphOptions options;
  const patterns::UserMobility* mobility = user_mobility(user);
  // Closed-mode entries expand lazily for this request: the graph's
  // pattern restriction keys on consecutive element pairs, which the
  // closed set does not preserve, so restricting to it directly would
  // change the rendered graph.
  std::vector<patterns::MobilityPattern> expanded;
  if (mobility != nullptr && mobility->closed_only) {
    expanded = patterns::expand_user_patterns(*mobility, sequences, config_.mining);
    if (!expanded.empty()) options.restrict_to_patterns = &expanded;
  } else if (mobility != nullptr && !mobility->patterns.empty()) {
    options.restrict_to_patterns = &mobility->patterns;
  }
  return patterns::build_place_graph(sequences, taxonomy(), experiment_,
                                     config_.sequences.mode, options);
}

}  // namespace crowdweb::core

#include "core/snapshot.hpp"

#include <filesystem>

#include "data/dataset_io.hpp"
#include "util/format.hpp"

namespace crowdweb::core {

json::Value mobility_to_json(std::span<const patterns::UserMobility> mobility) {
  json::Value users = json::Value(json::Array{});
  for (const patterns::UserMobility& user : mobility) {
    json::Value pattern_list = json::Value(json::Array{});
    for (const patterns::MobilityPattern& pattern : user.patterns) {
      json::Value elements = json::Value(json::Array{});
      for (const patterns::TimedElement& element : pattern.elements) {
        elements.push_back(json::object({{"label", static_cast<std::int64_t>(element.label)},
                                         {"mean_minute", element.mean_minute},
                                         {"stddev_minute", element.stddev_minute}}));
      }
      pattern_list.push_back(json::object(
          {{"elements", std::move(elements)},
           {"support_count", static_cast<std::int64_t>(pattern.support_count)},
           {"support", pattern.support}}));
    }
    json::Value user_value = json::object(
        {{"user", static_cast<std::int64_t>(user.user)},
         {"recorded_days", static_cast<std::int64_t>(user.recorded_days)},
         {"patterns", std::move(pattern_list)}});
    if (user.closed_only) {
      // Compact entries persist their closed-mode sidecar (frequent-set
      // size + placement index) so a restore serves identical bytes
      // without re-expanding. Expanded entries omit the fields entirely,
      // keeping default-mode snapshots byte-identical to version 1.
      user_value.set("closed", true);
      user_value.set("frequent_patterns",
                     static_cast<std::int64_t>(user.frequent_patterns));
      json::Value index = json::Value(json::Array{});
      for (const patterns::PlacementCandidate& candidate : user.placement_index) {
        index.push_back(json::object(
            {{"label", static_cast<std::int64_t>(candidate.label)},
             {"minute", static_cast<std::int64_t>(candidate.minute)},
             {"rank", static_cast<std::int64_t>(candidate.rank)},
             {"support_count", static_cast<std::int64_t>(candidate.support_count)},
             {"support", candidate.support}}));
      }
      user_value.set("placement_index", std::move(index));
    }
    users.push_back(std::move(user_value));
  }
  return json::object({{"version", 1}, {"users", std::move(users)}});
}

namespace {

/// Fetches a required member or fails.
Result<const json::Value*> member(const json::Value& value, std::string_view key) {
  const json::Value* found = value.find(key);
  if (found == nullptr)
    return parse_error(crowdweb::format("snapshot: missing field '{}'", key));
  return found;
}

}  // namespace

Result<std::vector<patterns::UserMobility>> mobility_from_json(const json::Value& value) {
  auto version = member(value, "version");
  if (!version) return version.status();
  if (!(*version)->is_int() || (*version)->as_int() != 1)
    return parse_error("snapshot: unsupported mobility version");
  auto users_value = member(value, "users");
  if (!users_value) return users_value.status();
  if (!(*users_value)->is_array()) return parse_error("snapshot: 'users' must be an array");

  std::vector<patterns::UserMobility> out;
  for (const json::Value& user_value : (*users_value)->as_array()) {
    patterns::UserMobility user;
    auto id = member(user_value, "user");
    auto days = member(user_value, "recorded_days");
    auto pattern_list = member(user_value, "patterns");
    if (!id || !days || !pattern_list) return parse_error("snapshot: malformed user entry");
    if (!(*id)->is_int() || !(*days)->is_int() || !(*pattern_list)->is_array())
      return parse_error("snapshot: malformed user entry");
    user.user = static_cast<data::UserId>((*id)->as_int());
    user.recorded_days = static_cast<std::size_t>((*days)->as_int());
    for (const json::Value& pattern_value : (*pattern_list)->as_array()) {
      patterns::MobilityPattern pattern;
      auto elements = member(pattern_value, "elements");
      auto support_count = member(pattern_value, "support_count");
      auto support = member(pattern_value, "support");
      if (!elements || !support_count || !support)
        return parse_error("snapshot: malformed pattern entry");
      if (!(*elements)->is_array() || !(*support_count)->is_int() ||
          !(*support)->is_number())
        return parse_error("snapshot: malformed pattern entry");
      pattern.support_count = static_cast<std::size_t>((*support_count)->as_int());
      pattern.support = (*support)->as_double();
      for (const json::Value& element_value : (*elements)->as_array()) {
        auto label = member(element_value, "label");
        auto mean = member(element_value, "mean_minute");
        auto stddev = member(element_value, "stddev_minute");
        if (!label || !mean || !stddev)
          return parse_error("snapshot: malformed element entry");
        patterns::TimedElement element;
        element.label = static_cast<mining::Item>((*label)->as_int());
        element.mean_minute = (*mean)->as_double();
        element.stddev_minute = (*stddev)->as_double();
        pattern.elements.push_back(element);
      }
      user.patterns.push_back(std::move(pattern));
    }
    if (const json::Value* closed = user_value.find("closed"); closed != nullptr) {
      if (!closed->is_bool()) return parse_error("snapshot: 'closed' must be a bool");
      user.closed_only = closed->as_bool();
    }
    if (user.closed_only) {
      auto frequent = member(user_value, "frequent_patterns");
      auto index = member(user_value, "placement_index");
      if (!frequent || !index) return parse_error("snapshot: malformed compact entry");
      if (!(*frequent)->is_int() || !(*index)->is_array())
        return parse_error("snapshot: malformed compact entry");
      user.frequent_patterns = static_cast<std::size_t>((*frequent)->as_int());
      for (const json::Value& candidate_value : (*index)->as_array()) {
        auto label = member(candidate_value, "label");
        auto minute = member(candidate_value, "minute");
        auto rank = member(candidate_value, "rank");
        auto count = member(candidate_value, "support_count");
        auto support = member(candidate_value, "support");
        if (!label || !minute || !rank || !count || !support)
          return parse_error("snapshot: malformed placement candidate");
        if (!(*label)->is_int() || !(*minute)->is_int() || !(*rank)->is_int() ||
            !(*count)->is_int() || !(*support)->is_number())
          return parse_error("snapshot: malformed placement candidate");
        patterns::PlacementCandidate candidate;
        candidate.label = static_cast<mining::Item>((*label)->as_int());
        candidate.minute = static_cast<std::uint16_t>((*minute)->as_int());
        candidate.rank = static_cast<std::uint32_t>((*rank)->as_int());
        candidate.support_count = static_cast<std::uint32_t>((*count)->as_int());
        candidate.support = (*support)->as_double();
        user.placement_index.push_back(candidate);
      }
    }
    out.push_back(std::move(user));
  }
  return out;
}

json::Value config_to_json(const PlatformConfig& config) {
  return json::object(
      {{"version", 1},
       {"seed", static_cast<std::int64_t>(config.seed)},
       {"small_corpus", config.small_corpus},
       {"experiment_start", config.experiment_start},
       {"experiment_end", config.experiment_end},
       {"min_active_days", config.min_active_days},
       {"max_gap_seconds", config.max_gap_seconds},
       {"label_mode", static_cast<int>(config.sequences.mode)},
       {"collapse_repeats", config.sequences.collapse_repeats},
       {"min_day_length", static_cast<std::int64_t>(config.sequences.min_day_length)},
       {"min_support", config.mining.min_support},
       {"max_pattern_length", static_cast<std::int64_t>(config.mining.max_pattern_length)},
       {"grid_cell_meters", config.grid_cell_meters},
       {"window_minutes", config.crowd.window_minutes},
       {"min_pattern_support", config.crowd.min_pattern_support}});
}

Result<PlatformConfig> config_from_json(const json::Value& value) {
  PlatformConfig config;
  const auto get_int = [&](std::string_view key, auto& slot) -> Status {
    auto field = member(value, key);
    if (!field) return field.status();
    if (!(*field)->is_int())
      return parse_error(crowdweb::format("snapshot: '{}' must be an integer", key));
    slot = static_cast<std::decay_t<decltype(slot)>>((*field)->as_int());
    return Status::ok();
  };
  const auto get_double = [&](std::string_view key, double& slot) -> Status {
    auto field = member(value, key);
    if (!field) return field.status();
    if (!(*field)->is_number())
      return parse_error(crowdweb::format("snapshot: '{}' must be a number", key));
    slot = (*field)->as_double();
    return Status::ok();
  };
  const auto get_bool = [&](std::string_view key, bool& slot) -> Status {
    auto field = member(value, key);
    if (!field) return field.status();
    if (!(*field)->is_bool())
      return parse_error(crowdweb::format("snapshot: '{}' must be a bool", key));
    slot = (*field)->as_bool();
    return Status::ok();
  };

  std::int64_t version = 0;
  Status status = get_int("version", version);
  if (!status.is_ok()) return status;
  if (version != 1) return parse_error("snapshot: unsupported config version");

  int label_mode = 0;
  for (const Status& step :
       {get_int("seed", config.seed), get_bool("small_corpus", config.small_corpus),
        get_int("experiment_start", config.experiment_start),
        get_int("experiment_end", config.experiment_end),
        get_int("min_active_days", config.min_active_days),
        get_int("max_gap_seconds", config.max_gap_seconds),
        get_int("label_mode", label_mode),
        get_bool("collapse_repeats", config.sequences.collapse_repeats),
        get_int("min_day_length", config.sequences.min_day_length),
        get_double("min_support", config.mining.min_support),
        get_int("max_pattern_length", config.mining.max_pattern_length),
        get_double("grid_cell_meters", config.grid_cell_meters),
        get_int("window_minutes", config.crowd.window_minutes),
        get_double("min_pattern_support", config.crowd.min_pattern_support)}) {
    if (!step.is_ok()) return step;
  }
  if (label_mode < 0 || label_mode > 2)
    return parse_error("snapshot: label_mode out of range");
  config.sequences.mode = static_cast<mining::LabelMode>(label_mode);
  return config;
}

Status save_snapshot(const Platform& platform, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return io_error(crowdweb::format("cannot create '{}': {}", directory, ec.message()));

  const data::Taxonomy& taxonomy = platform.taxonomy();
  Status status = data::write_file(directory + "/venues.csv",
                                   data::venues_to_csv(platform.full_dataset(), taxonomy));
  if (!status.is_ok()) return status;
  status = data::write_file(directory + "/checkins.csv",
                            data::checkins_to_csv(platform.full_dataset(), taxonomy));
  if (!status.is_ok()) return status;
  status = data::write_file(directory + "/mobility.json",
                            json::dump(mobility_to_json(platform.mobility())));
  if (!status.is_ok()) return status;
  return data::write_file(directory + "/config.json",
                          json::dump(config_to_json(platform.config())));
}

Result<Platform> load_snapshot(const std::string& directory) {
  auto venues = data::read_file(directory + "/venues.csv");
  if (!venues) return venues.status();
  auto checkins = data::read_file(directory + "/checkins.csv");
  if (!checkins) return checkins.status();
  auto mobility_text = data::read_file(directory + "/mobility.json");
  if (!mobility_text) return mobility_text.status();
  auto config_text = data::read_file(directory + "/config.json");
  if (!config_text) return config_text.status();

  auto dataset = data::dataset_from_csv(*venues, *checkins, data::Taxonomy::foursquare());
  if (!dataset) return dataset.status();
  auto mobility_json = json::parse(*mobility_text);
  if (!mobility_json) return mobility_json.status();
  auto mobility = mobility_from_json(*mobility_json);
  if (!mobility) return mobility.status();
  auto config_json = json::parse(*config_text);
  if (!config_json) return config_json.status();
  auto config = config_from_json(*config_json);
  if (!config) return config.status();

  return Platform::restore(std::move(dataset).value(), std::move(mobility).value(),
                           *config);
}

}  // namespace crowdweb::core

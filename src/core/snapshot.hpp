// Platform snapshots: persist phase-2 output and restore without mining.
//
// A deployment mines once and serves many sessions; snapshots make the
// expensive phase restartable. A snapshot directory holds
//   venues.csv / checkins.csv   the full corpus (interchange format)
//   mobility.json               every user's time-annotated patterns
//   config.json                 the PlatformConfig that produced them
// `load_snapshot` re-runs phases 1 and 3 (cheap, deterministic) and
// validates that the stored mobility matches the preprocessed user set.
#pragma once

#include <string>
#include <vector>

#include "core/platform.hpp"
#include "json/json.hpp"

namespace crowdweb::core {

/// Serializes mined mobility (phase-2 output) to JSON.
[[nodiscard]] json::Value mobility_to_json(std::span<const patterns::UserMobility> mobility);

/// Inverse of `mobility_to_json`.
[[nodiscard]] Result<std::vector<patterns::UserMobility>> mobility_from_json(
    const json::Value& value);

/// Serializes the platform configuration.
[[nodiscard]] json::Value config_to_json(const PlatformConfig& config);

/// Inverse of `config_to_json`.
[[nodiscard]] Result<PlatformConfig> config_from_json(const json::Value& value);

/// Writes the snapshot directory (created if missing).
[[nodiscard]] Status save_snapshot(const Platform& platform, const std::string& directory);

/// Restores a platform from a snapshot directory: loads the corpus,
/// re-runs preprocessing and crowd synchronization, and adopts the stored
/// patterns (no mining). Fails if the stored mobility does not cover the
/// preprocessed user set.
[[nodiscard]] Result<Platform> load_snapshot(const std::string& directory);

}  // namespace crowdweb::core

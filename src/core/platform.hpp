// The CrowdWeb platform facade.
//
// Wires the three phases of Figure 2 into one object:
//   1. data acquisition & pre-processing — synthesize (or accept) a
//      check-in corpus, restrict it to the experiment window, and select
//      active users;
//   2. individual mobility pattern detection — modified PrefixSpan per
//      user;
//   3. crowd synchronization & aggregation — the queryable CrowdModel.
// Everything downstream (examples, HTTP API, benches) talks to this
// class. A built Platform is immutable, so concurrent readers are safe.
#pragma once

#include <memory>
#include <string>
#include <optional>
#include <span>
#include <vector>

#include "crowd/model.hpp"
#include "data/dataset.hpp"
#include "patterns/mobility.hpp"
#include "patterns/place_graph.hpp"
#include "store/store.hpp"
#include "synth/generator.hpp"
#include "telemetry/metrics.hpp"
#include "util/civil_time.hpp"
#include "util/status.hpp"

namespace crowdweb::core {

struct PlatformConfig {
  std::uint64_t seed = 42;
  /// Generate the small fast corpus instead of the paper-scale one.
  bool small_corpus = false;

  // Phase 1 — pre-processing (Section I.1). Literal epoch seconds keep
  // the default constructor constexpr-friendly (and dodge a GCC 12
  // -Wdangling-pointer false positive on the CivilTime temporary).
  std::int64_t experiment_start = 1'333'238'400;  // 2012-04-01 00:00:00
  std::int64_t experiment_end = 1'341'100'800;    // 2012-07-01 00:00:00
  /// Keep users active on more than this many days in the window.
  int min_active_days = 50;
  /// 2h-gap richness rule (0 = any recorded day counts; see
  /// data::ActiveUserCriteria).
  std::int64_t max_gap_seconds = 0;

  // Phase 2 — pattern detection.
  mining::SequenceOptions sequences;
  mining::MiningOptions mining;
  /// Worker threads for per-user mining (0 = hardware concurrency,
  /// 1 = sequential). Output is identical either way.
  unsigned mining_threads = 0;

  // Phase 3 — crowd model.
  double grid_cell_meters = 500.0;
  crowd::CrowdOptions crowd;

  /// Telemetry registry the batch build records onto
  /// (crowdweb_platform_build_stage_duration_seconds{stage}; see
  /// docs/OBSERVABILITY.md). Must outlive the create()/from_*() call.
  /// Null disables platform build telemetry (PhaseTimings still fills).
  telemetry::Registry* metrics = nullptr;

  /// Durable storage for the live ingestion worker: WAL + checkpoints
  /// under `store.dir` (empty = durability off). Consumed by
  /// make_ingest_worker — a worker built from this platform inherits it
  /// unless its own config names a directory. The batch pipeline itself
  /// never touches the store.
  store::StoreConfig store;
};

/// Wall-clock cost of each phase, for the pipeline bench.
struct PhaseTimings {
  double acquisition_ms = 0.0;
  double mining_ms = 0.0;
  double crowd_ms = 0.0;
};

class Platform {
 public:
  /// Generates a synthetic corpus per `config` and runs all phases.
  static Result<Platform> create(const PlatformConfig& config = {});

  /// Runs the pipeline on an externally supplied dataset (e.g. loaded
  /// from CSV).
  static Result<Platform> from_dataset(data::Dataset dataset, const PlatformConfig& config);

  /// Loads a dataset from the CSV interchange files (see
  /// data/dataset_io.hpp — the format `make_dataset` writes) and runs the
  /// pipeline on it.
  static Result<Platform> from_csv_files(const std::string& venues_path,
                                         const std::string& checkins_path,
                                         const PlatformConfig& config);

  /// Rebuilds a platform from a dataset plus *precomputed* phase-2 output
  /// (see core/snapshot.hpp): runs phases 1 and 3 but adopts `mobility`
  /// instead of mining. Fails when the stored mobility does not match the
  /// preprocessed user set.
  static Result<Platform> restore(data::Dataset dataset,
                                  std::vector<patterns::UserMobility> mobility,
                                  const PlatformConfig& config);

  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }
  [[nodiscard]] const data::Taxonomy& taxonomy() const noexcept;

  /// The full corpus before preprocessing.
  [[nodiscard]] const data::Dataset& full_dataset() const noexcept { return full_; }
  /// The experiment corpus: window-restricted, active users only.
  [[nodiscard]] const data::Dataset& experiment_dataset() const noexcept {
    return experiment_;
  }

  [[nodiscard]] std::span<const patterns::UserMobility> mobility() const noexcept {
    return mobility_;
  }
  /// A single user's mined mobility (nullptr when unknown).
  [[nodiscard]] const patterns::UserMobility* user_mobility(data::UserId user) const noexcept;

  [[nodiscard]] const geo::SpatialGrid& grid() const noexcept { return *grid_; }
  [[nodiscard]] const crowd::CrowdModel& crowd_model() const noexcept { return *crowd_; }
  [[nodiscard]] const PhaseTimings& timings() const noexcept { return timings_; }

  /// Rebuilds a user's day-sequence database (phase 2 input).
  [[nodiscard]] mining::UserSequences sequences_for(data::UserId user) const;

  /// Builds a user's place graph restricted to their mined patterns.
  [[nodiscard]] patterns::PlaceGraph place_graph(data::UserId user) const;

 private:
  Platform() = default;

  /// Runs the pipeline. When `precomputed` is non-null its contents are
  /// adopted as the phase-2 output (after validation) instead of mining.
  Status run_pipeline(data::Dataset full,
                      std::vector<patterns::UserMobility>* precomputed = nullptr);

  PlatformConfig config_;
  data::Dataset full_;
  data::Dataset experiment_;
  std::vector<patterns::UserMobility> mobility_;
  std::optional<geo::SpatialGrid> grid_;
  std::optional<crowd::CrowdModel> crowd_;
  PhaseTimings timings_;
};

}  // namespace crowdweb::core

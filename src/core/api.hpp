// The CrowdWeb HTTP API — every interaction of the demo UI as a route.
//
//   GET /                           embedded single-page viewer
//   GET /api/status                 corpus + pipeline summary
//   GET /api/users                  users with pattern counts
//   GET /api/user/:id/patterns      a user's mined mobility patterns
//   GET /api/user/:id/graph.svg     the user's place graph (iMAP view)
//   GET /api/user/:id/timeline.svg  the user's day-by-day visit timeline
//   GET /api/crowd/:window          crowd distribution of a time window
//   GET /api/crowd/:window/map.svg  the smart-city map (Figures 3/4)
//   GET /api/crowd/:window/geojson  the distribution as GeoJSON
//   GET /api/groups/:window         user groups per (cell, label)
//   GET /api/flow/:from/:to         movements between two windows
//   GET /api/flow/:from/:to/map.svg flow arrows over the city
//   GET /api/animation.svg          animated crowd movement (full day);
//                                   ?seconds=S scales playback speed
//   GET /api/communities            co-occurrence communities of the crowd
//   POST /api/analyze               mine an uploaded check-in history (the
//                                   demo's "share your check-ins" booth
//                                   feature); body = CSV with header
//                                   category,lat,lon,timestamp and
//                                   ?support=S sets min_support
//
// The router holds a pointer to the Platform, which must outlive any
// server using the router. Platform state is immutable after
// construction, so the single-threaded server needs no locks.
#pragma once

#include "core/platform.hpp"
#include "http/router.hpp"

namespace crowdweb::core {

/// Builds the full API router over a platform.
[[nodiscard]] http::Router make_api_router(const Platform& platform);

}  // namespace crowdweb::core

// The CrowdWeb HTTP API — every interaction of the demo UI as a route.
//
//   GET /                           embedded single-page viewer
//   GET /api/status                 corpus + pipeline summary
//   GET /metrics                    Prometheus text exposition (with
//                                   ApiOptions::metrics attached)
//   GET /api/users                  users with pattern counts
//   GET /api/user/:id/patterns      a user's mined mobility patterns
//   GET /api/user/:id/graph.svg     the user's place graph (iMAP view)
//   GET /api/user/:id/timeline.svg  the user's day-by-day visit timeline
//   GET /api/crowd/:window          crowd distribution of a time window
//   GET /api/crowd/:window/map.svg  the smart-city map (Figures 3/4)
//   GET /api/crowd/:window/geojson  the distribution as GeoJSON
//   GET /api/groups/:window         user groups per (cell, label)
//   GET /api/flow/:from/:to         movements between two windows
//   GET /api/flow/:from/:to/map.svg flow arrows over the city
//   GET /api/animation.svg          animated crowd movement (full day);
//                                   ?seconds=S scales playback speed
//   GET /api/communities            co-occurrence communities of the crowd
//   POST /api/analyze               mine an uploaded check-in history (the
//                                   demo's "share your check-ins" booth
//                                   feature); body = CSV with header
//                                   category,lat,lon,timestamp and
//                                   ?support=S sets min_support
//
// With an IngestWorker attached (ApiOptions::ingest) the API turns live:
//
//   POST /api/ingest                submit check-ins to the live corpus;
//                                   body = CSV with header
//                                   [user,]category,lat,lon,timestamp;
//                                   429 when the queue rejects everything
//   GET /api/ingest/stats           queue depth, accept/reject/invalid
//                                   counts, epochs, rebuild latency
//
// and with ApiOptions::stream the push routes (SSE; transport/sse.hpp):
//
//   GET /api/stream/epochs          one "epoch" event per published epoch
//   GET /api/stream/crowd/:window   that window's crowd distribution,
//                                   re-sent on every epoch
//
// and every crowd-facing route (crowd/groups/flow/animation/rhythm)
// reads the worker's latest published snapshot instead of the batch
// platform: handlers load one atomic shared_ptr per request — no locks —
// and keep that epoch alive until the response is built.
//
// The router holds a pointer to the Platform, which must outlive any
// server using the router. Platform state is immutable after
// construction and snapshots are immutable once published, so handlers
// are safe to run concurrently on the server's worker pool without
// locks. Routes whose responses are a pure function of (target, epoch)
// are registered with Router::get_cached so a ResponseCache may serve
// them (see http/cache.hpp); /api/status, /metrics, and the ingest
// routes are deliberately uncached.
#pragma once

#include <functional>
#include <memory>

#include "core/platform.hpp"
#include "http/router.hpp"
#include "http/server.hpp"
#include "ingest/worker.hpp"
#include "telemetry/metrics.hpp"
#include "transport/pipeline.hpp"
#include "transport/sse.hpp"

namespace crowdweb::core {

struct ApiOptions {
  /// Live mode: serve crowd routes from this worker's snapshot hub and
  /// register the /api/ingest* routes. The worker must outlive the
  /// router. Null = static batch platform only.
  ingest::IngestWorker* ingest = nullptr;
  /// Late-bound source of http::ServerStats for /api/status. The router
  /// is built before the server that owns it exists, so the example
  /// fills the inner function in after constructing the Server.
  std::shared_ptr<std::function<http::ServerStats()>> server_stats;
  /// Registers `GET /metrics` (Prometheus text exposition) over this
  /// registry and mirrors it as a "telemetry" block in /api/status. The
  /// registry must outlive the router. Null disables both (no /metrics
  /// route). Share the same registry with ServerConfig::metrics,
  /// IngestWorkerConfig::metrics, and PlatformConfig::metrics so one
  /// scrape covers every subsystem.
  telemetry::Registry* metrics = nullptr;
  /// The response cache the server serves cacheable routes from (the
  /// same object as ServerConfig::cache). Surfaces hit/miss/byte
  /// counters and the current epoch as an "http.cache" block in
  /// /api/status. Must outlive the router. Null = no cache block.
  const http::ResponseCache* cache = nullptr;
  /// Resolved ServerConfig::worker_threads, reported as "http.workers"
  /// in /api/status (0 = inline handlers on the event loop).
  int http_workers = 0;
  /// Transport pipeline for POST /api/ingest (live mode only). When set,
  /// the route is served through a transport::HttpCsvSource, so bursts
  /// the queue rejects spill to the pipeline's disk spool instead of
  /// bouncing back as 429s, and the route shares the
  /// crowdweb_transport_* accounting with the binary listeners. Must
  /// outlive the router. Null = direct worker submit (no spool).
  transport::IngestPipeline* pipeline = nullptr;
  /// Registers the SSE routes GET /api/stream/epochs and
  /// GET /api/stream/crowd/:window (live mode only). The routes only
  /// subscribe connections; pair with attach_stream_publisher() once the
  /// Server exists so published epochs actually fan out.
  bool stream = false;
};

/// Builds the full API router over a platform.
[[nodiscard]] http::Router make_api_router(const Platform& platform,
                                           ApiOptions options = {});

/// Hooks the worker's snapshot hub and fans one "epoch" event (plus a
/// "crowd" event per subscribed window channel) into the server's SSE
/// streams on every publication. Call after constructing the Server
/// whose router was built with ApiOptions::stream; destroy the returned
/// publisher before the server. With `cache` (the same object as
/// ServerConfig::cache), crowd payloads are rendered through it, so the
/// SSE event and the GET /api/crowd/:window body are one render —
/// register the cache's set_epoch hook before calling this.
[[nodiscard]] std::unique_ptr<transport::EpochStreamPublisher> attach_stream_publisher(
    http::Server& server, const Platform& platform, ingest::IngestWorker& worker,
    http::ResponseCache* cache = nullptr);

/// Builds an ingestion worker seeded with the platform's experiment
/// corpus and mined mobility (copied), inheriting its phase-2/3
/// configuration. The worker keeps a reference to the platform's
/// taxonomy, so the platform must outlive the worker.
[[nodiscard]] std::unique_ptr<ingest::IngestWorker> make_ingest_worker(
    const Platform& platform, ingest::IngestWorkerConfig config = {});

}  // namespace crowdweb::core

// RAII stage timing.
//
// ScopedTimer measures wall time on the steady clock and records it —
// in seconds, the Prometheus base unit — into a Histogram when it is
// stopped or destroyed, whichever comes first. Typical use brackets one
// pipeline stage:
//
//   {
//     ScopedTimer timer(stage_seconds.with_labels({"mine"}));
//     remine_pending_users();
//   }  // observation recorded here
//
// stop() records early and returns the elapsed seconds so callers can
// reuse the measurement (e.g. to also set a "last duration" gauge).
// A timer whose histogram is null is inert — instruments stay cheap to
// disable.
#pragma once

#include <chrono>

#include "telemetry/metrics.hpp"

namespace crowdweb::telemetry {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  /// Inert when `histogram` is null.
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records the observation (once) and returns the elapsed seconds.
  /// Subsequent calls return 0 without recording.
  double stop() noexcept {
    if (histogram_ == nullptr) return 0.0;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    histogram_->observe(seconds);
    histogram_ = nullptr;
    return seconds;
  }

  /// Abandons the measurement without recording.
  void cancel() noexcept { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace crowdweb::telemetry

#include "telemetry/metrics.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace crowdweb::telemetry {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) cells_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  cells_[index].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    total += cells_[i].load(std::memory_order_relaxed);
  return total;
}

std::vector<double> default_latency_buckets() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,   0.25,   0.5,   1.0,  2.5};
}

std::vector<double> default_duration_buckets() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,  0.5,    1.0,   2.5,  5.0,   10.0, 30.0};
}

// ---------------------------------------------------------------------------
// Family

template <typename T>
std::unique_ptr<T> Family<T>::make_series() const {
  if constexpr (std::is_same_v<T, Histogram>) {
    return std::make_unique<Histogram>(bounds_);
  } else {
    return std::make_unique<T>();
  }
}

template <typename T>
T& Family<T>::with_labels(const std::vector<std::string>& label_values) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(label_values);
  if (it != series_.end()) return *it->second;
  if (label_values.size() != label_names_.size() || series_.size() >= max_series_) {
    // Wrong arity or past the cardinality cap: collapse into the shared
    // overflow series so the exported series set stays bounded.
    if (dropped_ != nullptr) dropped_->increment();
    std::vector<std::string> overflow(label_names_.size(), "other");
    const auto overflow_it = series_.find(overflow);
    if (overflow_it != series_.end()) return *overflow_it->second;
    return *series_.emplace(std::move(overflow), make_series()).first->second;
  }
  return *series_.emplace(label_values, make_series()).first->second;
}

template <typename T>
std::size_t Family<T>::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

template <typename T>
std::uint64_t Family<T>::total() const
  requires std::is_same_v<T, Counter>
{
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [labels, series] : series_) sum += series->value();
  return sum;
}

template <typename T>
std::vector<std::pair<std::vector<std::string>, const T*>> Family<T>::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::vector<std::string>, const T*>> out;
  out.reserve(series_.size());
  for (const auto& [labels, series] : series_) out.emplace_back(labels, series.get());
  return out;
}

template class Family<Counter>;
template class Family<Gauge>;
template class Family<Histogram>;

// ---------------------------------------------------------------------------
// Registry

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

Registry::Registry() = default;

Registry::Entry* Registry::find_locked(const std::string& name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Registry::Entry& Registry::emplace_locked(std::string name, std::string help, Kind kind) {
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

namespace {

/// Label-name sanity: reject invalid identifiers early so exposition
/// can never emit an unparsable line.
bool valid_label_names(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    if (!valid_metric_name(name) || name.starts_with("__")) return false;
  }
  return true;
}

}  // namespace

CounterFamily& Registry::counter_family(const std::string& name, const std::string& help,
                                        std::vector<std::string> label_names,
                                        std::size_t max_series) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry* existing = find_locked(name);
  if (existing != nullptr && existing->kind == Kind::kCounter) return *existing->counters;
  const bool shadow = existing != nullptr || !valid_metric_name(name) ||
                      !valid_label_names(label_names);
  if (shadow)
    log_error("telemetry: counter '{}' conflicts with an existing metric or has an "
              "invalid name; returning a detached family",
              name);
  Entry& entry = shadow ? *shadows_.emplace_back(std::make_unique<Entry>())
                        : emplace_locked(name, help, Kind::kCounter);
  entry.name = name;
  entry.kind = Kind::kCounter;
  entry.counters.reset(
      new CounterFamily(name, std::move(label_names), max_series, &dropped_));
  return *entry.counters;
}

GaugeFamily& Registry::gauge_family(const std::string& name, const std::string& help,
                                    std::vector<std::string> label_names,
                                    std::size_t max_series) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry* existing = find_locked(name);
  if (existing != nullptr && existing->kind == Kind::kGauge) return *existing->gauges;
  const bool shadow = existing != nullptr || !valid_metric_name(name) ||
                      !valid_label_names(label_names);
  if (shadow)
    log_error("telemetry: gauge '{}' conflicts with an existing metric or has an "
              "invalid name; returning a detached family",
              name);
  Entry& entry = shadow ? *shadows_.emplace_back(std::make_unique<Entry>())
                        : emplace_locked(name, help, Kind::kGauge);
  entry.name = name;
  entry.kind = Kind::kGauge;
  entry.gauges.reset(new GaugeFamily(name, std::move(label_names), max_series, &dropped_));
  return *entry.gauges;
}

HistogramFamily& Registry::histogram_family(const std::string& name, const std::string& help,
                                            std::vector<std::string> label_names,
                                            std::vector<double> bounds,
                                            std::size_t max_series) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry* existing = find_locked(name);
  if (existing != nullptr && existing->kind == Kind::kHistogram)
    return *existing->histograms;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const bool shadow = existing != nullptr || !valid_metric_name(name) ||
                      !valid_label_names(label_names);
  if (shadow)
    log_error("telemetry: histogram '{}' conflicts with an existing metric or has an "
              "invalid name; returning a detached family",
              name);
  Entry& entry = shadow ? *shadows_.emplace_back(std::make_unique<Entry>())
                        : emplace_locked(name, help, Kind::kHistogram);
  entry.name = name;
  entry.kind = Kind::kHistogram;
  entry.histograms.reset(new HistogramFamily(name, std::move(label_names), max_series,
                                             &dropped_, std::move(bounds)));
  return *entry.histograms;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  return counter_family(name, help, {}).with_labels({});
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  return gauge_family(name, help, {}).with_labels({});
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds) {
  return histogram_family(name, help, {}, std::move(bounds)).with_labels({});
}

void Registry::gauge_callback(const std::string& name, const std::string& help,
                              std::function<double()> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!valid_metric_name(name)) {
    log_error("telemetry: invalid callback gauge name '{}'; ignored", name);
    return;
  }
  Entry* existing = find_locked(name);
  if (existing != nullptr) {
    if (existing->kind != Kind::kCallbackGauge) {
      log_error("telemetry: callback gauge '{}' conflicts with an existing metric; ignored",
                name);
      return;
    }
    existing->callback = std::move(fn);
    return;
  }
  Entry& entry = emplace_locked(name, help, Kind::kCallbackGauge);
  entry.callback = std::move(fn);
}

bool Registry::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name == name) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace crowdweb::telemetry

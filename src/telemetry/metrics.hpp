// Lock-cheap metrics registry: the one accounting system for the
// CrowdWeb service.
//
// Instruments register metrics once (under a registry mutex) and then
// update them through plain atomic cells — counters, gauges, and
// fixed-bucket histograms never take a lock on the hot path. Labeled
// families resolve a label-value tuple to its cell under a family mutex;
// hot paths are expected to cache the returned reference (label sets are
// stable for the registry's lifetime), so the lookup happens once per
// (instrument, label set), not per event.
//
// Two exposition formats are rendered on demand (see exposition.hpp):
// Prometheus text format for `GET /metrics` and a JSON mirror folded
// into `/api/status`.
//
// Cardinality is bounded by construction: every family carries a
// max-series cap, and label sets beyond the cap collapse into a single
// overflow series (label values "other") while a registry-wide
// `crowdweb_telemetry_dropped_label_sets_total` counter records the
// collapse. Callers must still label with *patterns* (e.g. the router's
// "/api/crowd/:window"), never raw request data — the cap is a backstop,
// not a license.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace crowdweb::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, active connections).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with one atomic cell per bucket.
///
/// `bounds` are the inclusive upper bounds of the finite buckets, sorted
/// ascending; an implicit +Inf bucket catches the rest. observe() is two
/// relaxed atomic RMWs (cell + sum). Snapshots read the cells without
/// stopping writers, so a scrape may be at most a few observations out
/// of sync between sum and count — each counter is individually exact.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  [[nodiscard]] std::uint64_t cell(std::size_t index) const noexcept {
    return cells_[index].load(std::memory_order_relaxed);
  }
  /// Total observations (sum of all cells).
  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Sum of observed values.
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Default buckets for request-level latencies (seconds, 0.5 ms .. 2.5 s).
[[nodiscard]] std::vector<double> default_latency_buckets();
/// Default buckets for batch/rebuild durations (seconds, 1 ms .. 30 s).
[[nodiscard]] std::vector<double> default_duration_buckets();

/// A set of series sharing one metric name, distinguished by label
/// values. `T` is Counter, Gauge, or Histogram.
template <typename T>
class Family {
 public:
  /// Resolves (creating on first use) the series for `label_values`,
  /// which must match the family's label names positionally. Past the
  /// series cap, returns the shared overflow series ("other", ...).
  /// Thread-safe; cache the reference on hot paths.
  T& with_labels(const std::vector<std::string>& label_values);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& label_names() const noexcept {
    return label_names_;
  }
  /// Number of live series (racy snapshot).
  [[nodiscard]] std::size_t series_count() const;
  /// Sum of values across all series (counters only; used by legacy
  /// stats accessors).
  [[nodiscard]] std::uint64_t total() const
    requires std::is_same_v<T, Counter>;

  /// Ordered (label values, series) snapshot for exposition.
  [[nodiscard]] std::vector<std::pair<std::vector<std::string>, const T*>> snapshot() const;

 private:
  friend class Registry;
  Family(std::string name, std::vector<std::string> label_names, std::size_t max_series,
         Counter* dropped, std::vector<double> bounds = {})
      : name_(std::move(name)),
        label_names_(std::move(label_names)),
        max_series_(max_series),
        dropped_(dropped),
        bounds_(std::move(bounds)) {}

  std::unique_ptr<T> make_series() const;

  const std::string name_;
  const std::vector<std::string> label_names_;
  const std::size_t max_series_;
  Counter* const dropped_;              ///< registry-wide drop counter
  const std::vector<double> bounds_;    ///< histogram families only
  mutable std::mutex mutex_;
  std::map<std::vector<std::string>, std::unique_ptr<T>> series_;
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;
using HistogramFamily = Family<Histogram>;

/// The registry: owns every metric family plus scrape-time callback
/// gauges. Registration is idempotent — asking for an existing name with
/// the same kind returns the existing family; a kind mismatch is a
/// programming error (logged, and a detached shadow family is returned
/// so the process keeps running).
///
/// Lifetime: instruments hand out references into the registry, so the
/// registry must outlive every component it meters (server, worker,
/// platform build).
class Registry {
 public:
  static constexpr std::size_t kDefaultMaxSeries = 256;

  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  CounterFamily& counter_family(const std::string& name, const std::string& help,
                                std::vector<std::string> label_names,
                                std::size_t max_series = kDefaultMaxSeries);
  GaugeFamily& gauge_family(const std::string& name, const std::string& help,
                            std::vector<std::string> label_names,
                            std::size_t max_series = kDefaultMaxSeries);
  HistogramFamily& histogram_family(const std::string& name, const std::string& help,
                                    std::vector<std::string> label_names,
                                    std::vector<double> bounds,
                                    std::size_t max_series = kDefaultMaxSeries);

  /// Unlabeled conveniences: the family's single series.
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds);

  /// A gauge whose value is sampled at scrape time. Re-registering the
  /// same name replaces the callback (restart-friendly). The callback
  /// must stay valid until remove()d or the registry dies; it runs under
  /// the registry mutex, so it must not call back into this registry.
  void gauge_callback(const std::string& name, const std::string& help,
                      std::function<double()> fn);

  /// Unregisters a metric by name (components with scrape-time
  /// callbacks call this from their destructor). Returns false when the
  /// name is unknown.
  bool remove(const std::string& name);

  /// Counter of label sets collapsed into overflow series.
  [[nodiscard]] std::uint64_t dropped_label_sets() const noexcept {
    return dropped_.value();
  }

 private:
  // Renderers (exposition.hpp) walk the entries under the mutex.
  friend class ExpositionWalker;

  enum class Kind { kCounter, kGauge, kHistogram, kCallbackGauge };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<CounterFamily> counters;
    std::unique_ptr<GaugeFamily> gauges;
    std::unique_ptr<HistogramFamily> histograms;
    std::function<double()> callback;
  };

  Entry* find_locked(const std::string& name);
  Entry& emplace_locked(std::string name, std::string help, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< insertion order
  Counter dropped_;
  /// Families returned on kind mismatch, detached from exposition.
  std::vector<std::unique_ptr<Entry>> shadows_;
};

/// True when `name` is a valid Prometheus metric/label identifier.
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;

}  // namespace crowdweb::telemetry

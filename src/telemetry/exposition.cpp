#include "telemetry/exposition.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace crowdweb::telemetry {

namespace {

/// Shortest round-trip decimal for a double, with Prometheus spellings
/// for the specials.
std::string number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  return ec == std::errc() ? std::string(buffer, end) : std::string("NaN");
}

std::string number(std::uint64_t value) {
  char buffer[24];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  return ec == std::errc() ? std::string(buffer, end) : std::string("0");
}

/// Escapes a label value: backslash, double quote, newline.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Renders `{a="x",b="y"}` (empty when there are no labels). `extra` is
/// an optional trailing pair rendered verbatim-escaped (used for `le`).
std::string label_block(const std::vector<std::string>& names,
                        const std::vector<std::string>& values,
                        std::string_view extra_name = {}, std::string_view extra_value = {}) {
  if (names.empty() && extra_name.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
    out += "=\"";
    append_escaped(out, i < values.size() ? values[i] : std::string());
    out += '"';
  }
  if (!extra_name.empty()) {
    if (!names.empty()) out += ',';
    out += extra_name;
    out += "=\"";
    append_escaped(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

void append_header(std::string& out, const std::string& name, const std::string& help,
                   std::string_view type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  for (const char c : help) {  // HELP escapes backslash and newline only
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  out += '\n';
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

json::Value labels_json(const std::vector<std::string>& names,
                        const std::vector<std::string>& values) {
  json::Value labels = json::Value(json::Object{});
  for (std::size_t i = 0; i < names.size(); ++i)
    labels.set(names[i], i < values.size() ? values[i] : std::string());
  return labels;
}

}  // namespace

/// Friend of Registry: walks the entries under the registry mutex and
/// renders each family in registration order.
class ExpositionWalker {
 public:
  static std::string prometheus(const Registry& registry) {
    const std::lock_guard<std::mutex> lock(registry.mutex_);
    std::string out;
    out.reserve(4096);
    for (const auto& entry : registry.entries_) {
      switch (entry->kind) {
        case Registry::Kind::kCounter: {
          append_header(out, entry->name, entry->help, "counter");
          for (const auto& [values, series] : entry->counters->snapshot()) {
            out += entry->name;
            out += label_block(entry->counters->label_names(), values);
            out += ' ';
            out += number(series->value());
            out += '\n';
          }
          break;
        }
        case Registry::Kind::kGauge: {
          append_header(out, entry->name, entry->help, "gauge");
          for (const auto& [values, series] : entry->gauges->snapshot()) {
            out += entry->name;
            out += label_block(entry->gauges->label_names(), values);
            out += ' ';
            out += number(series->value());
            out += '\n';
          }
          break;
        }
        case Registry::Kind::kCallbackGauge: {
          append_header(out, entry->name, entry->help, "gauge");
          out += entry->name;
          out += ' ';
          out += number(entry->callback ? entry->callback() : 0.0);
          out += '\n';
          break;
        }
        case Registry::Kind::kHistogram: {
          append_header(out, entry->name, entry->help, "histogram");
          const auto& names = entry->histograms->label_names();
          for (const auto& [values, series] : entry->histograms->snapshot()) {
            const std::vector<double>& bounds = series->bounds();
            // One cell snapshot so cumulative buckets and _count agree.
            std::uint64_t cumulative = 0;
            std::vector<std::uint64_t> cells(bounds.size() + 1);
            for (std::size_t i = 0; i <= bounds.size(); ++i) cells[i] = series->cell(i);
            for (std::size_t i = 0; i < bounds.size(); ++i) {
              cumulative += cells[i];
              out += entry->name;
              out += "_bucket";
              out += label_block(names, values, "le", number(bounds[i]));
              out += ' ';
              out += number(cumulative);
              out += '\n';
            }
            cumulative += cells[bounds.size()];
            out += entry->name;
            out += "_bucket";
            out += label_block(names, values, "le", "+Inf");
            out += ' ';
            out += number(cumulative);
            out += '\n';
            out += entry->name;
            out += "_sum";
            out += label_block(names, values);
            out += ' ';
            out += number(series->sum());
            out += '\n';
            out += entry->name;
            out += "_count";
            out += label_block(names, values);
            out += ' ';
            out += number(cumulative);
            out += '\n';
          }
          break;
        }
      }
    }
    append_header(out, "crowdweb_telemetry_dropped_label_sets_total",
                  "Label sets collapsed into an overflow series by a family's "
                  "max-series cap.",
                  "counter");
    out += "crowdweb_telemetry_dropped_label_sets_total ";
    out += number(registry.dropped_.value());
    out += '\n';
    return out;
  }

  static json::Value json(const Registry& registry) {
    const std::lock_guard<std::mutex> lock(registry.mutex_);
    json::Value root = json::Value(json::Object{});
    for (const auto& entry : registry.entries_) {
      json::Value metric = json::Value(json::Object{});
      metric.set("help", entry->help);
      switch (entry->kind) {
        case Registry::Kind::kCounter: {
          metric.set("type", "counter");
          json::Value series_list = json::Value(json::Array{});
          for (const auto& [values, series] : entry->counters->snapshot()) {
            series_list.push_back(json::object(
                {{"labels", labels_json(entry->counters->label_names(), values)},
                 {"value", static_cast<std::int64_t>(series->value())}}));
          }
          metric.set("series", std::move(series_list));
          break;
        }
        case Registry::Kind::kGauge: {
          metric.set("type", "gauge");
          json::Value series_list = json::Value(json::Array{});
          for (const auto& [values, series] : entry->gauges->snapshot()) {
            series_list.push_back(json::object(
                {{"labels", labels_json(entry->gauges->label_names(), values)},
                 {"value", series->value()}}));
          }
          metric.set("series", std::move(series_list));
          break;
        }
        case Registry::Kind::kCallbackGauge: {
          metric.set("type", "gauge");
          metric.set("value", entry->callback ? entry->callback() : 0.0);
          break;
        }
        case Registry::Kind::kHistogram: {
          metric.set("type", "histogram");
          json::Value series_list = json::Value(json::Array{});
          for (const auto& [values, series] : entry->histograms->snapshot()) {
            const std::vector<double>& bounds = series->bounds();
            json::Value buckets = json::Value(json::Array{});
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < bounds.size(); ++i) {
              cumulative += series->cell(i);
              buckets.push_back(
                  json::object({{"le", bounds[i]},
                                {"count", static_cast<std::int64_t>(cumulative)}}));
            }
            cumulative += series->cell(bounds.size());
            series_list.push_back(json::object(
                {{"labels", labels_json(entry->histograms->label_names(), values)},
                 {"count", static_cast<std::int64_t>(cumulative)},
                 {"sum", series->sum()},
                 {"buckets", std::move(buckets)}}));
          }
          metric.set("series", std::move(series_list));
          break;
        }
      }
      root.set(entry->name, std::move(metric));
    }
    root.set("crowdweb_telemetry_dropped_label_sets_total",
             json::object({{"help",
                            "Label sets collapsed into an overflow series by a "
                            "family's max-series cap."},
                           {"type", "counter"},
                           {"value", static_cast<std::int64_t>(registry.dropped_.value())}}));
    return root;
  }
};

std::string render_prometheus(const Registry& registry) {
  return ExpositionWalker::prometheus(registry);
}

json::Value render_json(const Registry& registry) {
  return ExpositionWalker::json(registry);
}

}  // namespace crowdweb::telemetry

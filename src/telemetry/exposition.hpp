// Rendering a telemetry Registry for operators.
//
// Two views of the same state:
//   - render_prometheus(): Prometheus text exposition format 0.0.4
//     (the body of `GET /metrics`; serve it with content type
//     "text/plain; version=0.0.4; charset=utf-8");
//   - render_json(): the same families as a JSON object, folded into
//     `/api/status` under "telemetry".
//
// Rendering walks every family under the registry mutex and reads the
// atomic cells with relaxed loads: scrapes never stop writers, so a
// histogram's sum may trail its buckets by the handful of observations
// that landed mid-walk. Bucket counts are emitted cumulatively and
// `_count` is derived from the same cell snapshot, so the Prometheus
// histogram invariants (non-decreasing buckets, +Inf == count) hold for
// every scrape.
#pragma once

#include <string>

#include "json/json.hpp"
#include "telemetry/metrics.hpp"

namespace crowdweb::telemetry {

/// Prometheus text exposition of every registered family.
[[nodiscard]] std::string render_prometheus(const Registry& registry);

/// JSON mirror: {"metric_name": {"type": ..., "help": ..., "series": [...]}}.
[[nodiscard]] json::Value render_json(const Registry& registry);

/// The content type `GET /metrics` must answer with.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace crowdweb::telemetry

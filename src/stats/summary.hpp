// Descriptive statistics over samples.
//
// The evaluation reports means, medians, and distribution summaries
// (Section I.1 corpus statistics, Figures 5-8); this module provides the
// shared reductions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace crowdweb::stats {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Computes the summary; all fields are zero for an empty sample.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile, q in [0,1]; 0 for an empty sample.
[[nodiscard]] double quantile(std::span<const double> values, double q);

[[nodiscard]] double mean(std::span<const double> values) noexcept;
[[nodiscard]] double median(std::span<const double> values);

/// Pearson correlation of two equal-length samples (0 when degenerate).
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Two-sample Kolmogorov-Smirnov statistic: the supremum distance between
/// the empirical CDFs of `a` and `b`. 0 when either sample is empty.
/// Used to compare mobility distributions (jump lengths, radii) across
/// seeds or cities.
[[nodiscard]] double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Approximate two-sample KS test: true when the samples are consistent
/// with one distribution at significance `alpha` (0.05 or 0.01). Uses the
/// asymptotic critical value c(alpha) * sqrt((n+m)/(n*m)).
[[nodiscard]] bool ks_same_distribution(std::span<const double> a, std::span<const double> b,
                                        double alpha = 0.05);

/// Welford-style streaming accumulator for mean/variance.
class RunningStats {
 public:
  void add(double value) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace crowdweb::stats

#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/summary.hpp"

namespace crowdweb::stats {

double scott_bandwidth(std::span<const double> values) noexcept {
  if (values.size() < 2) return 1.0;
  const Summary s = summarize(values);
  const double n = static_cast<double>(values.size());
  const double h = 1.06 * s.stddev * std::pow(n, -0.2);
  return std::max(h, 1e-9);
}

double kde_at(std::span<const double> values, double x, double h) noexcept {
  if (values.empty() || h <= 0.0) return 0.0;
  const double norm =
      1.0 / (static_cast<double>(values.size()) * h * std::sqrt(2.0 * std::numbers::pi));
  double total = 0.0;
  for (const double v : values) {
    const double z = (x - v) / h;
    total += std::exp(-0.5 * z * z);
  }
  return norm * total;
}

DensityCurve kde_curve(std::span<const double> values, std::size_t points,
                       double bandwidth) {
  DensityCurve curve;
  if (values.empty() || points == 0) return curve;
  const double h = bandwidth > 0.0 ? bandwidth : scott_bandwidth(values);
  const double lo = *std::min_element(values.begin(), values.end()) - h;
  const double hi = *std::max_element(values.begin(), values.end()) + h;
  curve.x.reserve(points);
  curve.density.reserve(points);
  const double step = points > 1 ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    curve.x.push_back(x);
    curve.density.push_back(kde_at(values, x, h));
  }
  return curve;
}

}  // namespace crowdweb::stats

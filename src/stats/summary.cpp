#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace crowdweb::stats {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(values);
  double sq = 0.0;
  for (const double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  s.median = quantile(sorted, 0.5);
  s.p25 = quantile(sorted, 0.25);
  s.p75 = quantile(sorted, 0.75);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  // Sweep the merged order tracking both empirical CDFs.
  double max_distance = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    max_distance = std::max(
        max_distance, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  return max_distance;
}

bool ks_same_distribution(std::span<const double> a, std::span<const double> b,
                          double alpha) {
  if (a.empty() || b.empty()) return true;  // vacuous
  // c(alpha) = sqrt(-ln(alpha/2) / 2); 1.358 at 0.05, 1.628 at 0.01.
  const double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  const double n = static_cast<double>(a.size());
  const double m = static_cast<double>(b.size());
  const double critical = c * std::sqrt((n + m) / (n * m));
  return ks_statistic(a, b) <= critical;
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace crowdweb::stats

// Gaussian kernel density estimation.
//
// The paper's Figures 6 and 8 are seaborn-style distribution plots
// (histogram + smooth density); this provides the smooth curve.
#pragma once

#include <span>
#include <vector>

namespace crowdweb::stats {

/// A sampled density curve.
struct DensityCurve {
  std::vector<double> x;
  std::vector<double> density;
};

/// Scott's rule bandwidth: 1.06 * sigma * n^(-1/5); >= epsilon.
[[nodiscard]] double scott_bandwidth(std::span<const double> values) noexcept;

/// Evaluates the Gaussian KDE of `values` at `x` with bandwidth `h`.
[[nodiscard]] double kde_at(std::span<const double> values, double x, double h) noexcept;

/// Samples the KDE on `points` evenly spaced x values spanning the sample
/// range padded by one bandwidth on each side. `bandwidth <= 0` selects
/// Scott's rule. Empty input yields an empty curve.
[[nodiscard]] DensityCurve kde_curve(std::span<const double> values, std::size_t points = 128,
                                     double bandwidth = 0.0);

}  // namespace crowdweb::stats

#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include "util/format.hpp"

namespace crowdweb::stats {

Histogram::Histogram(double lo, double hi, std::size_t bin_count) : lo_(lo), hi_(hi) {
  bins_.resize(bin_count);
  const double width = (hi - lo) / static_cast<double>(bin_count);
  for (std::size_t i = 0; i < bin_count; ++i) {
    bins_[i].lo = lo + width * static_cast<double>(i);
    bins_[i].hi = (i + 1 == bin_count) ? hi : lo + width * static_cast<double>(i + 1);
  }
}

Result<Histogram> Histogram::create(double lo, double hi, std::size_t bin_count) {
  if (bin_count == 0) return invalid_argument("histogram needs at least one bin");
  if (!(hi > lo)) return invalid_argument(crowdweb::format("bad histogram range [{}, {}]", lo, hi));
  return Histogram(lo, hi, bin_count);
}

Histogram Histogram::from_samples(std::span<const double> values, std::size_t bin_count) {
  bin_count = std::max<std::size_t>(1, bin_count);
  double lo = 0.0, hi = 1.0;
  if (!values.empty()) {
    lo = *std::min_element(values.begin(), values.end());
    hi = *std::max_element(values.begin(), values.end());
    if (hi <= lo) hi = lo + 1.0;  // degenerate sample: one unit-wide bin range
  }
  Histogram h(lo, hi, bin_count);
  h.add_all(values);
  return h;
}

void Histogram::add(double value) noexcept {
  const double span = hi_ - lo_;
  const double fraction = (value - lo_) / span;
  auto index = static_cast<std::int64_t>(std::floor(fraction * static_cast<double>(bins_.size())));
  index = std::clamp<std::int64_t>(index, 0, static_cast<std::int64_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(index)].count;
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (const double v : values) add(v);
}

std::vector<double> Histogram::densities() const {
  std::vector<double> out(bins_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < bins_.size(); ++i)
    out[i] = static_cast<double>(bins_[i].count) / static_cast<double>(total_);
  return out;
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::size_t max_count = 0;
  for (const Bin& bin : bins_) max_count = std::max(max_count, bin.count);
  std::string out;
  for (const Bin& bin : bins_) {
    const std::size_t bar =
        max_count == 0 ? 0 : bin.count * width / max_count;
    out += crowdweb::format("[{:>9.2f}, {:>9.2f}) {:>7} |{}\n", bin.lo, bin.hi, bin.count,
                       std::string(bar, '#'));
  }
  return out;
}

}  // namespace crowdweb::stats

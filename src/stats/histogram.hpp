// Fixed-bin histograms for the paper's distribution plots (Figures 6, 8).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace crowdweb::stats {

/// One histogram bin [lo, hi) — the last bin is closed on the right.
struct Bin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
};

/// Equal-width histogram over [min, max].
class Histogram {
 public:
  /// Builds `bin_count` equal bins over [lo, hi]; fails on bin_count == 0
  /// or hi <= lo.
  static Result<Histogram> create(double lo, double hi, std::size_t bin_count);

  /// Builds a histogram spanning the sample range with `bin_count` bins
  /// (a single degenerate bin when all values are equal).
  static Histogram from_samples(std::span<const double> values, std::size_t bin_count);

  /// Counts `value` into its bin; out-of-range values are clamped into the
  /// first/last bin so totals always match the sample size.
  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  [[nodiscard]] const std::vector<Bin>& bins() const noexcept { return bins_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Per-bin fraction of the total (empty histogram -> all zeros).
  [[nodiscard]] std::vector<double> densities() const;

  /// Multi-line ASCII rendering for terminal output of the benches.
  [[nodiscard]] std::string to_ascii(std::size_t width = 50) const;

 private:
  Histogram(double lo, double hi, std::size_t bin_count);

  double lo_;
  double hi_;
  std::vector<Bin> bins_;
  std::size_t total_ = 0;
};

}  // namespace crowdweb::stats

// JSON value model, parser, and serializer.
//
// Used by the HTTP API, the GeoJSON exporter, and the benchmark harness
// output. Objects preserve insertion order so serialized payloads are
// deterministic. The parser is a strict recursive-descent RFC 8259 reader
// with a configurable depth limit; all failures are reported as
// `Status` values (never exceptions) because inputs arrive from sockets.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace crowdweb::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered key/value entries.
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON document node with value semantics.
class Value {
 public:
  Value() noexcept : storage_(nullptr) {}
  Value(std::nullptr_t) noexcept : storage_(nullptr) {}  // NOLINT
  Value(bool b) noexcept : storage_(b) {}                // NOLINT
  Value(int i) noexcept : storage_(static_cast<std::int64_t>(i)) {}       // NOLINT
  Value(unsigned i) noexcept : storage_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(long i) noexcept : storage_(static_cast<std::int64_t>(i)) {}      // NOLINT
  Value(long long i) noexcept : storage_(static_cast<std::int64_t>(i)) {} // NOLINT
  Value(unsigned long i) noexcept : storage_(static_cast<std::int64_t>(i)) {}      // NOLINT
  Value(unsigned long long i) noexcept : storage_(static_cast<std::int64_t>(i)) {} // NOLINT
  Value(double d) noexcept : storage_(d) {}               // NOLINT
  Value(const char* s) : storage_(std::string(s)) {}      // NOLINT
  Value(std::string_view s) : storage_(std::string(s)) {} // NOLINT
  Value(std::string s) noexcept : storage_(std::move(s)) {} // NOLINT
  Value(Array a) noexcept : storage_(std::move(a)) {}       // NOLINT
  Value(Object o) noexcept : storage_(std::move(o)) {}      // NOLINT

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(storage_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::kInt; }
  [[nodiscard]] bool is_double() const noexcept { return type() == Type::kDouble; }
  /// True for both integral and floating numbers.
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  /// Typed accessors; precondition: matching type (asserted).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(storage_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(storage_); }
  /// Numeric value as double (works for both int and double nodes).
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(storage_));
    return std::get<double>(storage_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(storage_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(storage_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(storage_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(storage_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(storage_); }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Inserts or overwrites an object member (converts a null value to an
  /// empty object first; asserts on other types).
  void set(std::string key, Value value);

  /// Appends to an array (converts null to an empty array first).
  void push_back(Value value);

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.storage_ == b.storage_;
  }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object>
      storage_;
};

/// Builds an object from `{ {"k", v}, ... }` pairs.
[[nodiscard]] Value object(std::initializer_list<std::pair<std::string, Value>> members);

/// Builds an array from values.
[[nodiscard]] Value array(std::initializer_list<Value> items);

struct ParseOptions {
  std::size_t max_depth = 128;
};

/// Parses a complete JSON document (trailing garbage is an error).
[[nodiscard]] Result<Value> parse(std::string_view text, ParseOptions options = {});

struct DumpOptions {
  /// 0 = compact; otherwise the number of spaces per indent level.
  int indent = 0;
};

/// Serializes to an RFC 8259 document. Doubles that hold integral values
/// keep a trailing ".0" so round-trips preserve the type.
[[nodiscard]] std::string dump(const Value& value, DumpOptions options = {});

/// Escapes `text` as the *contents* of a JSON string (no surrounding quotes).
[[nodiscard]] std::string escape_string(std::string_view text);

}  // namespace crowdweb::json

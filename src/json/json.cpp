#include "json/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include "util/format.hpp"

namespace crowdweb::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(std::string key, Value value) {
  if (is_null()) storage_ = Object{};
  assert(is_object() && "Value::set on a non-object");
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
  if (is_null()) storage_ = Array{};
  assert(is_array() && "Value::push_back on a non-array");
  as_array().push_back(std::move(value));
}

Value object(std::initializer_list<std::pair<std::string, Value>> members) {
  Object obj;
  obj.reserve(members.size());
  for (const auto& member : members) obj.push_back(member);
  return Value{std::move(obj)};
}

Value array(std::initializer_list<Value> items) {
  return Value{Array(items)};
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<Value> run() {
    auto value = parse_value();
    if (!value) return value;
    skip_whitespace();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON document");
    return value;
  }

 private:
  Status fail_status(std::string_view what) const {
    return parse_error(crowdweb::format("{} at offset {}", what, pos_));
  }
  Result<Value> fail(std::string_view what) const { return fail_status(what); }

  void skip_whitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) noexcept {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (++depth_ > options_.max_depth) return fail("nesting too deep");
    struct DepthGuard {
      std::size_t& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};

    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (consume_literal("null")) return Value{nullptr};
        return fail("invalid literal");
      case 't':
        if (consume_literal("true")) return Value{true};
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value{false};
        return fail("invalid literal");
      case '"':
        return parse_string_value();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  Result<Value> parse_array() {
    ++pos_;  // '['
    Array items;
    skip_whitespace();
    if (consume(']')) return Value{std::move(items)};
    while (true) {
      auto item = parse_value();
      if (!item) return item;
      items.push_back(std::move(item).value());
      skip_whitespace();
      if (consume(']')) return Value{std::move(items)};
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object() {
    ++pos_;  // '{'
    Object members;
    skip_whitespace();
    if (consume('}')) return Value{std::move(members)};
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected string key in object");
      auto key = parse_raw_string();
      if (!key) return key.status();
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      auto value = parse_value();
      if (!value) return value;
      members.emplace_back(std::move(key).value(), std::move(value).value());
      skip_whitespace();
      if (consume('}')) return Value{std::move(members)};
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_string_value() {
    auto raw = parse_raw_string();
    if (!raw) return raw.status();
    return Value{std::move(raw).value()};
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<std::uint32_t> parse_hex4() {
    if (pos_ + 4 > text_.size()) return fail_status("truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail_status("invalid \\u escape");
    }
    pos_ += 4;
    return cp;
  }

  Result<std::string> parse_raw_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return fail_status("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail_status("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail_status("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          auto cp = parse_hex4();
          if (!cp) return cp.status();
          std::uint32_t code = *cp;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require a following \uXXXX low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
              return fail_status("unpaired surrogate");
            pos_ += 2;
            auto low = parse_hex4();
            if (!low) return low.status();
            if (*low < 0xDC00 || *low > 0xDFFF) return fail_status("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail_status("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          return fail_status("invalid escape character");
      }
    }
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      return fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    bool is_floating = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_floating = true;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return fail("invalid fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_floating = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return fail("invalid exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_floating) {
      std::int64_t integer = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), integer);
      if (ec == std::errc{} && ptr == token.data() + token.size()) return Value{integer};
      // Fall through to double on overflow.
    }
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), number);
    if (ec != std::errc{} || ptr != token.data() + token.size())
      return fail("invalid number");
    return Value{number};
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

void dump_value(const Value& value, const DumpOptions& options, int level, std::string& out);

void append_indent(const DumpOptions& options, int level, std::string& out) {
  if (options.indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(options.indent) * static_cast<std::size_t>(level), ' ');
}

void dump_double(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null (matches common library behaviour).
    out += "null";
    return;
  }
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, d);
  std::string_view token(buffer, static_cast<std::size_t>(ptr - buffer));
  out += token;
  if (token.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

void dump_value(const Value& value, const DumpOptions& options, int level, std::string& out) {
  switch (value.type()) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Type::kInt:
      out += crowdweb::format("{}", value.as_int());
      return;
    case Type::kDouble:
      dump_double(value.as_double(), out);
      return;
    case Type::kString:
      out += '"';
      out += escape_string(value.as_string());
      out += '"';
      return;
    case Type::kArray: {
      const Array& items = value.as_array();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        append_indent(options, level + 1, out);
        dump_value(items[i], options, level + 1, out);
      }
      append_indent(options, level, out);
      out += ']';
      return;
    }
    case Type::kObject: {
      const Object& members = value.as_object();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        append_indent(options, level + 1, out);
        out += '"';
        out += escape_string(members[i].first);
        out += "\":";
        if (options.indent > 0) out += ' ';
        dump_value(members[i].second, options, level + 1, out);
      }
      append_indent(options, level, out);
      out += '}';
      return;
    }
  }
}

}  // namespace

Result<Value> parse(std::string_view text, ParseOptions options) {
  return Parser(text, options).run();
}

std::string dump(const Value& value, DumpOptions options) {
  std::string out;
  dump_value(value, options, 0, out);
  return out;
}

std::string escape_string(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += crowdweb::format("\\u{:04x}", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace crowdweb::json

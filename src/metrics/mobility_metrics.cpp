#include "metrics/mobility_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "geo/kernels.hpp"
#include "geo/point.hpp"

namespace crowdweb::metrics {

double radius_of_gyration(const data::Dataset& dataset, data::UserId user) {
  const auto records = dataset.checkins_for(user);
  if (records.empty()) return 0.0;
  const std::span<const double> lats = records.lats();
  const std::span<const double> lons = records.lons();

  // Center of mass in a local projection anchored at the first record
  // (city-scale distances, so the flat approximation is exact enough).
  const geo::Projection projection(records.front().position);
  std::vector<double> xs(records.size());
  std::vector<double> ys(records.size());
  geo::project_xy(projection, lats, lons, xs, ys);

  double cx = 0.0, cy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cx += xs[i];
    cy += ys[i];
  }
  const auto n = static_cast<double>(records.size());
  cx /= n;
  cy /= n;

  double sum_sq = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    sum_sq += dx * dx + dy * dy;
  }
  return std::sqrt(sum_sq / n);
}

std::vector<double> all_radii_of_gyration(const data::Dataset& dataset) {
  std::vector<double> out;
  out.reserve(dataset.user_count());
  for (const data::UserId user : dataset.users())
    out.push_back(radius_of_gyration(dataset, user));
  return out;
}

std::vector<double> jump_lengths(const data::Dataset& dataset, data::UserId user) {
  const auto records = dataset.checkins_for(user);
  std::vector<double> out;
  if (records.size() < 2) return out;
  out.resize(records.size() - 1);
  geo::jump_meters(records.lats(), records.lons(), out);
  return out;
}

std::vector<double> all_jump_lengths(const data::Dataset& dataset) {
  std::vector<double> out;
  for (const data::UserId user : dataset.users()) {
    const auto jumps = jump_lengths(dataset, user);
    out.insert(out.end(), jumps.begin(), jumps.end());
  }
  return out;
}

std::vector<std::size_t> visitation_frequency(const data::Dataset& dataset,
                                              data::UserId user) {
  std::map<data::VenueId, std::size_t> counts;
  for (const data::VenueId venue : dataset.checkins_for(user).venues()) ++counts[venue];
  std::vector<std::size_t> frequencies;
  frequencies.reserve(counts.size());
  for (const auto& [venue, count] : counts) frequencies.push_back(count);
  std::sort(frequencies.rbegin(), frequencies.rend());
  return frequencies;
}

double location_entropy(const data::Dataset& dataset, data::UserId user) {
  const auto frequencies = visitation_frequency(dataset, user);
  std::size_t total = 0;
  for (const std::size_t f : frequencies) total += f;
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (const std::size_t f : frequencies) {
    const double p = static_cast<double>(f) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::vector<std::size_t> distinct_locations_over_time(const data::Dataset& dataset,
                                                      data::UserId user) {
  std::vector<std::size_t> out;
  std::map<data::VenueId, bool> seen;
  for (const data::VenueId venue : dataset.checkins_for(user).venues()) {
    seen.emplace(venue, true);
    out.push_back(seen.size());
  }
  return out;
}

double zipf_exponent(const std::vector<std::size_t>& frequencies) {
  // Least squares on (log k, log f_k), k = 1..n, skipping zero counts.
  std::vector<double> xs, ys;
  for (std::size_t k = 0; k < frequencies.size(); ++k) {
    if (frequencies[k] == 0) continue;
    xs.push_back(std::log(static_cast<double>(k + 1)));
    ys.push_back(std::log(static_cast<double>(frequencies[k])));
  }
  if (xs.size() < 2) return 0.0;
  const auto n = static_cast<double>(xs.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
    sum_xx += xs[i] * xs[i];
    sum_xy += xs[i] * ys[i];
  }
  const double denominator = n * sum_xx - sum_x * sum_x;
  if (std::abs(denominator) < 1e-12) return 0.0;
  const double slope = (n * sum_xy - sum_x * sum_y) / denominator;
  return -slope;  // positive exponent for decaying frequencies
}

}  // namespace crowdweb::metrics

// Classical human-mobility metrics (Gonzalez, Hidalgo & Barabasi, Nature
// 2008 — the paper's reference [1]).
//
// These validate that a check-in corpus behaves like human movement:
// radius of gyration per user, jump-length distribution, rank-ordered
// visitation frequency (Zipf-like), and location entropy. The test suite
// uses them to hold the synthetic generator to realistic structure, and
// `bench_mobility_metrics` reports them for the experiment corpus.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace crowdweb::metrics {

/// Radius of gyration of one user's check-ins, in meters: RMS distance of
/// visit positions from their center of mass. 0 for fewer than 1 record.
[[nodiscard]] double radius_of_gyration(const data::Dataset& dataset, data::UserId user);

/// Radii of gyration for every user, in dataset user order.
[[nodiscard]] std::vector<double> all_radii_of_gyration(const data::Dataset& dataset);

/// Distances (meters) between consecutive check-ins of a user; jumps
/// across midnight are included (human displacement is continuous).
[[nodiscard]] std::vector<double> jump_lengths(const data::Dataset& dataset,
                                               data::UserId user);

/// Pooled jump lengths across every user.
[[nodiscard]] std::vector<double> all_jump_lengths(const data::Dataset& dataset);

/// Visit counts of a user's venues, sorted descending (rank-frequency;
/// Zipf-like in real corpora: f_k ~ k^-alpha).
[[nodiscard]] std::vector<std::size_t> visitation_frequency(const data::Dataset& dataset,
                                                            data::UserId user);

/// Shannon entropy (bits) of a user's venue visitation distribution.
/// 0 when the user always visits one venue.
[[nodiscard]] double location_entropy(const data::Dataset& dataset, data::UserId user);

/// Number of distinct venues a user has visited after each check-in —
/// S(n), sublinear for routine-driven movement.
[[nodiscard]] std::vector<std::size_t> distinct_locations_over_time(
    const data::Dataset& dataset, data::UserId user);

/// Least-squares slope of log(f_k) vs log(k) for a rank-frequency sample
/// (the Zipf exponent, negated); 0 for degenerate inputs.
[[nodiscard]] double zipf_exponent(const std::vector<std::size_t>& frequencies);

}  // namespace crowdweb::metrics

#include "predict/evaluate.hpp"

#include <algorithm>

namespace crowdweb::predict {

EvaluationResult evaluate(const data::Dataset& dataset, const data::Taxonomy& taxonomy,
                          const PredictorFactory& factory,
                          const EvaluationOptions& options,
                          const mining::SequenceOptions& sequences) {
  EvaluationResult result;
  std::size_t hits_at_1 = 0;
  std::size_t hits_at_3 = 0;
  double reciprocal_rank_sum = 0.0;

  for (const data::UserId user : dataset.users()) {
    const mining::UserSequences history =
        mining::build_user_sequences(dataset, user, taxonomy, sequences);
    if (history.day_count() < std::max<std::size_t>(2, options.min_days)) continue;

    const auto split = static_cast<std::size_t>(
        static_cast<double>(history.day_count()) * options.train_fraction);
    if (split == 0 || split >= history.day_count()) continue;

    const mining::UserSequences train = history.slice_days(0, split);

    const std::unique_ptr<Predictor> predictor = factory();
    predictor->train(train);
    bool counted_user = false;

    for (std::size_t d = split; d < history.day_count(); ++d) {
      const auto day = history.day(d);
      const auto minutes = history.minutes_of(d);
      for (std::size_t i = 0; i < day.size(); ++i) {
        Query query;
        query.today = std::span<const mining::Item>(day.data(), i);
        query.minute = minutes[i];
        const auto ranked = predictor->predict(query);
        ++result.events;
        counted_user = true;
        for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
          if (ranked[rank].label != day[i]) continue;
          if (rank == 0) ++hits_at_1;
          if (rank < 3) ++hits_at_3;
          reciprocal_rank_sum += 1.0 / static_cast<double>(rank + 1);
          break;
        }
      }
    }
    if (counted_user) ++result.users;
  }

  result.predictor = factory()->name();
  if (result.events > 0) {
    const auto events = static_cast<double>(result.events);
    result.accuracy_at_1 = static_cast<double>(hits_at_1) / events;
    result.accuracy_at_3 = static_cast<double>(hits_at_3) / events;
    result.mrr = reciprocal_rank_sum / events;
  }
  return result;
}

}  // namespace crowdweb::predict

#include "predict/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mining/prefixspan.hpp"

namespace crowdweb::predict {

namespace {

/// Sorts by score descending (ties by label for determinism) and
/// deduplicates labels keeping the best score.
std::vector<Prediction> finalize(std::map<mining::Item, double> scores) {
  std::vector<Prediction> out;
  out.reserve(scores.size());
  for (const auto& [label, score] : scores) out.push_back({label, score});
  std::sort(out.begin(), out.end(), [](const Prediction& a, const Prediction& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
  return out;
}

// ------------------------------------------------------------- Frequency

class FrequencyPredictor final : public Predictor {
 public:
  void train(const mining::UserSequences& history) override {
    // Day boundaries don't matter for plain frequency: walk the flat
    // item column.
    for (const mining::Item item : history.items) counts_[item] += 1.0;
  }

  std::vector<Prediction> predict(const Query&) const override {
    return finalize(counts_);
  }

  std::string name() const override { return "frequency"; }

 private:
  std::map<mining::Item, double> counts_;
};

// -------------------------------------------------------------- TimeSlot

class TimeSlotPredictor final : public Predictor {
 public:
  explicit TimeSlotPredictor(int slot_minutes)
      : slot_minutes_(std::clamp(slot_minutes, 1, 24 * 60)) {}

  void train(const mining::UserSequences& history) override {
    // items/item_minutes are parallel flat columns; slots don't care
    // about day boundaries.
    for (std::size_t i = 0; i < history.items.size(); ++i) {
      const mining::Item item = history.items[i];
      const int slot = history.item_minutes[i] / slot_minutes_;
      slot_counts_[slot][item] += 1.0;
      global_[item] += 1.0;
    }
  }

  std::vector<Prediction> predict(const Query& query) const override {
    const int slot = std::clamp(query.minute, 0, 24 * 60 - 1) / slot_minutes_;
    // Blend: the current slot dominates, global breaks ties and covers
    // unseen slots.
    std::map<mining::Item, double> scores;
    for (const auto& [label, count] : global_) scores[label] = 0.001 * count;
    if (const auto it = slot_counts_.find(slot); it != slot_counts_.end()) {
      for (const auto& [label, count] : it->second) scores[label] += count;
    }
    return finalize(std::move(scores));
  }

  std::string name() const override { return "time-slot"; }

 private:
  int slot_minutes_;
  std::map<int, std::map<mining::Item, double>> slot_counts_;
  std::map<mining::Item, double> global_;
};

// ---------------------------------------------------------------- Markov

class MarkovPredictor final : public Predictor {
 public:
  explicit MarkovPredictor(int order) : order_(std::clamp(order, 1, 4)) {}

  void train(const mining::UserSequences& history) override {
    for (std::size_t d = 0; d < history.day_count(); ++d) {
      const auto day = history.day(d);
      for (std::size_t i = 0; i < day.size(); ++i) {
        global_[day[i]] += 1.0;
        // Context of every length 1..order ending just before position i.
        for (int k = 1; k <= order_ && static_cast<std::size_t>(k) <= i; ++k) {
          const std::vector<mining::Item> context(day.begin() + (i - k), day.begin() + i);
          transitions_[context][day[i]] += 1.0;
        }
      }
    }
  }

  std::vector<Prediction> predict(const Query& query) const override {
    // Longest matching context wins; shorter contexts and the global
    // frequency contribute with geometrically decaying weight.
    std::map<mining::Item, double> scores;
    double weight = 1.0;
    for (int k = std::min<int>(order_, static_cast<int>(query.today.size())); k >= 1; --k) {
      const std::vector<mining::Item> context(query.today.end() - k, query.today.end());
      if (const auto it = transitions_.find(context); it != transitions_.end()) {
        double total = 0.0;
        for (const auto& [label, count] : it->second) total += count;
        for (const auto& [label, count] : it->second)
          scores[label] += weight * count / total;
      }
      weight *= 0.25;
    }
    double total = 0.0;
    for (const auto& [label, count] : global_) total += count;
    if (total > 0.0) {
      for (const auto& [label, count] : global_) scores[label] += 0.01 * count / total;
    }
    return finalize(std::move(scores));
  }

  std::string name() const override {
    return "markov-" + std::to_string(order_);
  }

 private:
  int order_;
  std::map<std::vector<mining::Item>, std::map<mining::Item, double>> transitions_;
  std::map<mining::Item, double> global_;
};

// --------------------------------------------------------------- Pattern

class PatternPredictor final : public Predictor {
 public:
  explicit PatternPredictor(PatternPredictorOptions options)
      : options_(options), fallback_(make_time_slot_predictor()) {}

  void train(const mining::UserSequences& history) override {
    fallback_->train(history);
    mining::MiningOptions mining_options;
    mining_options.min_support = options_.min_support;
    const auto mined = mining::prefixspan(history.columns(), mining_options);
    patterns_.reserve(mined.size());
    for (const mining::Pattern& pattern : mined)
      patterns_.push_back(patterns::annotate_pattern(pattern, history));
  }

  std::vector<Prediction> predict(const Query& query) const override {
    std::map<mining::Item, double> scores;
    for (const patterns::MobilityPattern& pattern : patterns_) {
      // Longest prefix of the pattern that today's visits already embed.
      std::size_t matched = 0;
      for (const mining::Item item : query.today) {
        if (matched < pattern.elements.size() && item == pattern.elements[matched].label)
          ++matched;
      }
      if (matched >= pattern.elements.size()) continue;  // pattern exhausted
      const patterns::TimedElement& next = pattern.elements[matched];
      // The predicted element must lie ahead of "now" (with slack for the
      // annotation's own spread).
      const double ahead = next.mean_minute - query.minute;
      if (ahead < -next.stddev_minute - 30.0) continue;
      // Score: support, scaled down the further in the future it is and
      // boosted by how much of the pattern today's visits confirm.
      const double time_factor =
          ahead <= options_.time_tolerance_minutes
              ? 1.0
              : options_.time_tolerance_minutes / std::max(1.0, ahead);
      const double prefix_bonus = 1.0 + static_cast<double>(matched);
      scores[next.label] += pattern.support * time_factor * prefix_bonus;
    }
    if (scores.empty()) return fallback_->predict(query);

    // Blend in a tiny fallback signal so equal-score pattern ties break
    // toward the time-appropriate label.
    const auto fallback = fallback_->predict(query);
    double norm = 0.0;
    for (const Prediction& p : fallback) norm = std::max(norm, p.score);
    if (norm > 0.0) {
      for (const Prediction& p : fallback) scores[p.label] += 1e-3 * p.score / norm;
    }
    return finalize(std::move(scores));
  }

  std::string name() const override { return "pattern"; }

 private:
  PatternPredictorOptions options_;
  std::vector<patterns::MobilityPattern> patterns_;
  std::unique_ptr<Predictor> fallback_;
};

// -------------------------------------------------------------- Ensemble

class EnsemblePredictor final : public Predictor {
 public:
  EnsemblePredictor() {
    members_.push_back({make_time_slot_predictor(), 1.0});
    members_.push_back({make_pattern_predictor(), 0.8});
    members_.push_back({make_markov_predictor(2), 0.5});
  }

  void train(const mining::UserSequences& history) override {
    for (auto& [member, weight] : members_) member->train(history);
  }

  std::vector<Prediction> predict(const Query& query) const override {
    // Reciprocal-rank fusion: robust to the members' different score
    // scales.
    std::map<mining::Item, double> scores;
    for (const auto& [member, weight] : members_) {
      const auto ranked = member->predict(query);
      for (std::size_t rank = 0; rank < ranked.size(); ++rank)
        scores[ranked[rank].label] += weight / static_cast<double>(rank + 1);
    }
    return finalize(std::move(scores));
  }

  std::string name() const override { return "ensemble"; }

 private:
  std::vector<std::pair<std::unique_ptr<Predictor>, double>> members_;
};

}  // namespace

std::unique_ptr<Predictor> make_frequency_predictor() {
  return std::make_unique<FrequencyPredictor>();
}

std::unique_ptr<Predictor> make_time_slot_predictor(int slot_minutes) {
  return std::make_unique<TimeSlotPredictor>(slot_minutes);
}

std::unique_ptr<Predictor> make_markov_predictor(int order) {
  return std::make_unique<MarkovPredictor>(order);
}

std::unique_ptr<Predictor> make_pattern_predictor(PatternPredictorOptions options) {
  return std::make_unique<PatternPredictor>(options);
}

std::unique_ptr<Predictor> make_ensemble_predictor() {
  return std::make_unique<EnsemblePredictor>();
}

}  // namespace crowdweb::predict

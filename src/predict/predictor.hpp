// Next-place prediction over labeled-place sequences.
//
// The paper motivates CrowdWeb with the low accuracy (8-25%) of
// next-point-of-interest predictors and argues that location abstraction
// exposes the hidden regularity. This module makes that argument
// executable: four predictors over the same per-user day-sequence
// histories, from a frequency baseline up to a pattern-based predictor
// that consumes the platform's mined, time-annotated mobility patterns.
//
// All predictors are *per user* (mobility is individual): train on a
// user's historical days, then query with the visits made so far today
// and the current time.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mining/pattern.hpp"
#include "mining/seqdb.hpp"
#include "patterns/mobility.hpp"

namespace crowdweb::predict {

/// One ranked guess.
struct Prediction {
  mining::Item label = 0;
  double score = 0.0;  ///< higher = more likely; comparable within one query
};

/// What the predictor knows at query time.
struct Query {
  /// Labels visited so far today, in order (may be empty: first visit).
  std::span<const mining::Item> today;
  /// Current minute of day 0..1439 (the time the next visit would start).
  int minute = 0;
};

/// A trained per-user next-place predictor.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Trains on a user's historical days. May be called once only.
  virtual void train(const mining::UserSequences& history) = 0;

  /// Ranked predictions, best first, deduplicated by label. May be empty
  /// when the user has no history.
  [[nodiscard]] virtual std::vector<Prediction> predict(const Query& query) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts the user's globally most frequent labels (time-blind).
[[nodiscard]] std::unique_ptr<Predictor> make_frequency_predictor();

/// Predicts the most frequent label of the current time slot
/// (`slot_minutes` wide buckets; falls back to global frequency).
[[nodiscard]] std::unique_ptr<Predictor> make_time_slot_predictor(int slot_minutes = 120);

/// Order-k Markov chain over within-day transitions, with recursive
/// fallback to shorter contexts and finally global frequency.
[[nodiscard]] std::unique_ptr<Predictor> make_markov_predictor(int order = 1);

/// The CrowdWeb-style predictor: mines the training days with the
/// modified PrefixSpan, keeps time-annotated patterns, and at query time
/// scores each pattern whose prefix is consistent with today's visits and
/// whose next element lies ahead of the current time. Falls back to the
/// time-slot predictor when no pattern applies.
struct PatternPredictorOptions {
  double min_support = 0.2;
  /// Weight of time proximity: the next element's annotated time must be
  /// within this many minutes ahead to score fully (decays beyond).
  double time_tolerance_minutes = 180.0;
};
[[nodiscard]] std::unique_ptr<Predictor> make_pattern_predictor(
    PatternPredictorOptions options = {});

/// Weighted rank-fusion ensemble of the pattern, time-slot, and Markov
/// predictors: each member contributes reciprocal-rank votes. Usually the
/// strongest single predictor on routine-driven corpora.
[[nodiscard]] std::unique_ptr<Predictor> make_ensemble_predictor();

}  // namespace crowdweb::predict

// Next-place prediction evaluation harness.
//
// Chronological per-user split: the first `train_fraction` of a user's
// recorded days train the predictor, the rest are replayed visit by
// visit — each visit is a prediction event given the day's earlier visits
// and the visit's start time. Reports accuracy@k and mean reciprocal rank
// over all events of all users, the standard next-POI metrics the paper's
// 8-25% figure refers to.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "predict/predictor.hpp"

namespace crowdweb::predict {

struct EvaluationOptions {
  double train_fraction = 0.7;
  /// Users need at least this many recorded days to participate.
  std::size_t min_days = 10;
};

struct EvaluationResult {
  std::string predictor;
  std::size_t users = 0;
  std::size_t events = 0;  ///< prediction events scored
  double accuracy_at_1 = 0.0;
  double accuracy_at_3 = 0.0;
  double mrr = 0.0;  ///< mean reciprocal rank (0 when never ranked)
};

using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

/// Evaluates one predictor family over every eligible user of `dataset`.
[[nodiscard]] EvaluationResult evaluate(const data::Dataset& dataset,
                                        const data::Taxonomy& taxonomy,
                                        const PredictorFactory& factory,
                                        const EvaluationOptions& options = {},
                                        const mining::SequenceOptions& sequences = {});

}  // namespace crowdweb::predict

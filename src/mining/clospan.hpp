// CloSpan — Closed Sequential pattern mining (Yan, Han & Afshar,
// SDM 2003), simplified single-item-element variant.
//
// Grows a PrefixSpan projection tree but prunes subtrees whose projected
// database it has already explored: when a new prefix is a sub-pattern of
// an earlier one with the same projected-database footprint (sum of
// suffix lengths), the two projections are identical, so the new subtree
// can only repeat supports already seen. Surviving frequent patterns are
// post-filtered down to the closed set. Keeps a footprint-keyed history,
// so it trades memory for pruning where BIDE trades extra backward scans
// for none; the miner-ablation bench shows both against PrefixSpan.
#pragma once

#include <vector>

#include "mining/pattern.hpp"

namespace crowdweb::mining {

/// Mines the closed subset of the patterns `prefixspan` would emit, in
/// the same canonical order. `stats` (optional) receives
/// emitted/explored counts, pruned subtrees, and the max_patterns
/// truncation flag. Shares BIDE's length-cap caveat: nodes at
/// max_pattern_length are emitted whether or not they are closed.
[[nodiscard]] std::vector<Pattern> clospan(const SequenceColumns& db,
                                           const MiningOptions& options = {},
                                           MiningStats* stats = nullptr);

/// Convenience overload that flattens `db` into columns first.
[[nodiscard]] std::vector<Pattern> clospan(const SequenceDb& db,
                                           const MiningOptions& options = {},
                                           MiningStats* stats = nullptr);

}  // namespace crowdweb::mining

// Sequence-database construction — the "modified" half of the paper's
// modified PrefixSpan.
//
// Raw check-ins become mineable sequences through three steps:
//   1. *Location abstraction*: each check-in is reduced to a label — the
//      venue's root category ("Eatery"), its leaf category ("Thai
//      Restaurant"), or the raw venue id. Root-category labels are what
//      make flexible patterns detectable (the paper's central idea).
//   2. *Per-day sequencing*: a user's check-ins are grouped by calendar
//      day and ordered by time; each day is one sequence.
//   3. *Time retention*: the minute-of-day of every element is kept so
//      mined patterns can be annotated with representative time windows
//      (needed later for crowd synchronization).
//
// The per-user database is stored flat (structure-of-arrays): all days'
// labels in one contiguous `items` array with parallel minutes, and a
// `day_offsets` index delimiting days — the same layout the miners
// consume via SequenceColumns, so mining never re-packs anything.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "mining/pattern.hpp"
#include "util/status.hpp"

namespace crowdweb::mining {

enum class LabelMode {
  kRootCategory,  ///< the paper's abstraction (default)
  kLeafCategory,  ///< venue type ("Thai Restaurant")
  kVenue,         ///< raw venue id (the ablation baseline)
};

struct SequenceOptions {
  LabelMode mode = LabelMode::kRootCategory;
  /// Collapse immediately repeated labels within a day ("Eatery, Eatery"
  /// from two nearby check-ins becomes one element).
  bool collapse_repeats = true;
  /// Ignore days with fewer check-ins than this (0/1 keeps everything).
  std::size_t min_day_length = 1;
};

/// A user's mineable history in columnar form: one sequence per day
/// with >= min_day_length check-ins. `items` and `item_minutes` are
/// parallel flat arrays over all days; day `d` spans
/// [day_offsets[d], day_offsets[d+1]).
struct UserSequences {
  data::UserId user = 0;
  std::vector<Item> items;                 ///< all days' labels, concatenated
  std::vector<int> item_minutes;           ///< minute-of-day per element
  std::vector<std::uint32_t> day_offsets;  ///< day_count()+1 entries (or none)

  [[nodiscard]] std::size_t day_count() const noexcept {
    return day_offsets.empty() ? 0 : day_offsets.size() - 1;
  }
  [[nodiscard]] bool empty() const noexcept { return day_count() == 0; }

  /// Day `d`'s label sequence (no bounds check).
  [[nodiscard]] std::span<const Item> day(std::size_t d) const noexcept {
    return std::span<const Item>(items).subspan(day_offsets[d],
                                                day_offsets[d + 1] - day_offsets[d]);
  }
  /// Day `d`'s minute-of-day values, parallel to day(d).
  [[nodiscard]] std::span<const int> minutes_of(std::size_t d) const noexcept {
    return std::span<const int>(item_minutes)
        .subspan(day_offsets[d], day_offsets[d + 1] - day_offsets[d]);
  }

  /// The miner-facing view over all days (no copying).
  [[nodiscard]] SequenceColumns columns() const noexcept {
    return {items, day_offsets};
  }

  /// Appends one day's elements (used by the builder and by tests).
  void append_day(std::span<const Item> day_items, std::span<const int> day_minutes);

  /// Days [begin, end) as a new flat history (train/test splits).
  [[nodiscard]] UserSequences slice_days(std::size_t begin, std::size_t end) const;
};

/// Builds the per-day sequence database of one user.
[[nodiscard]] UserSequences build_user_sequences(const data::Dataset& dataset,
                                                 data::UserId user,
                                                 const data::Taxonomy& taxonomy,
                                                 const SequenceOptions& options = {});

/// Builds sequence databases for every user of the dataset.
[[nodiscard]] std::vector<UserSequences> build_all_sequences(
    const data::Dataset& dataset, const data::Taxonomy& taxonomy,
    const SequenceOptions& options = {});

/// Human-readable name of a mined item under the given mode.
[[nodiscard]] std::string label_name(Item item, LabelMode mode,
                                     const data::Taxonomy& taxonomy,
                                     const data::Dataset& dataset);

}  // namespace crowdweb::mining

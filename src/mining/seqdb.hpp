// Sequence-database construction — the "modified" half of the paper's
// modified PrefixSpan.
//
// Raw check-ins become mineable sequences through three steps:
//   1. *Location abstraction*: each check-in is reduced to a label — the
//      venue's root category ("Eatery"), its leaf category ("Thai
//      Restaurant"), or the raw venue id. Root-category labels are what
//      make flexible patterns detectable (the paper's central idea).
//   2. *Per-day sequencing*: a user's check-ins are grouped by calendar
//      day and ordered by time; each day is one sequence.
//   3. *Time retention*: the minute-of-day of every element is kept so
//      mined patterns can be annotated with representative time windows
//      (needed later for crowd synchronization).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "mining/pattern.hpp"
#include "util/status.hpp"

namespace crowdweb::mining {

enum class LabelMode {
  kRootCategory,  ///< the paper's abstraction (default)
  kLeafCategory,  ///< venue type ("Thai Restaurant")
  kVenue,         ///< raw venue id (the ablation baseline)
};

struct SequenceOptions {
  LabelMode mode = LabelMode::kRootCategory;
  /// Collapse immediately repeated labels within a day ("Eatery, Eatery"
  /// from two nearby check-ins becomes one element).
  bool collapse_repeats = true;
  /// Ignore days with fewer check-ins than this (0/1 keeps everything).
  std::size_t min_day_length = 1;
};

/// A user's mineable history: one entry per day with >= min_day_length
/// check-ins; `days[i]` and `minutes[i]` are parallel.
struct UserSequences {
  data::UserId user = 0;
  SequenceDb days;                         ///< label sequences
  std::vector<std::vector<int>> minutes;   ///< minute-of-day per element
};

/// Builds the per-day sequence database of one user.
[[nodiscard]] UserSequences build_user_sequences(const data::Dataset& dataset,
                                                 data::UserId user,
                                                 const data::Taxonomy& taxonomy,
                                                 const SequenceOptions& options = {});

/// Builds sequence databases for every user of the dataset.
[[nodiscard]] std::vector<UserSequences> build_all_sequences(
    const data::Dataset& dataset, const data::Taxonomy& taxonomy,
    const SequenceOptions& options = {});

/// Human-readable name of a mined item under the given mode.
[[nodiscard]] std::string label_name(Item item, LabelMode mode,
                                     const data::Taxonomy& taxonomy,
                                     const data::Dataset& dataset);

}  // namespace crowdweb::mining

// Miner registry: every sequential-pattern algorithm behind one
// name-keyed interface.
//
// The pipeline (patterns::mine_user_mobility, the ingest worker, the
// shard workers, the /api/mine handler) picks its miner by the string in
// MiningOptions::algorithm instead of hard-wiring a call, so swapping
// PrefixSpan for BIDE is a config change, not a rebuild. Closed-output
// miners (BIDE, CloSpan) declare themselves as such; `mine_with` expands
// their closed set back to the full frequent set when
// MiningOptions::expand_closed asks for byte-identical downstream
// output.
#pragma once

#include <string_view>
#include <vector>

#include "mining/pattern.hpp"
#include "util/status.hpp"

namespace crowdweb::mining {

/// Patterns plus the bookkeeping of the mine that produced them.
struct MiningResult {
  std::vector<Pattern> patterns;
  MiningStats stats;
  /// True when `patterns` is a *closed* set the pipeline chose not to
  /// expand (closed-output miner with MiningOptions::expand_closed off).
  /// Downstream layers that need any subsequence's support answer it by
  /// subsumption (see subsumed_support_count) instead of assuming the
  /// full frequent set is materialized.
  bool closed = false;
};

/// One registered mining algorithm. Implementations are stateless
/// singletons owned by the registry; mine() is const and safe to call
/// from many threads at once.
class IMiningAlgorithm {
 public:
  virtual ~IMiningAlgorithm() = default;

  /// Registry key, e.g. "prefixspan" or "bide".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True when mine() returns only closed patterns (a subset of the
  /// frequent set; expand with expand_closed_patterns to recover it).
  [[nodiscard]] virtual bool closed_output() const noexcept = 0;

  /// Mines `db` under `options`; `options.algorithm` is ignored here —
  /// the caller already chose by resolving this object.
  [[nodiscard]] virtual MiningResult mine(const SequenceColumns& db,
                                          const MiningOptions& options) const = 0;
};

/// The algorithm registered under `name`, or nullptr when unknown.
[[nodiscard]] const IMiningAlgorithm* find_miner(std::string_view name) noexcept;

/// Like find_miner, but an unknown name becomes an invalid_argument
/// Status listing the registered names.
[[nodiscard]] Result<const IMiningAlgorithm*> resolve_miner(std::string_view name);

/// Registered names in registration order ("prefixspan" first).
[[nodiscard]] std::vector<std::string_view> miner_names();

/// Resolves options.algorithm, mines, and — for closed-output miners
/// with options.expand_closed set — expands the closed set back to the
/// full frequent set so annotation and crowd placement match a full
/// miner byte for byte. Stats keep the miner's own `emitted` count and
/// record the reconstruction separately in `expanded`. With
/// expand_closed off a closed miner's result carries `closed = true`
/// and the patterns stay compact. An unknown algorithm name falls back
/// to "prefixspan"; validate the name up front (see resolve_miner)
/// where an error can still be reported.
[[nodiscard]] MiningResult mine_with(const SequenceColumns& db, const MiningOptions& options);

}  // namespace crowdweb::mining

#include "mining/bide.hpp"

#include <algorithm>
#include <cmath>

namespace crowdweb::mining {

namespace {

/// One entry of a pseudo-projected database: the suffix of sequence
/// `sequence` starting at element `offset`, which is one past the end of
/// the prefix's first instance in that sequence.
struct Projection {
  std::uint32_t sequence;
  std::uint32_t offset;
};

class Miner {
 public:
  Miner(const SequenceColumns& db, const MiningOptions& options)
      : db_(db), options_(options) {
    min_count_ = static_cast<std::size_t>(
        std::ceil(options.min_support * static_cast<double>(db.size())));
    if (min_count_ == 0) min_count_ = 1;

    // Translate the database onto a dense local alphabet. Per-user
    // mobility databases use a handful of distinct labels out of a much
    // larger global id space; dense ids turn every count table below
    // into a flat stamped array — no hashing on the hot path. The remap
    // is order-preserving (sorted uniques), so growth order and the
    // final canonical sort are unaffected by the translation.
    alphabet_.assign(db.items.begin(), db.items.end());
    std::sort(alphabet_.begin(), alphabet_.end());
    alphabet_.erase(std::unique(alphabet_.begin(), alphabet_.end()), alphabet_.end());
    translated_.reserve(db.items.size());
    for (const Item item : db.items)
      translated_.push_back(static_cast<Item>(
          std::lower_bound(alphabet_.begin(), alphabet_.end(), item) - alphabet_.begin()));

    const std::size_t a = alphabet_.size();
    forward_count_.resize(a);
    forward_count_stamp_.assign(a, 0);
    forward_vote_stamp_.assign(a, 0);
    const std::size_t periods = std::min<std::size_t>(options.max_pattern_length,
                                                      a == 0 ? 0 : db.items.size());
    period_count_.resize(periods * a);
    period_count_stamp_.assign(periods * a, 0);
    period_vote_stamp_.assign(periods * a, 0);
    first_pos_.resize(a * db.size());
    first_pos_stamp_.assign(a * db.size(), 0);
  }

  std::vector<Pattern> run(MiningStats* stats) {
    std::vector<Projection> root;
    root.reserve(db_.size());
    for (std::uint32_t i = 0; i < db_.size(); ++i) root.push_back({i, 0});
    grow(root);
    sort_patterns(results_);
    if (stats != nullptr) {
      stats_.emitted = results_.size();
      *stats = stats_;
    }
    return std::move(results_);
  }

 private:
  /// Sequence `s` in dense-alphabet form.
  [[nodiscard]] std::span<const Item> sequence(std::size_t s) const noexcept {
    return std::span<const Item>(translated_)
        .subspan(db_.offsets[s], db_.offsets[s + 1] - db_.offsets[s]);
  }

  /// True when some item occurs in the i-th maximum period of *every*
  /// supporting sequence, for some i — i.e. the current prefix has a
  /// backward extension of equal support and cannot be closed. With
  /// `semi` the last-in-first appearances bound the periods instead of
  /// the last-in-last ones; that is the BackScan condition, and a hit
  /// means the whole subtree can be pruned.
  ///
  /// Positions per supporting sequence C for prefix P of length n:
  ///   f[i]  — first instance of P in C (greedy left-to-right scan);
  ///   last[n-1] — last occurrence of P[n-1] in C (or f[n-1] for semi);
  ///   last[i]   — last occurrence of P[i] before last[i+1];
  ///   i-th period — C[0, last[0]) for i == 0, else C[f[i-1]+1, last[i]).
  ///
  /// Counts live in a flat (period, item) array; a per-call stamp lazily
  /// resets counts and a per-sequence stamp makes each sequence vote at
  /// most once per (period, item).
  bool backward_item_exists(const std::vector<Projection>& supporting, bool semi) {
    const std::size_t n = prefix_.size();
    const std::size_t a = alphabet_.size();
    const std::size_t support = supporting.size();
    const std::uint64_t call = ++call_token_;
    std::vector<std::size_t>& f = first_instance_;
    std::vector<std::size_t>& last = last_appearance_;
    f.resize(n);
    last.resize(n);

    for (const Projection& p : supporting) {
      const auto seq = sequence(p.sequence);
      const std::uint64_t voter = ++sequence_token_;
      std::size_t pos = 0;
      for (std::size_t i = 0; i < n; ++i) {
        while (seq[pos] != prefix_[i]) ++pos;
        f[i] = pos++;
      }
      if (semi) {
        last[n - 1] = f[n - 1];
      } else {
        pos = seq.size();
        while (seq[--pos] != prefix_[n - 1]) {
        }
        last[n - 1] = pos;
      }
      for (std::size_t i = n - 1; i-- > 0;) {
        pos = last[i + 1];
        while (seq[--pos] != prefix_[i]) {
        }
        last[i] = pos;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t begin = (i == 0) ? 0 : f[i - 1] + 1;
        const std::size_t end = last[i];  // exclusive
        const std::size_t row = i * a;
        for (std::size_t j = begin; j < end; ++j) {
          const std::size_t idx = row + seq[j];
          if (period_vote_stamp_[idx] == voter) continue;
          period_vote_stamp_[idx] = voter;
          if (period_count_stamp_[idx] != call) {
            period_count_stamp_[idx] = call;
            period_count_[idx] = 0;
          }
          // The count can only reach `support` once every sequence
          // agrees on this (period, item).
          if (++period_count_[idx] == support) return true;
        }
      }
    }
    return false;
  }

  void emit(std::size_t support_count) {
    if (results_.size() >= options_.max_patterns) {
      stats_.truncated = true;
      return;
    }
    Pattern pattern;
    pattern.items.reserve(prefix_.size());
    for (const Item dense : prefix_) pattern.items.push_back(alphabet_[dense]);
    pattern.support_count = support_count;
    pattern.support = static_cast<double>(support_count) / static_cast<double>(db_.size());
    results_.push_back(std::move(pattern));
  }

  void grow(const std::vector<Projection>& projection) {
    if (stats_.truncated) return;
    ++stats_.explored;
    const std::size_t support = projection.size();

    // Count forward items, once per projected sequence (stamped flat
    // counters, same scheme as the period table). The first occurrence
    // of each item in each suffix is recorded as it is found, so
    // projecting a frequent extension below is a table lookup instead
    // of a second scan over every suffix.
    const std::uint64_t call = ++call_token_;
    const std::size_t db_size = db_.size();
    for (std::size_t k = 0; k < projection.size(); ++k) {
      const Projection& p = projection[k];
      const auto seq = sequence(p.sequence);
      const std::uint64_t voter = ++sequence_token_;
      for (std::size_t i = p.offset; i < seq.size(); ++i) {
        const Item item = seq[i];
        if (forward_vote_stamp_[item] == voter) continue;
        forward_vote_stamp_[item] = voter;
        if (forward_count_stamp_[item] != call) {
          forward_count_stamp_[item] = call;
          forward_count_[item] = 0;
        }
        ++forward_count_[item];
        const std::size_t slot = item * db_size + k;
        first_pos_[slot] = static_cast<std::uint32_t>(i);
        first_pos_stamp_[slot] = call;
      }
    }
    // Dense ids ascend with the original item values, so scanning the
    // alphabet in order recovers the canonical growth order for free.
    std::vector<std::pair<Item, std::size_t>> frequent;
    bool forward_extension = false;
    for (Item item = 0; item < alphabet_.size(); ++item) {
      if (forward_count_stamp_[item] != call) continue;
      const std::size_t count = forward_count_[item];
      if (count >= min_count_) frequent.push_back({item, count});
      if (count == support) forward_extension = true;
    }

    if (!prefix_.empty()) {
      const bool at_cap = prefix_.size() >= options_.max_pattern_length;
      // Closed iff no forward extension and no backward extension carry
      // the full support. At the length cap emit regardless, so the
      // capped frequent set stays reconstructible (header caveat).
      if (at_cap ||
          (!forward_extension && !backward_item_exists(projection, /*semi=*/false))) {
        emit(support);
      }
      if (at_cap) return;
    }

    // Project every frequent extension now, while the table written by
    // the counting pass is still valid — recursion below re-stamps it.
    // Each projection advances its sequences one past the item's first
    // occurrence in the suffix.
    std::vector<std::vector<Projection>> extensions;
    extensions.reserve(frequent.size());
    for (const auto& [item, count] : frequent) {
      std::vector<Projection> next;
      next.reserve(count);
      for (std::size_t k = 0; k < projection.size(); ++k) {
        const std::size_t slot = item * db_size + k;
        if (first_pos_stamp_[slot] == call)
          next.push_back({projection[k].sequence, first_pos_[slot] + 1});
      }
      extensions.push_back(std::move(next));
    }

    for (std::size_t e = 0; e < frequent.size(); ++e) {
      prefix_.push_back(frequent[e].first);
      if (backward_item_exists(extensions[e], /*semi=*/true)) {
        ++stats_.pruned;  // BackScan: subtree yields no closed patterns
      } else {
        grow(extensions[e]);
      }
      prefix_.pop_back();
    }
  }

  const SequenceColumns& db_;
  const MiningOptions& options_;
  std::size_t min_count_ = 1;
  std::vector<Item> alphabet_;    ///< sorted distinct items; dense id -> item
  std::vector<Item> translated_;  ///< db_.items remapped onto dense ids
  std::vector<Item> prefix_;      ///< current prefix, dense ids
  std::vector<Pattern> results_;
  MiningStats stats_;
  // Stamped scratch tables (see backward_item_exists). Tokens are
  // monotone across the whole mine, so stale entries never collide.
  std::uint64_t call_token_ = 0;
  std::uint64_t sequence_token_ = 0;
  std::vector<std::size_t> forward_count_;
  std::vector<std::uint64_t> forward_count_stamp_;
  std::vector<std::uint64_t> forward_vote_stamp_;
  std::vector<std::size_t> period_count_;
  std::vector<std::uint64_t> period_count_stamp_;
  std::vector<std::uint64_t> period_vote_stamp_;
  // (item, projection-entry) -> first occurrence in that suffix, valid
  // when its stamp matches the grow() call that wrote it.
  std::vector<std::uint32_t> first_pos_;
  std::vector<std::uint64_t> first_pos_stamp_;
  std::vector<std::size_t> first_instance_;
  std::vector<std::size_t> last_appearance_;
};

}  // namespace

std::vector<Pattern> bide(const SequenceColumns& db, const MiningOptions& options,
                          MiningStats* stats) {
  if (stats != nullptr) *stats = {};
  if (db.empty()) return {};
  return Miner(db, options).run(stats);
}

std::vector<Pattern> bide(const SequenceDb& db, const MiningOptions& options,
                          MiningStats* stats) {
  if (stats != nullptr) *stats = {};
  if (db.empty()) return {};
  std::vector<Item> items;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(db.size() + 1);
  std::size_t total = 0;
  for (const auto& sequence : db) total += sequence.size();
  items.reserve(total);
  offsets.push_back(0);
  for (const auto& sequence : db) {
    items.insert(items.end(), sequence.begin(), sequence.end());
    offsets.push_back(static_cast<std::uint32_t>(items.size()));
  }
  const SequenceColumns view{items, offsets};
  return Miner(view, options).run(stats);
}

}  // namespace crowdweb::mining

#include "mining/gsp.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace crowdweb::mining {

namespace {

std::vector<std::vector<Item>> join_level(const std::vector<std::vector<Item>>& frequent) {
  // GSP join: p and q of length k join into length k+1 when p minus its
  // first item equals q minus its last item.
  std::vector<std::vector<Item>> candidates;
  for (const auto& p : frequent) {
    for (const auto& q : frequent) {
      const bool joins =
          std::equal(p.begin() + 1, p.end(), q.begin(), q.end() - 1);
      if (!joins) continue;
      std::vector<Item> candidate(p);
      candidate.push_back(q.back());
      candidates.push_back(std::move(candidate));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return candidates;
}

bool all_subpatterns_frequent(const std::vector<Item>& candidate,
                              const std::set<std::vector<Item>>& frequent) {
  // Apriori prune: every contiguous-deletion subpattern must be frequent.
  std::vector<Item> sub;
  sub.reserve(candidate.size() - 1);
  for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
    sub.clear();
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != drop) sub.push_back(candidate[i]);
    }
    if (!frequent.contains(sub)) return false;
  }
  return true;
}

}  // namespace

std::vector<Pattern> gsp(const SequenceDb& db, const MiningOptions& options,
                         MiningStats* stats) {
  MiningStats local;
  if (db.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  std::size_t min_count = static_cast<std::size_t>(
      std::ceil(options.min_support * static_cast<double>(db.size())));
  if (min_count == 0) min_count = 1;

  std::vector<Pattern> results;

  // Level 1: scan for frequent items.
  std::unordered_map<Item, std::size_t> item_counts;
  for (const auto& sequence : db) {
    std::vector<Item> seen;
    for (const Item item : sequence) {
      if (std::find(seen.begin(), seen.end(), item) == seen.end()) {
        seen.push_back(item);
        ++item_counts[item];
      }
    }
  }
  std::vector<std::vector<Item>> level;
  for (const auto& [item, count] : item_counts) {
    local.explored += 1;
    if (count >= min_count) level.push_back({item});
  }
  std::sort(level.begin(), level.end());

  std::set<std::vector<Item>> frequent_set;
  const auto emit_level = [&](const std::vector<std::vector<Item>>& patterns) {
    for (const auto& items : patterns) {
      if (results.size() >= options.max_patterns) {
        local.truncated = true;
        return;
      }
      Pattern p;
      p.items = items;
      p.support_count = count_support(items, db);
      p.support = static_cast<double>(p.support_count) / static_cast<double>(db.size());
      results.push_back(std::move(p));
    }
  };
  emit_level(level);

  std::size_t length = 1;
  while (!level.empty() && length < options.max_pattern_length && !local.truncated) {
    frequent_set.clear();
    frequent_set.insert(level.begin(), level.end());

    std::vector<std::vector<Item>> candidates = join_level(level);
    std::vector<std::vector<Item>> next;
    for (auto& candidate : candidates) {
      if (!all_subpatterns_frequent(candidate, frequent_set)) {
        ++local.pruned;  // apriori: cut before the counting scan
        continue;
      }
      ++local.explored;
      if (count_support(candidate, db) >= min_count) next.push_back(std::move(candidate));
    }
    emit_level(next);
    level = std::move(next);
    ++length;
  }

  sort_patterns(results);
  local.emitted = results.size();
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace crowdweb::mining

// Naive DFS sequence miner.
//
// The simplest correct miner: extend each frequent pattern by every
// frequent item and recount support with a full database scan. Sound and
// complete by the anti-monotonicity of subsequence support, but pays a
// whole-DB scan per candidate — the lower baseline of the miner-ablation
// bench and the ground truth for the property tests.
#pragma once

#include <vector>

#include "mining/pattern.hpp"

namespace crowdweb::mining {

/// Mines the same pattern set as `prefixspan` (identical output order).
/// `stats` (optional) receives emitted/explored counts and the
/// max_patterns truncation flag.
[[nodiscard]] std::vector<Pattern> naive_miner(const SequenceDb& db,
                                               const MiningOptions& options = {},
                                               MiningStats* stats = nullptr);

}  // namespace crowdweb::mining

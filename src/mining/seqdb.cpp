#include "mining/seqdb.hpp"

#include <algorithm>

#include "util/civil_time.hpp"
#include "util/format.hpp"

namespace crowdweb::mining {

namespace {

Item label_of(data::VenueId venue, data::CategoryId category, LabelMode mode,
              const data::Taxonomy& taxonomy) {
  switch (mode) {
    case LabelMode::kRootCategory:
      return taxonomy.root_of(category);
    case LabelMode::kLeafCategory:
      return category;
    case LabelMode::kVenue:
      return venue;
  }
  return category;
}

}  // namespace

void UserSequences::append_day(std::span<const Item> day_items,
                               std::span<const int> day_minutes) {
  if (day_offsets.empty()) day_offsets.push_back(0);
  items.insert(items.end(), day_items.begin(), day_items.end());
  item_minutes.insert(item_minutes.end(), day_minutes.begin(), day_minutes.end());
  day_offsets.push_back(static_cast<std::uint32_t>(items.size()));
}

UserSequences UserSequences::slice_days(std::size_t begin, std::size_t end) const {
  UserSequences out;
  out.user = user;
  for (std::size_t d = begin; d < end; ++d) out.append_day(day(d), minutes_of(d));
  return out;
}

UserSequences build_user_sequences(const data::Dataset& dataset, data::UserId user,
                                   const data::Taxonomy& taxonomy,
                                   const SequenceOptions& options) {
  UserSequences out;
  out.user = user;

  const auto records = dataset.checkins_for(user);  // already time-sorted
  const auto timestamps = records.timestamps();
  const auto venues = records.venues();
  std::vector<Item> day_items;
  std::vector<int> day_minutes;
  std::int64_t current_day = 0;
  bool have_day = false;

  const auto flush = [&] {
    if (have_day && day_items.size() >= std::max<std::size_t>(1, options.min_day_length))
      out.append_day(day_items, day_minutes);
    day_items.clear();
    day_minutes.clear();
  };

  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::int64_t day = day_index(timestamps[i]);
    if (!have_day || day != current_day) {
      flush();
      current_day = day;
      have_day = true;
    }
    const Item item = label_of(venues[i], records.category(i), options.mode, taxonomy);
    if (options.collapse_repeats && !day_items.empty() && day_items.back() == item) continue;
    day_items.push_back(item);
    day_minutes.push_back(minute_of_day(timestamps[i]));
  }
  flush();
  return out;
}

std::vector<UserSequences> build_all_sequences(const data::Dataset& dataset,
                                               const data::Taxonomy& taxonomy,
                                               const SequenceOptions& options) {
  std::vector<UserSequences> out;
  out.reserve(dataset.user_count());
  for (const data::UserId user : dataset.users())
    out.push_back(build_user_sequences(dataset, user, taxonomy, options));
  return out;
}

std::string label_name(Item item, LabelMode mode, const data::Taxonomy& taxonomy,
                       const data::Dataset& dataset) {
  switch (mode) {
    case LabelMode::kRootCategory:
    case LabelMode::kLeafCategory:
      if (item < taxonomy.size()) return taxonomy.name(static_cast<data::CategoryId>(item));
      return crowdweb::format("category#{}", item);
    case LabelMode::kVenue:
      if (dataset.venue(static_cast<data::VenueId>(item)) != nullptr)
        return std::string(dataset.venue_name(static_cast<data::VenueId>(item)));
      return crowdweb::format("venue#{}", item);
  }
  return crowdweb::format("label#{}", item);
}

}  // namespace crowdweb::mining

#include "mining/seqdb.hpp"

#include <algorithm>

#include "util/civil_time.hpp"
#include "util/format.hpp"

namespace crowdweb::mining {

namespace {

Item label_of(const data::CheckIn& checkin, LabelMode mode, const data::Taxonomy& taxonomy) {
  switch (mode) {
    case LabelMode::kRootCategory:
      return taxonomy.root_of(checkin.category);
    case LabelMode::kLeafCategory:
      return checkin.category;
    case LabelMode::kVenue:
      return checkin.venue;
  }
  return checkin.category;
}

}  // namespace

UserSequences build_user_sequences(const data::Dataset& dataset, data::UserId user,
                                   const data::Taxonomy& taxonomy,
                                   const SequenceOptions& options) {
  UserSequences out;
  out.user = user;

  const auto records = dataset.checkins_for(user);  // already time-sorted
  std::vector<Item> day_items;
  std::vector<int> day_minutes;
  std::int64_t current_day = 0;
  bool have_day = false;

  const auto flush = [&] {
    if (have_day && day_items.size() >= std::max<std::size_t>(1, options.min_day_length)) {
      out.days.push_back(day_items);
      out.minutes.push_back(day_minutes);
    }
    day_items.clear();
    day_minutes.clear();
  };

  for (const data::CheckIn& checkin : records) {
    const std::int64_t day = day_index(checkin.timestamp);
    if (!have_day || day != current_day) {
      flush();
      current_day = day;
      have_day = true;
    }
    const Item item = label_of(checkin, options.mode, taxonomy);
    if (options.collapse_repeats && !day_items.empty() && day_items.back() == item) continue;
    day_items.push_back(item);
    const CivilTime civil = to_civil(checkin.timestamp);
    day_minutes.push_back(civil.hour * 60 + civil.minute);
  }
  flush();
  return out;
}

std::vector<UserSequences> build_all_sequences(const data::Dataset& dataset,
                                               const data::Taxonomy& taxonomy,
                                               const SequenceOptions& options) {
  std::vector<UserSequences> out;
  out.reserve(dataset.user_count());
  for (const data::UserId user : dataset.users())
    out.push_back(build_user_sequences(dataset, user, taxonomy, options));
  return out;
}

std::string label_name(Item item, LabelMode mode, const data::Taxonomy& taxonomy,
                       const data::Dataset& dataset) {
  switch (mode) {
    case LabelMode::kRootCategory:
    case LabelMode::kLeafCategory:
      if (item < taxonomy.size()) return taxonomy.name(static_cast<data::CategoryId>(item));
      return crowdweb::format("category#{}", item);
    case LabelMode::kVenue:
      if (const data::Venue* venue = dataset.venue(static_cast<data::VenueId>(item)))
        return venue->name;
      return crowdweb::format("venue#{}", item);
  }
  return crowdweb::format("label#{}", item);
}

}  // namespace crowdweb::mining

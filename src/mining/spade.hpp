// SPADE — Sequential PAttern Discovery using Equivalence classes
// (Zaki, Machine Learning 2001), single-item-element variant.
//
// Works in the *vertical* format: every item carries an id-list of
// (sequence, position) occurrences; a pattern's id-list is computed by a
// temporal join of its prefix's id-list with the extending item's, and
// support falls out as the number of distinct sequences in the list.
// Completes the classic miner trio next to PrefixSpan (projection-based)
// and GSP (candidate generation); all three are output-equivalent, which
// the property tests enforce.
#pragma once

#include <vector>

#include "mining/pattern.hpp"

namespace crowdweb::mining {

/// Mines the same pattern set as `prefixspan` (identical output order).
/// `stats` (optional) receives emitted/explored counts and the
/// max_patterns truncation flag.
[[nodiscard]] std::vector<Pattern> spade(const SequenceDb& db,
                                         const MiningOptions& options = {},
                                         MiningStats* stats = nullptr);

}  // namespace crowdweb::mining

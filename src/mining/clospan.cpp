#include "mining/clospan.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace crowdweb::mining {

namespace {

/// One entry of a pseudo-projected database: the suffix of sequence
/// `sequence` starting at element `offset`.
struct Projection {
  std::uint32_t sequence;
  std::uint32_t offset;
};

class Miner {
 public:
  Miner(const SequenceColumns& db, const MiningOptions& options)
      : db_(db), options_(options) {
    min_count_ = static_cast<std::size_t>(
        std::ceil(options.min_support * static_cast<double>(db.size())));
    if (min_count_ == 0) min_count_ = 1;
  }

  std::vector<Pattern> run(MiningStats* stats) {
    std::vector<Projection> root;
    root.reserve(db_.size());
    for (std::uint32_t i = 0; i < db_.size(); ++i) root.push_back({i, 0});
    grow(root);
    // The tree collects the (pruned) frequent set in DFS order; close it
    // and restore the canonical order every miner promises.
    results_ = closed_patterns(std::move(results_));
    sort_patterns(results_);
    if (stats != nullptr) {
      stats_.emitted = results_.size();
      *stats = stats_;
    }
    return std::move(results_);
  }

 private:
  /// Projected-database footprint: each entry counts its remaining items
  /// plus one for the entry itself. The +1 matters — suffix lengths alone
  /// cannot tell two exhausted suffixes from one, and a sub-pattern can
  /// out-support its super-pattern purely on empty-suffix entries. With
  /// entries counted, equal footprints plus a sub-pattern relation imply
  /// *identical* projected databases (CloSpan's equivalence lemma), which
  /// is what licenses the prune.
  std::size_t footprint_of(const std::vector<Projection>& projection) const {
    std::size_t total = 0;
    for (const Projection& p : projection)
      total += db_.sequence(p.sequence).size() - p.offset + 1;
    return total;
  }

  void grow(const std::vector<Projection>& projection) {
    if (prefix_.size() >= options_.max_pattern_length) return;
    if (stats_.truncated) return;
    ++stats_.explored;

    // Count forward items, once per projected sequence.
    counts_.clear();
    for (const Projection& p : projection) {
      const auto sequence = db_.sequence(p.sequence);
      seen_.clear();
      for (std::size_t i = p.offset; i < sequence.size(); ++i) {
        const Item item = sequence[i];
        if (seen_.insert(item).second) ++counts_[item];
      }
    }
    std::vector<std::pair<Item, std::size_t>> frequent;
    for (const auto& [item, count] : counts_) {
      if (count >= min_count_) frequent.push_back({item, count});
    }
    std::sort(frequent.begin(), frequent.end());

    for (const auto& [item, count] : frequent) {
      prefix_.push_back(item);
      std::vector<Projection> next;
      next.reserve(count);
      for (const Projection& p : projection) {
        const auto sequence = db_.sequence(p.sequence);
        for (std::size_t i = p.offset; i < sequence.size(); ++i) {
          if (sequence[i] == item) {
            next.push_back({p.sequence, static_cast<std::uint32_t>(i + 1)});
            break;
          }
        }
      }

      // Equivalent-projection prune: an already-explored super-pattern
      // with the same footprint has an identical projected database, so
      // this subtree can only repeat supports that subtree produced (and
      // every pattern here is a same-support sub-pattern of one there —
      // non-closed by construction).
      const std::size_t footprint = footprint_of(next);
      auto& peers = history_[footprint];
      bool prunable = false;
      for (const std::vector<Item>& earlier : peers) {
        if (earlier.size() >= prefix_.size() && is_subsequence(prefix_, earlier)) {
          prunable = true;
          break;
        }
      }
      if (prunable) {
        ++stats_.pruned;
      } else {
        peers.push_back(prefix_);
        if (results_.size() >= options_.max_patterns) {
          stats_.truncated = true;
        } else {
          Pattern pattern;
          pattern.items = prefix_;
          pattern.support_count = count;
          pattern.support =
              static_cast<double>(count) / static_cast<double>(db_.size());
          results_.push_back(std::move(pattern));
          grow(next);
        }
      }
      prefix_.pop_back();
      if (stats_.truncated) return;
    }
  }

  const SequenceColumns& db_;
  const MiningOptions& options_;
  std::size_t min_count_ = 1;
  std::vector<Item> prefix_;
  std::vector<Pattern> results_;
  MiningStats stats_;
  // footprint -> explored prefixes with that footprint.
  std::unordered_map<std::size_t, std::vector<std::vector<Item>>> history_;
  // Scratch buffers reused across calls; only live before the recursion
  // point of grow().
  std::unordered_map<Item, std::size_t> counts_;
  struct SeenSet {
    std::vector<Item> items;
    void clear() { items.clear(); }
    std::pair<int, bool> insert(Item item) {
      if (std::find(items.begin(), items.end(), item) != items.end()) return {0, false};
      items.push_back(item);
      return {0, true};
    }
  } seen_;
};

}  // namespace

std::vector<Pattern> clospan(const SequenceColumns& db, const MiningOptions& options,
                             MiningStats* stats) {
  if (stats != nullptr) *stats = {};
  if (db.empty()) return {};
  return Miner(db, options).run(stats);
}

std::vector<Pattern> clospan(const SequenceDb& db, const MiningOptions& options,
                             MiningStats* stats) {
  if (stats != nullptr) *stats = {};
  if (db.empty()) return {};
  std::vector<Item> items;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(db.size() + 1);
  std::size_t total = 0;
  for (const auto& sequence : db) total += sequence.size();
  items.reserve(total);
  offsets.push_back(0);
  for (const auto& sequence : db) {
    items.insert(items.end(), sequence.begin(), sequence.end());
    offsets.push_back(static_cast<std::uint32_t>(items.size()));
  }
  const SequenceColumns view{items, offsets};
  return Miner(view, options).run(stats);
}

}  // namespace crowdweb::mining

#include "mining/spade.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace crowdweb::mining {

namespace {

/// One occurrence: the pattern's *last* element sits at `position` of
/// sequence `sequence`. Lists are kept sorted by (sequence, position).
struct Occurrence {
  std::uint32_t sequence;
  std::uint32_t position;
};

using IdList = std::vector<Occurrence>;

/// Number of distinct sequences in a sorted id-list.
std::size_t support_of(const IdList& list) {
  std::size_t count = 0;
  std::uint32_t previous = 0;
  bool first = true;
  for (const Occurrence& occurrence : list) {
    if (first || occurrence.sequence != previous) {
      ++count;
      previous = occurrence.sequence;
      first = false;
    }
  }
  return count;
}

/// Temporal join: occurrences of `item` that appear *after* some
/// occurrence of the prefix within the same sequence. For each sequence
/// we keep, per position of `item`, one entry when any prefix occurrence
/// precedes it; the earliest suffices because id-lists are position
/// sorted.
IdList temporal_join(const IdList& prefix, const IdList& item) {
  IdList out;
  std::size_t p = 0;
  std::size_t i = 0;
  while (p < prefix.size() && i < item.size()) {
    if (prefix[p].sequence < item[i].sequence) {
      ++p;
      continue;
    }
    if (item[i].sequence < prefix[p].sequence) {
      ++i;
      continue;
    }
    // Same sequence: prefix[p] is the earliest remaining prefix
    // occurrence; emit every later item occurrence in this sequence.
    const std::uint32_t sequence = prefix[p].sequence;
    const std::uint32_t earliest = prefix[p].position;
    while (i < item.size() && item[i].sequence == sequence) {
      if (item[i].position > earliest) out.push_back(item[i]);
      ++i;
    }
    while (p < prefix.size() && prefix[p].sequence == sequence) ++p;
  }
  return out;
}

void grow(const std::vector<Item>& prefix, const IdList& prefix_list,
          const std::vector<std::pair<Item, const IdList*>>& frequent_items,
          std::size_t min_count, std::size_t db_size, const MiningOptions& options,
          std::vector<Pattern>& results, MiningStats& stats) {
  if (prefix.size() >= options.max_pattern_length) return;
  if (stats.truncated) return;
  ++stats.explored;
  for (const auto& [item, item_list] : frequent_items) {
    IdList joined = temporal_join(prefix_list, *item_list);
    const std::size_t count = support_of(joined);
    if (count < min_count) continue;
    if (results.size() >= options.max_patterns) {
      stats.truncated = true;
      return;
    }
    std::vector<Item> extended = prefix;
    extended.push_back(item);
    Pattern pattern;
    pattern.items = extended;
    pattern.support_count = count;
    pattern.support = static_cast<double>(count) / static_cast<double>(db_size);
    results.push_back(std::move(pattern));
    grow(extended, joined, frequent_items, min_count, db_size, options, results, stats);
  }
}

}  // namespace

std::vector<Pattern> spade(const SequenceDb& db, const MiningOptions& options,
                           MiningStats* stats) {
  MiningStats local;
  if (db.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  std::size_t min_count = static_cast<std::size_t>(
      std::ceil(options.min_support * static_cast<double>(db.size())));
  if (min_count == 0) min_count = 1;

  // Vertical format: id-lists per item.
  std::map<Item, IdList> id_lists;
  for (std::uint32_t s = 0; s < db.size(); ++s) {
    for (std::uint32_t p = 0; p < db[s].size(); ++p)
      id_lists[db[s][p]].push_back({s, p});
  }

  std::vector<Pattern> results;
  std::vector<std::pair<Item, const IdList*>> frequent_items;
  for (const auto& [item, list] : id_lists) {
    if (support_of(list) >= min_count) frequent_items.push_back({item, &list});
  }
  // std::map iterates ascending, so frequent_items is already in the
  // deterministic item order the other miners use.

  local.explored = 1;  // the root (empty-prefix) expansion
  for (const auto& [item, list] : frequent_items) {
    if (results.size() >= options.max_patterns) {
      local.truncated = true;
      break;
    }
    Pattern pattern;
    pattern.items = {item};
    pattern.support_count = support_of(*list);
    pattern.support =
        static_cast<double>(pattern.support_count) / static_cast<double>(db.size());
    results.push_back(pattern);
    grow({item}, *list, frequent_items, min_count, db.size(), options, results, local);
  }
  sort_patterns(results);
  local.emitted = results.size();
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace crowdweb::mining

#include "mining/prefixspan.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace crowdweb::mining {

namespace {

/// One entry of a pseudo-projected database: the suffix of sequence
/// `sequence` starting at element `offset` (an index local to the
/// sequence, not into the flat item array).
struct Projection {
  std::uint32_t sequence;
  std::uint32_t offset;
};

class Miner {
 public:
  Miner(const SequenceColumns& db, const MiningOptions& options)
      : db_(db), options_(options) {
    min_count_ = static_cast<std::size_t>(
        std::ceil(options.min_support * static_cast<double>(db.size())));
    if (min_count_ == 0) min_count_ = 1;
  }

  std::vector<Pattern> run() {
    // Root projection: every sequence from offset 0.
    std::vector<Projection> root;
    root.reserve(db_.size());
    for (std::uint32_t i = 0; i < db_.size(); ++i) root.push_back({i, 0});
    grow(root);
    sort_patterns(results_);
    return std::move(results_);
  }

 private:
  /// Extends the current prefix by every frequent item of `projection`.
  void grow(const std::vector<Projection>& projection) {
    if (prefix_.size() >= options_.max_pattern_length) return;
    if (results_.size() >= options_.max_patterns) return;

    // Count each item once per projected sequence, walking the flat
    // item column directly.
    counts_.clear();
    for (const Projection& p : projection) {
      const auto sequence = db_.sequence(p.sequence);
      seen_.clear();
      for (std::size_t i = p.offset; i < sequence.size(); ++i) {
        const Item item = sequence[i];
        if (seen_.insert(item).second) ++counts_[item];
      }
    }

    // Deterministic order: ascending item id. Local because the recursive
    // grow() below reuses the shared scratch buffers.
    std::vector<std::pair<Item, std::size_t>> frequent;
    for (const auto& [item, count] : counts_) {
      if (count >= min_count_) frequent.push_back({item, count});
    }
    std::sort(frequent.begin(), frequent.end());

    for (const auto& [item, count] : frequent) {
      if (results_.size() >= options_.max_patterns) return;
      prefix_.push_back(item);
      Pattern pattern;
      pattern.items = prefix_;
      pattern.support_count = count;
      pattern.support =
          db_.empty() ? 0.0 : static_cast<double>(count) / static_cast<double>(db_.size());
      results_.push_back(std::move(pattern));

      // Project: advance each sequence past its first occurrence of item.
      std::vector<Projection> next;
      next.reserve(count);
      for (const Projection& p : projection) {
        const auto sequence = db_.sequence(p.sequence);
        for (std::size_t i = p.offset; i < sequence.size(); ++i) {
          if (sequence[i] == item) {
            next.push_back({p.sequence, static_cast<std::uint32_t>(i + 1)});
            break;
          }
        }
      }
      grow(next);
      prefix_.pop_back();
    }
  }

  const SequenceColumns& db_;
  const MiningOptions& options_;
  std::size_t min_count_ = 1;
  std::vector<Item> prefix_;
  std::vector<Pattern> results_;
  // Scratch buffers reused across calls to avoid churn; only used before
  // the recursion point of grow().
  std::unordered_map<Item, std::size_t> counts_;
  struct SeenSet {
    std::vector<Item> items;
    void clear() { items.clear(); }
    std::pair<int, bool> insert(Item item) {
      if (std::find(items.begin(), items.end(), item) != items.end()) return {0, false};
      items.push_back(item);
      return {0, true};
    }
  } seen_;
};

}  // namespace

std::vector<Pattern> prefixspan(const SequenceColumns& db, const MiningOptions& options) {
  if (db.empty()) return {};
  return Miner(db, options).run();
}

std::vector<Pattern> prefixspan(const SequenceDb& db, const MiningOptions& options) {
  if (db.empty()) return {};
  // Flatten once; the miner only ever reads through the view.
  std::vector<Item> items;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(db.size() + 1);
  std::size_t total = 0;
  for (const auto& sequence : db) total += sequence.size();
  items.reserve(total);
  offsets.push_back(0);
  for (const auto& sequence : db) {
    items.insert(items.end(), sequence.begin(), sequence.end());
    offsets.push_back(static_cast<std::uint32_t>(items.size()));
  }
  const SequenceColumns view{items, offsets};
  return Miner(view, options).run();
}

}  // namespace crowdweb::mining

#include "mining/registry.hpp"

#include <array>
#include <string>

#include "mining/bide.hpp"
#include "mining/clospan.hpp"
#include "mining/gsp.hpp"
#include "mining/naive.hpp"
#include "mining/prefixspan.hpp"
#include "mining/spade.hpp"

namespace crowdweb::mining {

namespace {

/// The level-wise and vertical miners still consume the nested format;
/// copy the columns out for them. The hot-path miners (PrefixSpan, BIDE,
/// CloSpan) read the columns directly.
SequenceDb materialize(const SequenceColumns& db) {
  SequenceDb out(db.size());
  for (std::size_t s = 0; s < db.size(); ++s) {
    const auto sequence = db.sequence(s);
    out[s].assign(sequence.begin(), sequence.end());
  }
  return out;
}

class PrefixSpanMiner final : public IMiningAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "prefixspan"; }
  [[nodiscard]] bool closed_output() const noexcept override { return false; }
  [[nodiscard]] MiningResult mine(const SequenceColumns& db,
                                  const MiningOptions& options) const override {
    MiningResult result;
    result.patterns = prefixspan(db, options, &result.stats);
    return result;
  }
};

class GspMiner final : public IMiningAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "gsp"; }
  [[nodiscard]] bool closed_output() const noexcept override { return false; }
  [[nodiscard]] MiningResult mine(const SequenceColumns& db,
                                  const MiningOptions& options) const override {
    MiningResult result;
    result.patterns = gsp(materialize(db), options, &result.stats);
    return result;
  }
};

class SpadeMiner final : public IMiningAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "spade"; }
  [[nodiscard]] bool closed_output() const noexcept override { return false; }
  [[nodiscard]] MiningResult mine(const SequenceColumns& db,
                                  const MiningOptions& options) const override {
    MiningResult result;
    result.patterns = spade(materialize(db), options, &result.stats);
    return result;
  }
};

class NaiveMiner final : public IMiningAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "naive"; }
  [[nodiscard]] bool closed_output() const noexcept override { return false; }
  [[nodiscard]] MiningResult mine(const SequenceColumns& db,
                                  const MiningOptions& options) const override {
    MiningResult result;
    result.patterns = naive_miner(materialize(db), options, &result.stats);
    return result;
  }
};

class BideMiner final : public IMiningAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "bide"; }
  [[nodiscard]] bool closed_output() const noexcept override { return true; }
  [[nodiscard]] MiningResult mine(const SequenceColumns& db,
                                  const MiningOptions& options) const override {
    MiningResult result;
    result.patterns = bide(db, options, &result.stats);
    return result;
  }
};

class ClospanMiner final : public IMiningAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "clospan"; }
  [[nodiscard]] bool closed_output() const noexcept override { return true; }
  [[nodiscard]] MiningResult mine(const SequenceColumns& db,
                                  const MiningOptions& options) const override {
    MiningResult result;
    result.patterns = clospan(db, options, &result.stats);
    return result;
  }
};

const std::array<const IMiningAlgorithm*, 6>& all_miners() {
  static const PrefixSpanMiner prefixspan_miner;
  static const GspMiner gsp_miner;
  static const SpadeMiner spade_miner;
  static const NaiveMiner naive_miner_adapter;
  static const BideMiner bide_miner;
  static const ClospanMiner clospan_miner;
  static const std::array<const IMiningAlgorithm*, 6> miners = {
      &prefixspan_miner, &gsp_miner,  &spade_miner,
      &naive_miner_adapter, &bide_miner, &clospan_miner};
  return miners;
}

}  // namespace

const IMiningAlgorithm* find_miner(std::string_view name) noexcept {
  for (const IMiningAlgorithm* miner : all_miners()) {
    if (miner->name() == name) return miner;
  }
  return nullptr;
}

Result<const IMiningAlgorithm*> resolve_miner(std::string_view name) {
  if (const IMiningAlgorithm* miner = find_miner(name); miner != nullptr) return miner;
  std::string known;
  for (const IMiningAlgorithm* miner : all_miners()) {
    if (!known.empty()) known += ", ";
    known += miner->name();
  }
  return invalid_argument("unknown mining algorithm '" + std::string(name) +
                          "' (registered: " + known + ")");
}

std::vector<std::string_view> miner_names() {
  std::vector<std::string_view> names;
  names.reserve(all_miners().size());
  for (const IMiningAlgorithm* miner : all_miners()) names.push_back(miner->name());
  return names;
}

MiningResult mine_with(const SequenceColumns& db, const MiningOptions& options) {
  const IMiningAlgorithm* miner = find_miner(options.algorithm);
  if (miner == nullptr) miner = find_miner("prefixspan");
  MiningResult result = miner->mine(db, options);
  if (miner->closed_output()) {
    if (options.expand_closed) {
      MiningStats expand_stats;
      result.patterns =
          expand_closed_patterns(result.patterns, db.size(), options, &expand_stats);
      result.stats.expanded = expand_stats.expanded;
      result.stats.truncated = result.stats.truncated || expand_stats.truncated;
    } else {
      result.closed = true;
    }
  }
  return result;
}

}  // namespace crowdweb::mining

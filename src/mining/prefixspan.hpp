// PrefixSpan sequential-pattern mining (Pei et al., TKDE 2004).
//
// Depth-first pattern growth over pseudo-projected databases: for a
// current prefix, the projection holds (sequence, offset) pairs pointing
// at the suffix after the prefix's first embedding. Extending by item `x`
// keeps only sequences whose suffix contains `x` and advances the offset —
// no sequence data is ever copied, which is the algorithm's contribution
// over Apriori/GSP-style candidate generation.
//
// The miner walks the columnar SequenceColumns view (one contiguous
// item array + offsets), so projections index straight into a flat
// buffer; the nested SequenceDb overload flattens once and delegates.
//
// This is the miner behind the paper's "modified PrefixSpan" (the
// modifications — location abstraction, per-day sequences, relative
// support, time annotation — live in `seqdb` and `patterns`).
#pragma once

#include <vector>

#include "mining/pattern.hpp"

namespace crowdweb::mining {

/// Mines all frequent sequential patterns of `db` at `options.min_support`
/// (relative). Results are in canonical order (see sort_patterns). When
/// `stats` is non-null it receives emitted/explored counts and the
/// truncated flag (max_patterns suppressed an emission).
[[nodiscard]] std::vector<Pattern> prefixspan(const SequenceColumns& db,
                                              const MiningOptions& options = {},
                                              MiningStats* stats = nullptr);

/// Nested-vector convenience overload: flattens `db` and delegates.
[[nodiscard]] std::vector<Pattern> prefixspan(const SequenceDb& db,
                                              const MiningOptions& options = {},
                                              MiningStats* stats = nullptr);

}  // namespace crowdweb::mining

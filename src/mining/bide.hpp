// BIDE — BI-Directional Extension closed-pattern mining
// (Wang & Han, ICDE 2004), single-item-element variant.
//
// Mines exactly the *closed* frequent patterns — those with no
// super-pattern of equal support — without keeping the full frequent set
// around for a post-filter. A PrefixSpan-style projection tree is walked
// forward; at every node a backward scan over the supporting sequences'
// maximum periods decides closure (no backward extension item and no
// forward extension item with the same support), and the BackScan check
// over semi-maximum periods prunes whole subtrees that can only produce
// non-closed patterns. On the paper's mobility corpora the closed set is
// several times smaller than the frequent set at the same support, which
// is the point: smaller tables, faster epochs.
#pragma once

#include <vector>

#include "mining/pattern.hpp"

namespace crowdweb::mining {

/// Mines the closed subset of the patterns `prefixspan` would emit, in
/// the same canonical order. `stats` (optional) receives
/// emitted/explored counts, BackScan-pruned subtrees, and the
/// max_patterns truncation flag.
///
/// Caveat: at max_pattern_length the node is emitted whether or not it
/// is closed, so that expand_closed_patterns() can still reconstruct the
/// capped frequent set. A pattern whose only equal-support super-pattern
/// lies beyond the cap is therefore reported as closed; irrelevant for
/// day-sequences (far shorter than the default cap of 12), but worth
/// knowing when lowering the cap.
[[nodiscard]] std::vector<Pattern> bide(const SequenceColumns& db,
                                        const MiningOptions& options = {},
                                        MiningStats* stats = nullptr);

/// Convenience overload that flattens `db` into columns first.
[[nodiscard]] std::vector<Pattern> bide(const SequenceDb& db, const MiningOptions& options = {},
                                        MiningStats* stats = nullptr);

}  // namespace crowdweb::mining

#include "mining/naive.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace crowdweb::mining {

namespace {

void extend(const SequenceDb& db, const std::vector<Item>& alphabet, std::size_t min_count,
            const MiningOptions& options, std::vector<Item>& prefix,
            std::vector<Pattern>& results, MiningStats& stats) {
  if (prefix.size() >= options.max_pattern_length) return;
  if (stats.truncated) return;
  ++stats.explored;
  for (const Item item : alphabet) {
    prefix.push_back(item);
    const std::size_t count = count_support(prefix, db);
    if (count >= min_count) {
      if (results.size() >= options.max_patterns) {
        stats.truncated = true;
        prefix.pop_back();
        return;
      }
      Pattern p;
      p.items = prefix;
      p.support_count = count;
      p.support = static_cast<double>(count) / static_cast<double>(db.size());
      results.push_back(std::move(p));
      extend(db, alphabet, min_count, options, prefix, results, stats);
    }
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Pattern> naive_miner(const SequenceDb& db, const MiningOptions& options,
                                 MiningStats* stats) {
  MiningStats local;
  if (db.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  std::size_t min_count = static_cast<std::size_t>(
      std::ceil(options.min_support * static_cast<double>(db.size())));
  if (min_count == 0) min_count = 1;

  // Alphabet: the globally frequent items (anything else cannot appear in
  // a frequent pattern).
  std::unordered_map<Item, std::size_t> counts;
  for (const auto& sequence : db) {
    std::vector<Item> seen;
    for (const Item item : sequence) {
      if (std::find(seen.begin(), seen.end(), item) == seen.end()) {
        seen.push_back(item);
        ++counts[item];
      }
    }
  }
  std::vector<Item> alphabet;
  for (const auto& [item, count] : counts) {
    if (count >= min_count) alphabet.push_back(item);
  }
  std::sort(alphabet.begin(), alphabet.end());

  std::vector<Pattern> results;
  std::vector<Item> prefix;
  extend(db, alphabet, min_count, options, prefix, results, local);
  sort_patterns(results);
  local.emitted = results.size();
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace crowdweb::mining

#include "mining/pattern.hpp"

#include <algorithm>

namespace crowdweb::mining {

bool is_subsequence(std::span<const Item> needle, std::span<const Item> haystack) noexcept {
  std::size_t n = 0;
  for (const Item item : haystack) {
    if (n == needle.size()) return true;
    if (item == needle[n]) ++n;
  }
  return n == needle.size();
}

std::size_t count_support(std::span<const Item> pattern, const SequenceDb& db) {
  std::size_t count = 0;
  for (const auto& sequence : db) {
    if (is_subsequence(pattern, sequence)) ++count;
  }
  return count;
}

std::size_t count_support(std::span<const Item> pattern, const SequenceColumns& db) {
  std::size_t count = 0;
  for (std::size_t s = 0; s < db.size(); ++s) {
    if (is_subsequence(pattern, db.sequence(s))) ++count;
  }
  return count;
}

void sort_patterns(std::vector<Pattern>& patterns) {
  std::sort(patterns.begin(), patterns.end(), [](const Pattern& a, const Pattern& b) {
    if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
    return a.items < b.items;
  });
}

std::vector<Pattern> closed_patterns(std::vector<Pattern> patterns) {
  std::vector<Pattern> out;
  for (const Pattern& candidate : patterns) {
    const bool subsumed = std::any_of(
        patterns.begin(), patterns.end(), [&](const Pattern& other) {
          return other.items.size() > candidate.items.size() &&
                 other.support_count == candidate.support_count &&
                 is_subsequence(candidate.items, other.items);
        });
    if (!subsumed) out.push_back(candidate);
  }
  return out;
}

std::vector<Pattern> maximal_patterns(std::vector<Pattern> patterns) {
  std::vector<Pattern> out;
  for (const Pattern& candidate : patterns) {
    const bool subsumed = std::any_of(
        patterns.begin(), patterns.end(), [&](const Pattern& other) {
          return other.items.size() > candidate.items.size() &&
                 is_subsequence(candidate.items, other.items);
        });
    if (!subsumed) out.push_back(candidate);
  }
  return out;
}

}  // namespace crowdweb::mining

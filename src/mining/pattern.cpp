#include "mining/pattern.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace crowdweb::mining {

bool is_subsequence(std::span<const Item> needle, std::span<const Item> haystack) noexcept {
  std::size_t n = 0;
  for (const Item item : haystack) {
    if (n == needle.size()) return true;
    if (item == needle[n]) ++n;
  }
  return n == needle.size();
}

std::size_t count_support(std::span<const Item> pattern, const SequenceDb& db) {
  std::size_t count = 0;
  for (const auto& sequence : db) {
    if (is_subsequence(pattern, sequence)) ++count;
  }
  return count;
}

std::size_t count_support(std::span<const Item> pattern, const SequenceColumns& db) {
  std::size_t count = 0;
  for (std::size_t s = 0; s < db.size(); ++s) {
    if (is_subsequence(pattern, db.sequence(s))) ++count;
  }
  return count;
}

void sort_patterns(std::vector<Pattern>& patterns) {
  std::sort(patterns.begin(), patterns.end(), [](const Pattern& a, const Pattern& b) {
    if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
    return a.items < b.items;
  });
}

namespace {

/// Candidate indices bucketed by pattern length, ascending. A subsuming
/// super-pattern is strictly longer than its victim, so each candidate
/// only ever scans the buckets above its own length — the sweep that
/// used to be a full O(n^2) pass over the set now touches only the
/// (typically thin) longer tail, which is what lets the post-filters
/// serve as a cross-check oracle against the native closed miners at
/// corpus scale.
std::map<std::size_t, std::vector<std::size_t>> bucket_by_length(
    const std::vector<Pattern>& patterns) {
  std::map<std::size_t, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < patterns.size(); ++i)
    buckets[patterns[i].items.size()].push_back(i);
  return buckets;
}

}  // namespace

std::vector<Pattern> closed_patterns(std::vector<Pattern> patterns) {
  const auto buckets = bucket_by_length(patterns);
  std::vector<Pattern> out;
  for (const Pattern& candidate : patterns) {
    bool subsumed = false;
    for (auto it = buckets.upper_bound(candidate.items.size());
         it != buckets.end() && !subsumed; ++it) {
      for (const std::size_t other_index : it->second) {
        const Pattern& other = patterns[other_index];
        // Equal support first: it rejects most pairs without touching
        // the items at all (closure only cares about support-preserving
        // super-patterns).
        if (other.support_count != candidate.support_count) continue;
        if (is_subsequence(candidate.items, other.items)) {
          subsumed = true;
          break;
        }
      }
    }
    if (!subsumed) out.push_back(candidate);
  }
  return out;
}

std::vector<Pattern> maximal_patterns(std::vector<Pattern> patterns) {
  const auto buckets = bucket_by_length(patterns);
  std::vector<Pattern> out;
  for (const Pattern& candidate : patterns) {
    bool subsumed = false;
    for (auto it = buckets.upper_bound(candidate.items.size());
         it != buckets.end() && !subsumed; ++it) {
      for (const std::size_t other_index : it->second) {
        if (is_subsequence(candidate.items, patterns[other_index].items)) {
          subsumed = true;
          break;
        }
      }
    }
    if (!subsumed) out.push_back(candidate);
  }
  return out;
}

namespace {

/// Hash for item vectors (FNV-1a over the raw items).
struct ItemsHash {
  std::size_t operator()(const std::vector<Item>& items) const noexcept {
    std::size_t hash = 1469598103934665603ull;
    for (const Item item : items) {
      hash ^= item;
      hash *= 1099511628211ull;
    }
    return hash;
  }
};

}  // namespace

std::vector<Pattern> expand_closed_patterns(std::span<const Pattern> closed,
                                            std::size_t db_size,
                                            const MiningOptions& options,
                                            MiningStats* stats) {
  // support(s) = max over closed q >= s of support(q): enumerating every
  // subsequence of every closed pattern and keeping the max per distinct
  // item vector computes exactly that, with no database scans at all —
  // the reason closed mining plus expansion can undercut a full miner
  // even when the caller wants the full set back.
  std::unordered_map<std::vector<Item>, std::size_t, ItemsHash> best;
  bool truncated = false;
  std::vector<Item> scratch;
  for (const Pattern& pattern : closed) {
    scratch.clear();
    // Include/exclude DFS over positions; duplicates (the same
    // subsequence reachable through different position sets) collapse in
    // the map.
    const auto enumerate = [&](auto&& self, std::size_t position) -> void {
      if (position == pattern.items.size()) {
        if (scratch.empty() || scratch.size() > options.max_pattern_length) return;
        const auto it = best.find(scratch);
        if (it != best.end()) {
          it->second = std::max(it->second, pattern.support_count);
        } else if (best.size() < options.max_patterns) {
          best.emplace(scratch, pattern.support_count);
        } else {
          truncated = true;  // cap: supports of admitted patterns stay exact
        }
        return;
      }
      scratch.push_back(pattern.items[position]);
      self(self, position + 1);
      scratch.pop_back();
      self(self, position + 1);
    };
    enumerate(enumerate, 0);
  }
  std::vector<Pattern> out;
  out.reserve(best.size());
  for (auto& [items, support_count] : best) {
    Pattern pattern;
    pattern.items = items;
    pattern.support_count = support_count;
    pattern.support = db_size == 0
                          ? 0.0
                          : static_cast<double>(support_count) / static_cast<double>(db_size);
    out.push_back(std::move(pattern));
  }
  sort_patterns(out);
  if (stats != nullptr) {
    stats->expanded = out.size();
    stats->truncated = stats->truncated || truncated;
  }
  return out;
}

std::size_t subsumed_support_count(std::span<const Item> items,
                                   std::span<const Pattern> closed) noexcept {
  std::size_t best = 0;
  for (const Pattern& pattern : closed) {
    if (pattern.support_count <= best) continue;  // cannot improve the max
    if (pattern.items.size() < items.size()) continue;
    if (is_subsequence(items, pattern.items)) best = pattern.support_count;
  }
  return best;
}

}  // namespace crowdweb::mining

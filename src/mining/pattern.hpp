// Sequential-pattern vocabulary shared by the miners.
//
// A *sequence* is one day of a user's visits, reduced to labels (items).
// A *pattern* is a subsequence that occurs in at least `min_support`
// fraction of the user's day-sequences (relative support, as the paper
// sweeps it from 0.25 to 0.75). All three miners (PrefixSpan, GSP, naive)
// emit the same `Pattern` type so tests can cross-check them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crowdweb::mining {

/// A mined label. Wide enough for venue ids in raw-venue mode.
using Item = std::uint32_t;

/// One sequence database: items[d] is day d's time-ordered label sequence.
using SequenceDb = std::vector<std::vector<Item>>;

/// Columnar (structure-of-arrays) view of a sequence database: every
/// sequence's items live in one contiguous array, and sequence `s`
/// spans items[offsets[s], offsets[s+1]). `offsets` holds size()+1
/// entries (or none for an empty database). The miners walk this view
/// directly; UserSequences::columns() produces one with no copying.
struct SequenceColumns {
  std::span<const Item> items;
  std::span<const std::uint32_t> offsets;

  [[nodiscard]] std::size_t size() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Sequence `s` as a contiguous span (no bounds check).
  [[nodiscard]] std::span<const Item> sequence(std::size_t s) const noexcept {
    return items.subspan(offsets[s], offsets[s + 1] - offsets[s]);
  }
};

/// A frequent sequential pattern.
struct Pattern {
  std::vector<Item> items;
  std::size_t support_count = 0;  ///< sequences containing the pattern
  double support = 0.0;           ///< support_count / |db|

  friend bool operator==(const Pattern&, const Pattern&) = default;
};

/// True when `needle` is a (not necessarily contiguous) subsequence of
/// `haystack`.
[[nodiscard]] bool is_subsequence(std::span<const Item> needle,
                                  std::span<const Item> haystack) noexcept;

/// Number of sequences in `db` containing `pattern` (each counts once).
[[nodiscard]] std::size_t count_support(std::span<const Item> pattern, const SequenceDb& db);

/// Columnar overload of count_support.
[[nodiscard]] std::size_t count_support(std::span<const Item> pattern,
                                        const SequenceColumns& db);

/// Canonical order: by length, then lexicographically by items. Makes
/// miner outputs directly comparable.
void sort_patterns(std::vector<Pattern>& patterns);

/// Keeps only *closed* patterns: those with no super-pattern of equal
/// support in `patterns`. Candidates are bucketed by length (and, within
/// a length, only equal-support candidates are swept), so the filter is
/// usable as a cross-check oracle against native closed miners even on
/// large pattern sets.
[[nodiscard]] std::vector<Pattern> closed_patterns(std::vector<Pattern> patterns);

/// Keeps only *maximal* patterns: those with no frequent super-pattern in
/// `patterns` at all. Bucketed by length like closed_patterns.
[[nodiscard]] std::vector<Pattern> maximal_patterns(std::vector<Pattern> patterns);

/// What one mine() call did, beyond the patterns it returned. Every
/// miner fills one of these (through the optional out-params below or
/// through the registry interface), so callers can tell a complete
/// result from a capped one instead of silently losing patterns.
struct MiningStats {
  std::size_t emitted = 0;   ///< patterns the miner itself returned
  std::size_t explored = 0;  ///< search nodes / candidates support-counted
  /// Search work cut before counting: BackScan subtrees (BIDE),
  /// equivalent-projection subtrees (CloSpan), apriori-rejected
  /// candidates (GSP), and non-closed patterns a closed miner skipped.
  std::size_t pruned = 0;
  /// Frequent patterns reconstructed by expand_closed_patterns from a
  /// closed set — 0 for full miners and for closed mines that were never
  /// expanded. Kept separate from `emitted` so the miner's true output
  /// size is visible even when the pipeline expands behind it.
  std::size_t expanded = 0;
  /// True when the max_patterns cap suppressed at least one emission —
  /// the returned set is incomplete.
  bool truncated = false;

  /// Accumulates another mine's stats (counts add, truncated ORs).
  void merge(const MiningStats& other) noexcept {
    emitted += other.emitted;
    explored += other.explored;
    pruned += other.pruned;
    expanded += other.expanded;
    truncated = truncated || other.truncated;
  }
};

/// Shared mining parameters.
struct MiningOptions {
  /// Relative minimum support in (0, 1]: fraction of day-sequences that
  /// must contain a pattern.
  double min_support = 0.5;
  /// Longest pattern to emit.
  std::size_t max_pattern_length = 12;
  /// Hard cap on emitted patterns (safety valve for tiny supports).
  std::size_t max_patterns = 200'000;
  /// Which registered miner the pipeline runs (see mining/registry.hpp):
  /// "prefixspan" (default), "gsp", "spade", "naive", "bide", "clospan".
  /// Carried inside MiningOptions so it flows through MobilityOptions ->
  /// PlatformConfig -> IngestPipelineConfig -> shard workers untouched.
  std::string algorithm = "prefixspan";
  /// Closed-set miners only: recover the full frequent set (items and
  /// supports) from the closed set after mining, so annotation, crowd
  /// placement, and /api bytes are identical to a full miner's. Off
  /// keeps the closed set itself — same information, much smaller
  /// tables, but time annotations (and thus crowd placements) may
  /// differ on patterns whose embeddings shift.
  bool expand_closed = true;
};

/// Recovers the full frequent set from a *closed* pattern set: every
/// subsequence of a closed pattern is frequent, and its support is the
/// maximum support over the closed patterns containing it. With an
/// uncapped closed set this reproduces the full miner's output exactly
/// (same items, same supports, canonical order). Stops admitting new
/// patterns at options.max_patterns (flagged via stats->truncated);
/// supports of admitted patterns stay exact.
[[nodiscard]] std::vector<Pattern> expand_closed_patterns(std::span<const Pattern> closed,
                                                          std::size_t db_size,
                                                          const MiningOptions& options,
                                                          MiningStats* stats = nullptr);

/// Exact support count of `items` answered from a *closed* pattern set
/// by subsumption: the maximum support over the closed patterns that
/// contain `items` as a subsequence. Closure guarantees every frequent
/// sequence has a closed super-pattern of equal support, so for any
/// frequent `items` this equals the full miner's count; infrequent
/// sequences return 0. Also correct over a full frequent set (a pattern
/// subsumes itself).
[[nodiscard]] std::size_t subsumed_support_count(std::span<const Item> items,
                                                 std::span<const Pattern> closed) noexcept;

}  // namespace crowdweb::mining

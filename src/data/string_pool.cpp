#include "data/string_pool.hpp"

namespace crowdweb::data {

StringPool::StringPool() : arena_(std::make_shared<std::deque<std::string>>()) {}

NameId StringPool::intern(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const NameId id = static_cast<NameId>(arena_->size());
  arena_->emplace_back(name);
  // Key the map by a view into the arena copy: deque never moves
  // elements, so the view stays valid for the pool's lifetime.
  index_.emplace(std::string_view(arena_->back()), id);
  return id;
}

NameId StringPool::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  return it == index_.end() ? kNoName : it->second;
}

std::size_t StringPool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return arena_->size();
}

std::shared_ptr<const StringPool::Snapshot> StringPool::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cached_ && cached_->names_.size() == arena_->size()) return cached_;
  auto snap = std::make_shared<Snapshot>();
  snap->arena_ = arena_;
  snap->names_.reserve(arena_->size());
  for (const std::string& name : *arena_) snap->names_.emplace_back(name);
  cached_ = snap;
  return cached_;
}

}  // namespace crowdweb::data

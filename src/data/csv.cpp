#include "data/csv.hpp"

#include "util/format.hpp"

namespace crowdweb::data {

Result<std::vector<CsvRow>> parse_csv(std::string_view text, CsvOptions options) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  std::size_t line = 1;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted)
          return parse_error(crowdweb::format("stray quote at line {}", line));
        in_quotes = true;
        field_was_quoted = true;
        break;
      case '\r':
        // Swallow CR of CRLF; a bare CR is treated as a row break too.
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        [[fallthrough]];
      case '\n':
        end_row();
        ++line;
        break;
      default:
        if (c == options.delimiter) {
          end_field();
        } else {
          field += c;
        }
    }
  }
  if (in_quotes) return parse_error(crowdweb::format("unterminated quote at line {}", line));
  // Flush a final row without trailing newline.
  if (!field.empty() || field_was_quoted || !row.empty()) end_row();
  return rows;
}

std::string csv_escape(std::string_view field, char delimiter) {
  const bool needs_quoting =
      field.find_first_of("\"\r\n") != std::string_view::npos ||
      field.find(delimiter) != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string write_csv(const std::vector<CsvRow>& rows, CsvOptions options) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += options.delimiter;
      out += csv_escape(row[i], options.delimiter);
    }
    out += '\n';
  }
  return out;
}

}  // namespace crowdweb::data

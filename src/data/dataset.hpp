// The check-in dataset container and the paper's preprocessing steps.
//
// Holds venues and check-ins, indexes records per user, and implements
// Section I.1 of the paper: corpus statistics (record counts, per-user
// mean/median, sparsity), month-window restriction (April-June is the
// richest period), and active-user selection ("users with less than
// 2 hours check-in records for more than 50 days within the 3-month
// period" — i.e. users whose records include, on more than `min_days`
// distinct days, check-ins less than two hours apart).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/checkin.hpp"
#include "util/status.hpp"

namespace crowdweb::data {

/// Corpus statistics reported in Section I.1 of the paper.
struct DatasetStats {
  std::size_t checkin_count = 0;
  std::size_t user_count = 0;
  std::size_t venue_count = 0;
  double mean_records_per_user = 0.0;
  double median_records_per_user = 0.0;
  std::int64_t first_timestamp = 0;
  std::int64_t last_timestamp = 0;
  std::size_t collection_days = 0;        ///< days spanned by the data
  double mean_records_per_user_day = 0.0; ///< mean/collection_days; <1 = sparse
};

/// Criteria for the paper's active-user filter.
struct ActiveUserCriteria {
  std::int64_t from = 0;  ///< inclusive epoch seconds
  std::int64_t to = 0;    ///< exclusive epoch seconds
  /// A user qualifies with *more than* this many qualifying days.
  int min_days = 50;
  /// A day qualifies when it contains two check-ins at most this many
  /// seconds apart (the paper's "less than 2 hours" richness rule).
  /// Zero disables the gap rule: any day with a record qualifies.
  std::int64_t max_gap_seconds = 2 * 3600;
};

/// An immutable, indexed check-in corpus.
///
/// Build with `DatasetBuilder`; all accessors require the built state.
class Dataset {
 public:
  Dataset() = default;

  [[nodiscard]] std::size_t checkin_count() const noexcept { return checkins_.size(); }
  [[nodiscard]] std::size_t user_count() const noexcept { return users_.size(); }
  [[nodiscard]] std::size_t venue_count() const noexcept { return venues_.size(); }
  [[nodiscard]] bool empty() const noexcept { return checkins_.empty(); }

  /// All check-ins, sorted by (user, timestamp).
  [[nodiscard]] std::span<const CheckIn> checkins() const noexcept { return checkins_; }

  /// Distinct user ids, ascending.
  [[nodiscard]] std::span<const UserId> users() const noexcept { return users_; }

  /// All venues, indexed by VenueId.
  [[nodiscard]] std::span<const Venue> venues() const noexcept { return venues_; }
  [[nodiscard]] const Venue* venue(VenueId id) const noexcept;

  /// This user's check-ins sorted by time (empty when unknown).
  [[nodiscard]] std::span<const CheckIn> checkins_for(UserId user) const noexcept;

  /// Geographic extent of all check-ins (empty box for an empty dataset).
  [[nodiscard]] const geo::BoundingBox& bounds() const noexcept { return bounds_; }

  /// Section I.1 corpus statistics.
  [[nodiscard]] DatasetStats stats() const;

  /// Number of check-ins per calendar month, as ("YYYY-MM", count) pairs
  /// in chronological order.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> monthly_counts() const;

  /// Distinct days on which `user` has at least one check-in in
  /// [from, to); to == 0 means unbounded.
  [[nodiscard]] std::size_t active_days(UserId user, std::int64_t from = 0,
                                        std::int64_t to = 0) const;

  /// True when `user` satisfies `criteria` (see ActiveUserCriteria).
  [[nodiscard]] bool is_active_user(UserId user, const ActiveUserCriteria& criteria) const;

  /// New dataset restricted to [from, to) epoch seconds.
  [[nodiscard]] Dataset filter_time_range(std::int64_t from, std::int64_t to) const;

  /// New dataset keeping only users satisfying `criteria` (all their
  /// records, not just those inside the window).
  [[nodiscard]] Dataset filter_active_users(const ActiveUserCriteria& criteria) const;

  /// New dataset keeping only the given users.
  [[nodiscard]] Dataset filter_users(std::span<const UserId> users) const;

 private:
  friend class DatasetBuilder;

  void rebuild_index();

  std::vector<Venue> venues_;        // indexed by VenueId
  std::vector<CheckIn> checkins_;    // sorted by (user, timestamp)
  std::vector<UserId> users_;        // distinct, ascending
  std::vector<std::size_t> offsets_; // users_[i] owns [offsets_[i], offsets_[i+1])
  geo::BoundingBox bounds_;
};

/// Accumulates venues and check-ins, validates them, and produces a
/// `Dataset`.
class DatasetBuilder {
 public:
  /// Registers a venue; its id must equal the number of venues added so
  /// far (dense ids).
  Status add_venue(Venue venue);

  /// Adds a check-in; the venue must exist, the position must be valid,
  /// and the category must match the venue's.
  Status add_checkin(CheckIn checkin);

  /// Number of records added so far.
  [[nodiscard]] std::size_t checkin_count() const noexcept { return checkins_.size(); }

  /// Sorts, indexes, and returns the dataset; the builder is left empty.
  [[nodiscard]] Dataset build();

 private:
  std::vector<Venue> venues_;
  std::vector<CheckIn> checkins_;
};

}  // namespace crowdweb::data

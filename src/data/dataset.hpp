// The check-in dataset container and the paper's preprocessing steps.
//
// Holds venues and check-ins, indexes records per user, and implements
// Section I.1 of the paper: corpus statistics (record counts, per-user
// mean/median, sparsity), month-window restriction (April-June is the
// richest period), and active-user selection ("users with less than
// 2 hours check-in records for more than 50 days within the 3-month
// period" — i.e. users whose records include, on more than `min_days`
// distinct days, check-ins less than two hours apart).
//
// Storage is sharded per user and columnar: each user's time-sorted
// records live in one immutable structure-of-arrays shard (parallel
// timestamp / lat / lon / venue-id columns) held by shared_ptr, and
// the venue table is one shared immutable vector of POD rows whose
// names are interned NameIds into a shared StringPool. The category
// column is not stored per record: add_checkin enforces that a
// check-in's category equals its venue's, so kernels derive it from
// the venue-id column and the venue table. Copying a Dataset copies
// only the shard pointers, and an incremental build (DatasetBuilder
// seeded `from` a base dataset) rebuilds only the shards the delta
// touched — every other shard is shared with the base, and the name
// pool is append-only so base ids never change. A dataset built
// incrementally is value-identical to one built from scratch over the
// same records.
//
// Hot paths walk the columns directly via `checkins_for` (UserColumns)
// or `UserShard`; the record-at-a-time views (CheckInView, UserColumns
// iteration) materialize `CheckIn` values on the fly for callers that
// want the classic struct.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/checkin.hpp"
#include "data/string_pool.hpp"
#include "util/status.hpp"

namespace crowdweb::data {

/// Corpus statistics reported in Section I.1 of the paper.
struct DatasetStats {
  std::size_t checkin_count = 0;
  std::size_t user_count = 0;
  std::size_t venue_count = 0;
  double mean_records_per_user = 0.0;
  double median_records_per_user = 0.0;
  std::int64_t first_timestamp = 0;
  std::int64_t last_timestamp = 0;
  std::size_t collection_days = 0;        ///< days spanned by the data
  double mean_records_per_user_day = 0.0; ///< mean/collection_days; <1 = sparse
};

/// Criteria for the paper's active-user filter.
struct ActiveUserCriteria {
  std::int64_t from = 0;  ///< inclusive epoch seconds
  std::int64_t to = 0;    ///< exclusive epoch seconds
  /// A user qualifies with *more than* this many qualifying days.
  int min_days = 50;
  /// A day qualifies when it contains two check-ins at most this many
  /// seconds apart (the paper's "less than 2 hours" richness rule).
  /// Zero disables the gap rule: any day with a record qualifies.
  std::int64_t max_gap_seconds = 2 * 3600;
};

/// An immutable, indexed check-in corpus.
///
/// Build with `DatasetBuilder`; all accessors require the built state.
class Dataset {
 public:
  /// One user's time-sorted records as structure-of-arrays columns,
  /// immutable and shared between the dataset versions whose delta
  /// never touched this user. All four columns have the same length;
  /// index i across them is one check-in. The per-record category is
  /// derived, not stored: it always equals the venue's category.
  struct UserShard {
    UserId user = 0;
    std::vector<std::int64_t> timestamps;  ///< sorted ascending (stable)
    std::vector<double> lats;
    std::vector<double> lons;
    std::vector<VenueId> venues;

    [[nodiscard]] std::size_t size() const noexcept { return timestamps.size(); }
  };
  using ShardPtr = std::shared_ptr<const UserShard>;
  using VenueTablePtr = std::shared_ptr<const std::vector<Venue>>;

  /// One user's records: raw column access for kernels, plus a
  /// record-at-a-time view that materializes `CheckIn` values (the
  /// category is resolved through the venue table). Valid as long as
  /// the dataset (or a copy of it) lives.
  class UserColumns {
   public:
    UserColumns() = default;

    [[nodiscard]] UserId user() const noexcept { return shard_ ? shard_->user : 0; }
    [[nodiscard]] std::size_t size() const noexcept { return shard_ ? shard_->size() : 0; }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

    /// Raw columns (empty spans for an unknown user).
    [[nodiscard]] std::span<const std::int64_t> timestamps() const noexcept {
      return shard_ ? std::span<const std::int64_t>(shard_->timestamps)
                    : std::span<const std::int64_t>{};
    }
    [[nodiscard]] std::span<const double> lats() const noexcept {
      return shard_ ? std::span<const double>(shard_->lats) : std::span<const double>{};
    }
    [[nodiscard]] std::span<const double> lons() const noexcept {
      return shard_ ? std::span<const double>(shard_->lons) : std::span<const double>{};
    }
    [[nodiscard]] std::span<const VenueId> venues() const noexcept {
      return shard_ ? std::span<const VenueId>(shard_->venues) : std::span<const VenueId>{};
    }

    /// Per-record field accessors (no bounds check; i < size()).
    [[nodiscard]] std::int64_t timestamp(std::size_t i) const noexcept {
      return shard_->timestamps[i];
    }
    [[nodiscard]] geo::LatLon position(std::size_t i) const noexcept {
      return {shard_->lats[i], shard_->lons[i]};
    }
    [[nodiscard]] VenueId venue(std::size_t i) const noexcept { return shard_->venues[i]; }
    [[nodiscard]] CategoryId category(std::size_t i) const noexcept {
      return venue_table_ ? (*venue_table_)[shard_->venues[i]].category : kNoCategory;
    }

    /// Materialized record i (by value — the struct does not exist in
    /// storage).
    [[nodiscard]] CheckIn operator[](std::size_t i) const noexcept {
      CheckIn c;
      c.user = shard_->user;
      c.venue = shard_->venues[i];
      c.category = category(i);
      c.position = {shard_->lats[i], shard_->lons[i]};
      c.timestamp = shard_->timestamps[i];
      return c;
    }
    [[nodiscard]] CheckIn front() const noexcept { return (*this)[0]; }
    [[nodiscard]] CheckIn back() const noexcept { return (*this)[size() - 1]; }

    /// Random-access proxy iterator yielding materialized CheckIns.
    class Iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = CheckIn;
      using difference_type = std::ptrdiff_t;
      using pointer = void;
      using reference = CheckIn;

      Iterator() = default;

      [[nodiscard]] CheckIn operator*() const noexcept { return (*view_)[i_]; }
      [[nodiscard]] CheckIn operator[](difference_type n) const noexcept {
        return (*view_)[i_ + static_cast<std::size_t>(n)];
      }

      Iterator& operator++() noexcept { ++i_; return *this; }
      Iterator operator++(int) noexcept { Iterator out = *this; ++i_; return out; }
      Iterator& operator--() noexcept { --i_; return *this; }
      Iterator operator--(int) noexcept { Iterator out = *this; --i_; return out; }
      Iterator& operator+=(difference_type n) noexcept {
        i_ += static_cast<std::size_t>(n);
        return *this;
      }
      Iterator& operator-=(difference_type n) noexcept { return *this += -n; }
      [[nodiscard]] friend Iterator operator+(Iterator it, difference_type n) noexcept {
        return it += n;
      }
      [[nodiscard]] friend Iterator operator+(difference_type n, Iterator it) noexcept {
        return it += n;
      }
      [[nodiscard]] friend Iterator operator-(Iterator it, difference_type n) noexcept {
        return it += -n;
      }
      [[nodiscard]] friend difference_type operator-(const Iterator& a,
                                                     const Iterator& b) noexcept {
        return static_cast<difference_type>(a.i_) - static_cast<difference_type>(b.i_);
      }
      [[nodiscard]] friend bool operator==(const Iterator& a, const Iterator& b) noexcept {
        return a.i_ == b.i_;
      }
      [[nodiscard]] friend auto operator<=>(const Iterator& a, const Iterator& b) noexcept {
        return a.i_ <=> b.i_;
      }

     private:
      friend class UserColumns;
      Iterator(const UserColumns* view, std::size_t i) noexcept : view_(view), i_(i) {}
      const UserColumns* view_ = nullptr;
      std::size_t i_ = 0;
    };

    [[nodiscard]] Iterator begin() const noexcept { return {this, 0}; }
    [[nodiscard]] Iterator end() const noexcept { return {this, size()}; }

   private:
    friend class Dataset;
    UserColumns(const UserShard* shard, const std::vector<Venue>* venue_table) noexcept
        : shard_(shard), venue_table_(venue_table) {}
    const UserShard* shard_ = nullptr;             ///< null == unknown user
    const std::vector<Venue>* venue_table_ = nullptr;
  };

  /// Random-access iterator over every check-in in (user, timestamp)
  /// order, walking the per-user shard columns and materializing each
  /// record by value.
  class CheckInIterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = CheckIn;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = CheckIn;

    CheckInIterator() = default;

    [[nodiscard]] CheckIn operator*() const noexcept {
      return dataset_->materialize(*dataset_->shards_[shard_], local_);
    }
    [[nodiscard]] CheckIn operator[](difference_type n) const noexcept {
      return *(*this + n);
    }

    CheckInIterator& operator++() noexcept {
      ++index_;
      if (++local_ >= dataset_->shards_[shard_]->size()) {
        ++shard_;
        local_ = 0;
      }
      return *this;
    }
    CheckInIterator operator++(int) noexcept {
      CheckInIterator out = *this;
      ++*this;
      return out;
    }
    CheckInIterator& operator--() noexcept {
      --index_;
      if (local_ == 0) {
        --shard_;
        local_ = dataset_->shards_[shard_]->size() - 1;
      } else {
        --local_;
      }
      return *this;
    }
    CheckInIterator operator--(int) noexcept {
      CheckInIterator out = *this;
      --*this;
      return out;
    }
    CheckInIterator& operator+=(difference_type n) noexcept {
      seek(index_ + static_cast<std::size_t>(n));
      return *this;
    }
    CheckInIterator& operator-=(difference_type n) noexcept { return *this += -n; }
    [[nodiscard]] friend CheckInIterator operator+(CheckInIterator it,
                                                   difference_type n) noexcept {
      return it += n;
    }
    [[nodiscard]] friend CheckInIterator operator+(difference_type n,
                                                   CheckInIterator it) noexcept {
      return it += n;
    }
    [[nodiscard]] friend CheckInIterator operator-(CheckInIterator it,
                                                   difference_type n) noexcept {
      return it += -n;
    }
    [[nodiscard]] friend difference_type operator-(const CheckInIterator& a,
                                                   const CheckInIterator& b) noexcept {
      return static_cast<difference_type>(a.index_) - static_cast<difference_type>(b.index_);
    }
    [[nodiscard]] friend bool operator==(const CheckInIterator& a,
                                         const CheckInIterator& b) noexcept {
      return a.index_ == b.index_;
    }
    [[nodiscard]] friend auto operator<=>(const CheckInIterator& a,
                                          const CheckInIterator& b) noexcept {
      return a.index_ <=> b.index_;
    }

   private:
    friend class Dataset;
    CheckInIterator(const Dataset* dataset, std::size_t index) noexcept
        : dataset_(dataset) {
      seek(index);
    }
    void seek(std::size_t index) noexcept;

    const Dataset* dataset_ = nullptr;
    std::size_t index_ = 0;  ///< global rank in (user, timestamp) order
    std::size_t shard_ = 0;  ///< shard containing index_ (== shard count at end)
    std::size_t local_ = 0;  ///< offset inside that shard
  };

  /// The full corpus in (user, timestamp) order, as an indexable range.
  class CheckInView {
   public:
    [[nodiscard]] CheckInIterator begin() const noexcept {
      return {dataset_, 0};
    }
    [[nodiscard]] CheckInIterator end() const noexcept {
      return {dataset_, dataset_->checkin_count()};
    }
    [[nodiscard]] std::size_t size() const noexcept { return dataset_->checkin_count(); }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    [[nodiscard]] CheckIn operator[](std::size_t index) const noexcept {
      return begin()[static_cast<std::ptrdiff_t>(index)];
    }
    [[nodiscard]] CheckIn front() const noexcept { return (*this)[0]; }
    [[nodiscard]] CheckIn back() const noexcept { return (*this)[size() - 1]; }

   private:
    friend class Dataset;
    explicit CheckInView(const Dataset* dataset) noexcept : dataset_(dataset) {}
    const Dataset* dataset_;
  };

  Dataset() = default;

  [[nodiscard]] std::size_t checkin_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] std::size_t user_count() const noexcept { return users_.size(); }
  [[nodiscard]] std::size_t venue_count() const noexcept {
    return venues_ ? venues_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return checkin_count() == 0; }

  /// All check-ins, in (user, timestamp) order.
  [[nodiscard]] CheckInView checkins() const noexcept { return CheckInView(this); }

  /// Distinct user ids, ascending.
  [[nodiscard]] std::span<const UserId> users() const noexcept { return users_; }

  /// All venues, indexed by VenueId.
  [[nodiscard]] std::span<const Venue> venues() const noexcept {
    return venues_ ? std::span<const Venue>(*venues_) : std::span<const Venue>{};
  }
  [[nodiscard]] const Venue* venue(VenueId id) const noexcept;

  /// This user's records as columns (empty when unknown).
  [[nodiscard]] UserColumns checkins_for(UserId user) const noexcept;

  /// The user's shard object, or null when unknown. Shards are shared
  /// between dataset versions whose delta never touched the user, so
  /// pointer equality across versions proves the records were reused,
  /// not copied.
  [[nodiscard]] ShardPtr shard_for(UserId user) const noexcept;

  /// The shared venue table (pointer equality across versions proves
  /// copy-on-write reuse). Null for an empty dataset.
  [[nodiscard]] VenueTablePtr venue_table() const noexcept { return venues_; }

  /// The append-only pool venue names are interned into (shared across
  /// dataset versions built from the same lineage). Null only for a
  /// default-constructed dataset.
  [[nodiscard]] const StringPoolPtr& name_pool() const noexcept { return name_pool_; }

  /// Frozen name snapshot taken when this dataset was built — the
  /// epoch's string table for rendering. Null only for a
  /// default-constructed dataset.
  [[nodiscard]] const NamesPtr& names() const noexcept { return names_; }

  /// The interned string behind `id` ("" when unknown).
  [[nodiscard]] std::string_view name(NameId id) const noexcept {
    return names_ ? (*names_)[id] : std::string_view{};
  }

  /// Display name of a venue ("" when the venue is unknown).
  [[nodiscard]] std::string_view venue_name(VenueId id) const noexcept {
    const Venue* v = venue(id);
    return v ? name(v->name) : std::string_view{};
  }

  /// Venue `id` with its name resolved back to a string — the boundary
  /// form, suitable for feeding a fresh DatasetBuilder. Default
  /// VenueSpec when the venue is unknown.
  [[nodiscard]] VenueSpec venue_spec(VenueId id) const;

  /// Geographic extent of all check-ins (empty box for an empty dataset).
  [[nodiscard]] const geo::BoundingBox& bounds() const noexcept { return bounds_; }

  /// Section I.1 corpus statistics.
  [[nodiscard]] DatasetStats stats() const;

  /// Number of check-ins per calendar month, as ("YYYY-MM", count) pairs
  /// in chronological order.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> monthly_counts() const;

  /// Distinct days on which `user` has at least one check-in in
  /// [from, to); to == 0 means unbounded.
  [[nodiscard]] std::size_t active_days(UserId user, std::int64_t from = 0,
                                        std::int64_t to = 0) const;

  /// True when `user` satisfies `criteria` (see ActiveUserCriteria).
  [[nodiscard]] bool is_active_user(UserId user, const ActiveUserCriteria& criteria) const;

  /// New dataset restricted to [from, to) epoch seconds.
  [[nodiscard]] Dataset filter_time_range(std::int64_t from, std::int64_t to) const;

  /// New dataset keeping only users satisfying `criteria` (all their
  /// records, not just those inside the window).
  [[nodiscard]] Dataset filter_active_users(const ActiveUserCriteria& criteria) const;

  /// New dataset keeping only the given users.
  [[nodiscard]] Dataset filter_users(std::span<const UserId> users) const;

 private:
  friend class DatasetBuilder;

  /// Adopts user-sorted shards + venue table + name pool, rebuilding
  /// users_/offsets_ and — when `bounds` is empty — deriving the
  /// bounds by scanning the coordinate columns.
  void adopt(VenueTablePtr venues, StringPoolPtr pool, NamesPtr names,
             std::vector<ShardPtr> shards, const geo::BoundingBox& bounds);

  /// Materialized record `local` of `shard` (category resolved through
  /// the venue table).
  [[nodiscard]] CheckIn materialize(const UserShard& shard, std::size_t local) const noexcept {
    CheckIn c;
    c.user = shard.user;
    c.venue = shard.venues[local];
    c.category = venues_ ? (*venues_)[c.venue].category : kNoCategory;
    c.position = {shard.lats[local], shard.lons[local]};
    c.timestamp = shard.timestamps[local];
    return c;
  }

  /// Subset sharing this dataset's venue table and name pool: `keep`
  /// holds the records in (user, timestamp) order (any stable
  /// subsequence of checkins() qualifies).
  [[nodiscard]] Dataset subset(std::vector<CheckIn> keep) const;

  VenueTablePtr venues_;             // null == empty table
  StringPoolPtr name_pool_;          // shared, append-only (null == default-constructed)
  NamesPtr names_;                   // frozen snapshot at build time
  std::vector<ShardPtr> shards_;     // sorted by user id
  std::vector<UserId> users_;        // distinct, ascending (parallel to shards_)
  std::vector<std::size_t> offsets_; // users_[i] owns global ranks [offsets_[i], offsets_[i+1])
  geo::BoundingBox bounds_;
};

/// Accumulates venues and check-ins, validates them, and produces a
/// `Dataset`.
///
/// The default-constructed builder builds from scratch; the `base`
/// constructor is the incremental form: it starts from an existing
/// dataset and `build()` merges only the added records into the shards
/// of the users they touch, sharing every untouched shard (and, when no
/// venue was added, the whole venue table) with the base. Both forms
/// run the same merge code — a from-scratch build is an incremental
/// build over an empty base — and order records identically: by user,
/// then timestamp, ties resolved by insertion order (base records
/// before added ones).
///
/// Venue names are interned here, at the build boundary: add_venue on
/// a VenueSpec assigns the name a dense NameId from the builder's pool
/// (the base's pool for incremental builds, so ids are stable across
/// epochs). The pre-interned Venue overload serves recovery paths that
/// replay rows already carrying NameIds from the same pool.
class DatasetBuilder {
 public:
  DatasetBuilder() = default;

  /// Incremental form: `build()` applies the added delta to `base`.
  explicit DatasetBuilder(const Dataset& base)
      : base_(base), pool_(base.name_pool()) {}

  /// From-scratch form interning into an existing pool — for recovery
  /// paths that rebuild a corpus whose rows already reference `pool`.
  explicit DatasetBuilder(StringPoolPtr pool) : pool_(std::move(pool)) {}

  /// Registers a venue described at the boundary (string name); the
  /// name is interned. The id must equal the number of venues known so
  /// far, base table included (dense ids).
  Status add_venue(const VenueSpec& spec);

  /// Registers a venue whose name is already interned in this
  /// builder's pool (recovery/replay paths).
  Status add_venue(Venue venue);

  /// Adds a check-in; the venue must exist, the position must be valid,
  /// and the category must match the venue's.
  Status add_checkin(CheckIn checkin);

  /// Number of records the built dataset will hold (base + added).
  [[nodiscard]] std::size_t checkin_count() const noexcept {
    return base_.checkin_count() + pending_count_;
  }

  /// The pool venue names are interned into (created lazily; never
  /// null after the first add_venue or build).
  [[nodiscard]] const StringPoolPtr& name_pool() {
    ensure_pool();
    return pool_;
  }

  /// How the last `build()` assembled its shards, for delta telemetry.
  struct BuildStats {
    std::size_t shards_reused = 0;    ///< base shards shared untouched
    std::size_t shards_rebuilt = 0;   ///< shards merged or newly created
    bool venue_table_shared = false;  ///< base venue table adopted as-is
  };

  /// Merges, indexes, and returns the dataset; the builder is left
  /// empty (base cleared, nothing pending).
  [[nodiscard]] Dataset build();

  /// Statistics of the most recent build().
  [[nodiscard]] const BuildStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] const Venue* venue_at(VenueId id) const noexcept;
  Status validate_venue(const Venue& venue, std::string_view display_name);
  void ensure_pool();

  Dataset base_;
  StringPoolPtr pool_;  ///< created lazily when null
  std::vector<Venue> new_venues_;
  /// Added records grouped per user, in arrival order.
  std::unordered_map<UserId, std::vector<CheckIn>> pending_;
  std::size_t pending_count_ = 0;
  geo::BoundingBox pending_bounds_;
  BuildStats stats_;
};

}  // namespace crowdweb::data

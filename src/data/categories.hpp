// Venue category taxonomy.
//
// CrowdWeb's key idea is *location abstraction*: a venue is mined not by
// its identity ("Thai Pothong") but by its label ("Eatery"), so a user who
// eats Thai food at a different restaurant every day still exhibits the
// pattern Eatery@12:00. This module models a two-level taxonomy in the
// style of the Foursquare category tree used by the paper's dataset: nine
// root categories and a set of leaf venue types under each.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace crowdweb::data {

using CategoryId = std::uint16_t;

/// Sentinel for "no parent" (root categories).
inline constexpr CategoryId kNoCategory = 0xFFFF;

struct Category {
  CategoryId id = kNoCategory;
  std::string name;
  CategoryId parent = kNoCategory;  ///< kNoCategory for roots

  [[nodiscard]] bool is_root() const noexcept { return parent == kNoCategory; }
};

/// An immutable two-level category tree with by-id and by-name lookup.
class Taxonomy {
 public:
  /// The default CrowdWeb taxonomy mirroring the Foursquare NYC category
  /// tree: roots {Arts & Entertainment, College & University, Eatery,
  /// Nightlife, Outdoors & Recreation, Professional, Residence, Shops,
  /// Travel & Transport} plus leaf venue types under each.
  static const Taxonomy& foursquare();

  /// Builds a custom taxonomy; `parent` of each entry must be either
  /// kNoCategory or the index of an earlier root entry.
  static Result<Taxonomy> create(std::vector<Category> categories);

  [[nodiscard]] std::size_t size() const noexcept { return categories_.size(); }
  [[nodiscard]] const Category& category(CategoryId id) const;
  [[nodiscard]] std::optional<CategoryId> find(std::string_view name) const noexcept;

  /// Root ancestor of `id` (identity for roots).
  [[nodiscard]] CategoryId root_of(CategoryId id) const;

  /// All root categories, in insertion order.
  [[nodiscard]] const std::vector<CategoryId>& roots() const noexcept { return roots_; }

  /// Leaf categories under a root, in insertion order.
  [[nodiscard]] std::span<const CategoryId> children(CategoryId root) const;

  [[nodiscard]] const std::string& name(CategoryId id) const { return category(id).name; }

 private:
  Taxonomy() = default;

  std::vector<Category> categories_;
  std::vector<CategoryId> roots_;
  std::vector<std::vector<CategoryId>> children_;  // indexed by root position
  std::vector<std::size_t> root_position_;         // category id -> index into roots_
};

}  // namespace crowdweb::data

// Dataset (de)serialization in the CrowdWeb interchange format.
//
// Two CSV files mirror the Foursquare dump layout the paper ingests:
//
//   venues:   venue_id,name,category,lat,lon
//   checkins: user_id,venue_id,category,lat,lon,timestamp
//
// `category` is the category *name* (resolved against a taxonomy) and
// `timestamp` is "YYYY-MM-DD HH:MM:SS". Both files carry a header row.
#pragma once

#include <string>
#include <string_view>

#include "data/categories.hpp"
#include "data/dataset.hpp"

namespace crowdweb::data {

/// Serializes the venue table.
[[nodiscard]] std::string venues_to_csv(const Dataset& dataset, const Taxonomy& taxonomy);

/// Serializes the check-in table.
[[nodiscard]] std::string checkins_to_csv(const Dataset& dataset, const Taxonomy& taxonomy);

/// Parses both tables back into a dataset. Fails on unknown categories,
/// malformed rows, or check-ins referencing missing venues.
[[nodiscard]] Result<Dataset> dataset_from_csv(std::string_view venues_csv,
                                               std::string_view checkins_csv,
                                               const Taxonomy& taxonomy);

/// Writes `content` to `path` (overwrites).
[[nodiscard]] Status write_file(const std::string& path, std::string_view content);

/// Reads a whole file.
[[nodiscard]] Result<std::string> read_file(const std::string& path);

}  // namespace crowdweb::data

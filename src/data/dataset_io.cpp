#include "data/dataset_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/csv.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"

namespace crowdweb::data {

namespace {

std::string double_to_string(double value) {
  return crowdweb::format("{:.7f}", value);
}

}  // namespace

std::string venues_to_csv(const Dataset& dataset, const Taxonomy& taxonomy) {
  std::vector<CsvRow> rows;
  rows.push_back({"venue_id", "name", "category", "lat", "lon"});
  for (const Venue& v : dataset.venues()) {
    rows.push_back({std::to_string(v.id), std::string(dataset.name(v.name)),
                    taxonomy.name(v.category), double_to_string(v.position.lat),
                    double_to_string(v.position.lon)});
  }
  return write_csv(rows);
}

std::string checkins_to_csv(const Dataset& dataset, const Taxonomy& taxonomy) {
  std::vector<CsvRow> rows;
  rows.push_back({"user_id", "venue_id", "category", "lat", "lon", "timestamp"});
  for (const CheckIn& c : dataset.checkins()) {
    rows.push_back({std::to_string(c.user), std::to_string(c.venue),
                    taxonomy.name(c.category), double_to_string(c.position.lat),
                    double_to_string(c.position.lon), format_timestamp(c.timestamp)});
  }
  return write_csv(rows);
}

namespace {

Status check_header(const CsvRow& row, std::initializer_list<std::string_view> expected,
                    std::string_view what) {
  if (row.size() != expected.size())
    return parse_error(crowdweb::format("{} header has {} fields, expected {}", what,
                                        row.size(), expected.size()));
  std::size_t i = 0;
  for (const std::string_view name : expected) {
    if (row[i] != name)
      return parse_error(
          crowdweb::format("{} header field {} is '{}', expected '{}'", what, i, row[i], name));
    ++i;
  }
  return Status::ok();
}

}  // namespace

Result<Dataset> dataset_from_csv(std::string_view venues_csv, std::string_view checkins_csv,
                                 const Taxonomy& taxonomy) {
  auto venue_rows = parse_csv(venues_csv);
  if (!venue_rows) return venue_rows.status();
  auto checkin_rows = parse_csv(checkins_csv);
  if (!checkin_rows) return checkin_rows.status();
  if (venue_rows->empty()) return parse_error("venues file is empty");
  if (checkin_rows->empty()) return parse_error("checkins file is empty");

  Status status =
      check_header((*venue_rows)[0], {"venue_id", "name", "category", "lat", "lon"}, "venues");
  if (!status.is_ok()) return status;
  status = check_header((*checkin_rows)[0],
                        {"user_id", "venue_id", "category", "lat", "lon", "timestamp"},
                        "checkins");
  if (!status.is_ok()) return status;

  DatasetBuilder builder;
  for (std::size_t i = 1; i < venue_rows->size(); ++i) {
    const CsvRow& row = (*venue_rows)[i];
    if (row.size() != 5)
      return parse_error(crowdweb::format("venues row {} has {} fields", i + 1, row.size()));
    const auto id = parse_int(row[0]);
    const auto lat = parse_double(row[3]);
    const auto lon = parse_double(row[4]);
    const auto category = taxonomy.find(row[2]);
    if (!id || !lat || !lon)
      return parse_error(crowdweb::format("venues row {} is malformed", i + 1));
    if (!category)
      return parse_error(crowdweb::format("venues row {}: unknown category '{}'", i + 1, row[2]));
    VenueSpec venue;
    venue.id = static_cast<VenueId>(*id);
    venue.name = row[1];
    venue.category = *category;
    venue.position = {*lat, *lon};
    status = builder.add_venue(venue);
    if (!status.is_ok()) return status;
  }

  for (std::size_t i = 1; i < checkin_rows->size(); ++i) {
    const CsvRow& row = (*checkin_rows)[i];
    if (row.size() != 6)
      return parse_error(crowdweb::format("checkins row {} has {} fields", i + 1, row.size()));
    const auto user = parse_int(row[0]);
    const auto venue = parse_int(row[1]);
    const auto category = taxonomy.find(row[2]);
    const auto lat = parse_double(row[3]);
    const auto lon = parse_double(row[4]);
    const auto timestamp = parse_timestamp(row[5]);
    if (!user || !venue || !lat || !lon || !timestamp)
      return parse_error(crowdweb::format("checkins row {} is malformed", i + 1));
    if (!category)
      return parse_error(
          crowdweb::format("checkins row {}: unknown category '{}'", i + 1, row[2]));
    CheckIn checkin;
    checkin.user = static_cast<UserId>(*user);
    checkin.venue = static_cast<VenueId>(*venue);
    checkin.category = *category;
    checkin.position = {*lat, *lon};
    checkin.timestamp = *timestamp;
    status = builder.add_checkin(checkin);
    if (!status.is_ok())
      return parse_error(
          crowdweb::format("checkins row {}: {}", i + 1, status.to_string()));
  }
  return builder.build();
}

Status write_file(const std::string& path, std::string_view content) {
  // Atomic replace: write a temp file in the same directory, fsync it,
  // rename over the target, then fsync the directory so the rename
  // itself survives a crash. Readers never observe a half-written file.
  const std::filesystem::path target(path);
  const std::filesystem::path dir =
      target.has_parent_path() ? target.parent_path() : std::filesystem::path(".");
  const std::string tmp_path =
      (dir / (target.filename().string() + ".tmp." +
              crowdweb::format("{}", static_cast<unsigned long long>(::getpid()))))
          .string();

  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return io_error(crowdweb::format("cannot open '{}' for writing: {}", tmp_path,
                                     std::strerror(errno)));
  }
  std::string_view rest = content;
  while (!rest.empty()) {
    const ssize_t n = ::write(fd, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          io_error(crowdweb::format("write to '{}': {}", tmp_path, std::strerror(errno)));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  if (::fsync(fd) != 0) {
    const Status status =
        io_error(crowdweb::format("fsync '{}': {}", tmp_path, std::strerror(errno)));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status status = io_error(
        crowdweb::format("rename '{}' -> '{}': {}", tmp_path, path, std::strerror(errno)));
    ::unlink(tmp_path.c_str());
    return status;
  }
  const int dir_fd = ::open(dir.string().c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: some filesystems refuse directory fsync
    ::close(dir_fd);
  }
  return Status::ok();
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_error(crowdweb::format("cannot open '{}'", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return io_error(crowdweb::format("read error on '{}'", path));
  return std::move(buffer).str();
}

}  // namespace crowdweb::data

// RFC 4180-style CSV reading and writing.
//
// Used to persist datasets and benchmark series. Fields containing the
// delimiter, quotes, or newlines are quoted; quotes are doubled. The
// reader handles quoted fields spanning lines and reports row/column on
// failure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace crowdweb::data {

using CsvRow = std::vector<std::string>;

struct CsvOptions {
  char delimiter = ',';
};

/// Parses a full CSV document into rows. A trailing newline does not
/// produce an empty row; completely empty input yields no rows.
[[nodiscard]] Result<std::vector<CsvRow>> parse_csv(std::string_view text,
                                                    CsvOptions options = {});

/// Serializes rows; every output row ends with '\n'.
[[nodiscard]] std::string write_csv(const std::vector<CsvRow>& rows, CsvOptions options = {});

/// Quotes a single field if needed.
[[nodiscard]] std::string csv_escape(std::string_view field, char delimiter = ',');

}  // namespace crowdweb::data

// Interning pool mapping identifier strings to dense u32 NameIds.
//
// Every identifier string (venue names today; any future string key)
// is interned exactly once at the ingest boundary and replaced by a
// dense `NameId` everywhere downstream — shards, the mining sequence
// DB, checkpoints, and the k-way shard merge all key on the integer.
// Strings reappear only at the JSON/CSV render edge, resolved through
// a frozen `Snapshot` published alongside each epoch.
//
// The pool is append-only and thread-safe: `intern` takes a mutex,
// dedupes against previously interned strings, and hands back the
// existing id or the next dense one. Ids are assigned in first-intern
// order, which makes the mapping deterministic for a fixed ingest
// order — re-interning a checkpoint's id-ordered name table into a
// fresh pool reproduces every id exactly.
//
// `snapshot()` returns an immutable, lock-free view for readers. The
// backing storage is a std::deque whose strings never move, so a
// snapshot stays valid forever: it shares ownership of the arena and
// carries its own index of string_views. Snapshots are cached and only
// rebuilt when the pool has grown, so an epoch publish with no new
// names costs one mutex acquisition.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace crowdweb::data {

/// Dense index of an interned string. Assigned in first-intern order.
using NameId = std::uint32_t;

/// Sentinel for "no interned string" (never a valid pool index).
inline constexpr NameId kNoName = 0xFFFF'FFFFu;

/// Append-only, thread-safe string interner with frozen snapshot views.
class StringPool {
 public:
  /// Immutable view of the pool at some size. Lock-free to read and
  /// valid for its whole lifetime even while the pool keeps growing
  /// (it shares ownership of the string arena).
  class Snapshot {
   public:
    /// Number of interned strings visible in this snapshot.
    std::size_t size() const { return names_.size(); }
    bool empty() const { return names_.empty(); }

    /// The string behind `id`, or "" for out-of-range ids (including
    /// kNoName). The view is valid as long as the snapshot lives.
    std::string_view operator[](NameId id) const {
      return id < names_.size() ? names_[id] : std::string_view{};
    }

    /// All strings in id order; index into the span IS the NameId.
    std::span<const std::string_view> names() const { return names_; }

   private:
    friend class StringPool;
    std::shared_ptr<const void> arena_;  ///< keeps the strings alive
    std::vector<std::string_view> names_;
  };

  StringPool();

  /// Interns `name`, returning its dense id. Idempotent: the same
  /// string always maps to the same id. Safe to call concurrently.
  NameId intern(std::string_view name);

  /// The id `name` was interned under, or kNoName if it never was.
  NameId find(std::string_view name) const;

  /// Number of distinct strings interned so far.
  std::size_t size() const;

  /// Frozen view of the current contents. Cached: consecutive calls
  /// without intervening growth return the same shared snapshot.
  std::shared_ptr<const Snapshot> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<std::deque<std::string>> arena_;  ///< id -> string
  /// Keys are views into arena_ strings (stable addresses).
  std::unordered_map<std::string_view, NameId> index_;
  mutable std::shared_ptr<const Snapshot> cached_;  ///< guarded by mutex_
};

/// Shared handles used throughout the pipeline.
using StringPoolPtr = std::shared_ptr<StringPool>;
using NamesPtr = std::shared_ptr<const StringPool::Snapshot>;

}  // namespace crowdweb::data

#include "data/categories.hpp"

#include <cassert>
#include <unordered_map>

#include "util/format.hpp"

namespace crowdweb::data {

namespace {

struct RootSpec {
  std::string_view name;
  std::initializer_list<std::string_view> leaves;
};

// Mirrors the top of the Foursquare category tree as the paper uses it
// ('Eatery', 'Shops', ... appear verbatim in the paper's examples).
const RootSpec kFoursquareRoots[] = {
    {"Arts & Entertainment",
     {"Movie Theater", "Museum", "Music Venue", "Stadium", "Art Gallery", "Theater",
      "Casino", "Comedy Club"}},
    {"College & University",
     {"University", "College Classroom", "Library", "Student Center", "College Gym",
      "Fraternity House"}},
    {"Eatery",
     {"Thai Restaurant", "Pizza Place", "Coffee Shop", "Burger Joint", "Chinese Restaurant",
      "Deli", "Bakery", "Mexican Restaurant", "Sushi Restaurant", "Diner",
      "Italian Restaurant", "Fast Food Restaurant", "Sandwich Place", "Ice Cream Shop"}},
    {"Nightlife Spot",
     {"Bar", "Nightclub", "Pub", "Lounge", "Speakeasy", "Karaoke Bar"}},
    {"Outdoors & Recreation",
     {"Park", "Playground", "Gym", "Trail", "Beach", "Plaza", "Sports Field",
      "Scenic Lookout"}},
    {"Professional & Other Places",
     {"Office", "Coworking Space", "Medical Center", "Conference Room", "Factory",
      "Government Building", "School"}},
    {"Residence",
     {"Home (private)", "Apartment Building", "Housing Development", "Residential Building"}},
    {"Shop & Service",
     {"Grocery Store", "Clothing Store", "Electronics Store", "Bookstore", "Pharmacy",
      "Salon / Barbershop", "Bank", "Convenience Store", "Department Store",
      "Hardware Store", "Laundry Service"}},
    {"Travel & Transport",
     {"Subway Station", "Bus Station", "Train Station", "Airport", "Hotel", "Ferry",
      "Taxi Stand", "Bike Share Station"}},
};

}  // namespace

Result<Taxonomy> Taxonomy::create(std::vector<Category> categories) {
  if (categories.size() >= kNoCategory)
    return invalid_argument("too many categories");
  Taxonomy tax;
  tax.categories_ = std::move(categories);
  tax.root_position_.assign(tax.categories_.size(), 0);
  for (std::size_t i = 0; i < tax.categories_.size(); ++i) {
    Category& cat = tax.categories_[i];
    if (cat.id != static_cast<CategoryId>(i))
      return invalid_argument(
          crowdweb::format("category id {} at position {}", cat.id, i));
    if (cat.name.empty()) return invalid_argument("empty category name");
    if (cat.is_root()) {
      tax.root_position_[i] = tax.roots_.size();
      tax.roots_.push_back(cat.id);
      tax.children_.emplace_back();
    } else {
      if (cat.parent >= i)
        return invalid_argument(
            crowdweb::format("category '{}' references a later parent", cat.name));
      const Category& parent = tax.categories_[cat.parent];
      if (!parent.is_root())
        return invalid_argument(
            crowdweb::format("category '{}' nests deeper than two levels", cat.name));
      tax.children_[tax.root_position_[cat.parent]].push_back(cat.id);
    }
  }
  return tax;
}

const Taxonomy& Taxonomy::foursquare() {
  static const Taxonomy instance = [] {
    std::vector<Category> cats;
    for (const RootSpec& root : kFoursquareRoots) {
      const auto root_id = static_cast<CategoryId>(cats.size());
      cats.push_back({root_id, std::string(root.name), kNoCategory});
      for (const std::string_view leaf : root.leaves)
        cats.push_back({static_cast<CategoryId>(cats.size()), std::string(leaf), root_id});
    }
    auto result = create(std::move(cats));
    assert(result.is_ok());
    return std::move(result).value();
  }();
  return instance;
}

const Category& Taxonomy::category(CategoryId id) const {
  assert(id < categories_.size() && "category id out of range");
  return categories_[id];
}

std::optional<CategoryId> Taxonomy::find(std::string_view name) const noexcept {
  for (const Category& cat : categories_) {
    if (cat.name == name) return cat.id;
  }
  return std::nullopt;
}

CategoryId Taxonomy::root_of(CategoryId id) const {
  const Category& cat = category(id);
  return cat.is_root() ? cat.id : cat.parent;
}

std::span<const CategoryId> Taxonomy::children(CategoryId root) const {
  const Category& cat = category(root);
  assert(cat.is_root() && "children() requires a root category");
  (void)cat;
  return children_[root_position_[root]];
}

}  // namespace crowdweb::data

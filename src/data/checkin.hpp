// Core record types of the CrowdWeb data model.
#pragma once

#include <cstdint>
#include <string>

#include "data/categories.hpp"
#include "geo/point.hpp"

namespace crowdweb::data {

using UserId = std::uint32_t;
using VenueId = std::uint32_t;

/// A place a user can check in at (a Foursquare "venue").
struct Venue {
  VenueId id = 0;
  std::string name;
  CategoryId category = kNoCategory;  ///< leaf category (venue type)
  geo::LatLon position;
};

/// One geotagged check-in record: user U visited venue V at time T.
struct CheckIn {
  UserId user = 0;
  VenueId venue = 0;
  CategoryId category = kNoCategory;  ///< leaf category of the venue
  geo::LatLon position;
  std::int64_t timestamp = 0;  ///< epoch seconds, local city time

  friend bool operator==(const CheckIn&, const CheckIn&) = default;
};

}  // namespace crowdweb::data

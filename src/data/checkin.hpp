// Core record types of the CrowdWeb data model.
//
// Identifier strings are interned at the ingest boundary: a stored
// `Venue` carries a dense `NameId` into the dataset's StringPool
// instead of a heap string. `VenueSpec` is the boundary type — CSV
// loaders, the synthetic generator, and the ingest worker describe
// venues with a real string name, and DatasetBuilder::add_venue
// interns it on the way in. Strings come back out only at the render
// edge, via Dataset::venue_name / the epoch's name snapshot.
#pragma once

#include <cstdint>
#include <string>

#include "data/categories.hpp"
#include "data/string_pool.hpp"
#include "geo/point.hpp"

namespace crowdweb::data {

using UserId = std::uint32_t;
using VenueId = std::uint32_t;

/// A place a user can check in at (a Foursquare "venue"), as stored:
/// plain-old-data, with the display name interned to a NameId.
struct Venue {
  VenueId id = 0;
  NameId name = kNoName;              ///< index into the dataset's name pool
  CategoryId category = kNoCategory;  ///< leaf category (venue type)
  geo::LatLon position;
};

/// A venue as described at the ingest boundary, before its name has
/// been interned. DatasetBuilder::add_venue(VenueSpec) turns one of
/// these into a stored Venue.
struct VenueSpec {
  VenueId id = 0;
  std::string name;
  CategoryId category = kNoCategory;  ///< leaf category (venue type)
  geo::LatLon position;
};

/// One geotagged check-in record: user U visited venue V at time T.
struct CheckIn {
  UserId user = 0;
  VenueId venue = 0;
  CategoryId category = kNoCategory;  ///< leaf category of the venue
  geo::LatLon position;
  std::int64_t timestamp = 0;  ///< epoch seconds, local city time

  friend bool operator==(const CheckIn&, const CheckIn&) = default;
};

}  // namespace crowdweb::data

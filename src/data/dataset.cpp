#include "data/dataset.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "geo/kernels.hpp"
#include "stats/summary.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"

namespace crowdweb::data {

void Dataset::CheckInIterator::seek(std::size_t index) noexcept {
  index_ = index;
  const auto& offsets = dataset_->offsets_;
  if (offsets.empty() || index >= offsets.back()) {
    shard_ = dataset_->shards_.size();
    local_ = 0;
    return;
  }
  // offsets_[i] <= index < offsets_[i+1] puts the record in shard i.
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), index);
  shard_ = static_cast<std::size_t>(it - offsets.begin()) - 1;
  local_ = index - offsets[shard_];
}

const Venue* Dataset::venue(VenueId id) const noexcept {
  if (!venues_ || id >= venues_->size()) return nullptr;
  return &(*venues_)[id];
}

Dataset::UserColumns Dataset::checkins_for(UserId user) const noexcept {
  const auto it = std::lower_bound(users_.begin(), users_.end(), user);
  if (it == users_.end() || *it != user) return {};
  const std::size_t index = static_cast<std::size_t>(it - users_.begin());
  return UserColumns(shards_[index].get(), venues_ ? venues_.get() : nullptr);
}

Dataset::ShardPtr Dataset::shard_for(UserId user) const noexcept {
  const auto it = std::lower_bound(users_.begin(), users_.end(), user);
  if (it == users_.end() || *it != user) return nullptr;
  return shards_[static_cast<std::size_t>(it - users_.begin())];
}

VenueSpec Dataset::venue_spec(VenueId id) const {
  const Venue* v = venue(id);
  if (v == nullptr) return {};
  VenueSpec spec;
  spec.id = v->id;
  spec.name = std::string(name(v->name));
  spec.category = v->category;
  spec.position = v->position;
  return spec;
}

DatasetStats Dataset::stats() const {
  DatasetStats s;
  s.checkin_count = checkin_count();
  s.user_count = users_.size();
  s.venue_count = venue_count();
  if (s.checkin_count == 0) return s;

  std::vector<double> per_user;
  per_user.reserve(users_.size());
  for (const ShardPtr& shard : shards_)
    per_user.push_back(static_cast<double>(shard->size()));
  s.mean_records_per_user = stats::mean(per_user);
  s.median_records_per_user = stats::median(per_user);

  std::int64_t first = shards_.front()->timestamps.front();
  std::int64_t last = first;
  for (const ShardPtr& shard : shards_) {
    // Shards are time-sorted: front/back bound the user's range.
    first = std::min(first, shard->timestamps.front());
    last = std::max(last, shard->timestamps.back());
  }
  s.first_timestamp = first;
  s.last_timestamp = last;
  s.collection_days = static_cast<std::size_t>(day_index(last) - day_index(first)) + 1;
  if (s.collection_days > 0)
    s.mean_records_per_user_day =
        s.mean_records_per_user / static_cast<double>(s.collection_days);
  return s;
}

std::vector<std::pair<std::string, std::size_t>> Dataset::monthly_counts() const {
  // Month key = year * 12 + (month - 1), kept ordered. Only the
  // timestamp column matters, so walk it directly.
  std::vector<std::pair<std::int64_t, std::size_t>> keyed;
  for (const ShardPtr& shard : shards_) {
    for (const std::int64_t timestamp : shard->timestamps) {
      const CivilTime civil = to_civil(timestamp);
      const std::int64_t key = static_cast<std::int64_t>(civil.year) * 12 + civil.month - 1;
      const auto it = std::lower_bound(
          keyed.begin(), keyed.end(), key,
          [](const auto& entry, std::int64_t k) { return entry.first < k; });
      if (it != keyed.end() && it->first == key) {
        ++it->second;
      } else {
        keyed.insert(it, {key, 1});
      }
    }
  }
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(keyed.size());
  for (const auto& [key, count] : keyed) {
    out.emplace_back(
        crowdweb::format("{:04}-{:02}", key / 12, key % 12 + 1), count);
  }
  return out;
}

std::size_t Dataset::active_days(UserId user, std::int64_t from, std::int64_t to) const {
  std::set<std::int64_t> days;
  for (const std::int64_t timestamp : checkins_for(user).timestamps()) {
    if (timestamp < from) continue;
    if (to != 0 && timestamp >= to) continue;
    days.insert(day_index(timestamp));
  }
  return days.size();
}

bool Dataset::is_active_user(UserId user, const ActiveUserCriteria& criteria) const {
  const auto timestamps = checkins_for(user).timestamps();
  // Count qualifying days. Records are time-sorted, so a single pass
  // suffices: a day qualifies when the gap rule is disabled (any record)
  // or when two consecutive records on that day are close enough.
  std::set<std::int64_t> qualifying;
  std::int64_t prev_time = 0;
  std::int64_t prev_day = -1;
  bool have_prev = false;
  for (const std::int64_t timestamp : timestamps) {
    if (timestamp < criteria.from || timestamp >= criteria.to) {
      have_prev = false;
      continue;
    }
    const std::int64_t day = day_index(timestamp);
    if (criteria.max_gap_seconds <= 0) {
      qualifying.insert(day);
    } else if (have_prev && prev_day == day &&
               timestamp - prev_time <= criteria.max_gap_seconds) {
      qualifying.insert(day);
    }
    prev_time = timestamp;
    prev_day = day;
    have_prev = true;
  }
  return static_cast<int>(qualifying.size()) > criteria.min_days;
}

void Dataset::adopt(VenueTablePtr venues, StringPoolPtr pool, NamesPtr names,
                    std::vector<ShardPtr> shards, const geo::BoundingBox& bounds) {
  venues_ = std::move(venues);
  name_pool_ = std::move(pool);
  names_ = std::move(names);
  shards_ = std::move(shards);
  users_.clear();
  offsets_.clear();
  users_.reserve(shards_.size());
  offsets_.reserve(shards_.size() + 1);
  std::size_t total = 0;
  bounds_ = bounds;
  const bool derive_bounds = bounds_.empty();
  for (const ShardPtr& shard : shards_) {
    users_.push_back(shard->user);
    offsets_.push_back(total);
    total += shard->size();
    if (derive_bounds) geo::extend_bounds(bounds_, shard->lats, shard->lons);
  }
  offsets_.push_back(total);
}

Dataset Dataset::subset(std::vector<CheckIn> keep) const {
  // `keep` preserves (user, timestamp) order, so shards fall out of a
  // single grouping pass — no re-sort, and the venue table is shared.
  std::vector<ShardPtr> shards;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= keep.size(); ++i) {
    if (i == keep.size() || keep[i].user != keep[begin].user) {
      auto shard = std::make_shared<UserShard>();
      shard->user = keep[begin].user;
      const std::size_t n = i - begin;
      shard->timestamps.reserve(n);
      shard->lats.reserve(n);
      shard->lons.reserve(n);
      shard->venues.reserve(n);
      for (std::size_t k = begin; k < i; ++k) {
        shard->timestamps.push_back(keep[k].timestamp);
        shard->lats.push_back(keep[k].position.lat);
        shard->lons.push_back(keep[k].position.lon);
        shard->venues.push_back(keep[k].venue);
      }
      shards.push_back(std::move(shard));
      begin = i;
    }
  }
  Dataset out;
  out.adopt(venues_, name_pool_, names_, std::move(shards), geo::BoundingBox{});
  return out;
}

Dataset Dataset::filter_time_range(std::int64_t from, std::int64_t to) const {
  std::vector<CheckIn> keep;
  for (const CheckIn& c : checkins()) {
    if (c.timestamp >= from && c.timestamp < to) keep.push_back(c);
  }
  return subset(std::move(keep));
}

Dataset Dataset::filter_active_users(const ActiveUserCriteria& criteria) const {
  std::vector<UserId> selected;
  for (const UserId user : users_) {
    if (is_active_user(user, criteria)) selected.push_back(user);
  }
  return filter_users(selected);
}

Dataset Dataset::filter_users(std::span<const UserId> users) const {
  const std::unordered_set<UserId> wanted(users.begin(), users.end());
  std::vector<CheckIn> keep;
  for (const CheckIn& c : checkins()) {
    if (wanted.contains(c.user)) keep.push_back(c);
  }
  return subset(std::move(keep));
}

const Venue* DatasetBuilder::venue_at(VenueId id) const noexcept {
  const std::size_t base_count = base_.venue_count();
  if (id < base_count) return base_.venue(id);
  const std::size_t local = id - base_count;
  if (local >= new_venues_.size()) return nullptr;
  return &new_venues_[local];
}

void DatasetBuilder::ensure_pool() {
  if (!pool_) pool_ = std::make_shared<StringPool>();
}

Status DatasetBuilder::validate_venue(const Venue& venue, std::string_view display_name) {
  const std::size_t next_id = base_.venue_count() + new_venues_.size();
  if (venue.id != next_id)
    return invalid_argument(
        crowdweb::format("venue ids must be dense: expected {}, got {}", next_id,
                         venue.id));
  if (!geo::is_valid(venue.position))
    return invalid_argument(crowdweb::format("venue '{}' has an invalid position", display_name));
  if (venue.category == kNoCategory)
    return invalid_argument(crowdweb::format("venue '{}' has no category", display_name));
  return Status::ok();
}

Status DatasetBuilder::add_venue(const VenueSpec& spec) {
  Venue venue;
  venue.id = spec.id;
  venue.category = spec.category;
  venue.position = spec.position;
  if (Status status = validate_venue(venue, spec.name); !status.is_ok()) return status;
  ensure_pool();
  venue.name = pool_->intern(spec.name);
  new_venues_.push_back(venue);
  return Status::ok();
}

Status DatasetBuilder::add_venue(Venue venue) {
  ensure_pool();
  const std::string_view display_name =
      venue.name < pool_->size() ? pool_->snapshot()->names()[venue.name]
                                 : std::string_view{};
  if (Status status = validate_venue(venue, display_name); !status.is_ok()) return status;
  if (venue.name >= pool_->size())
    return invalid_argument(crowdweb::format(
        "venue {} references name id {} outside the pool ({} interned)", venue.id,
        venue.name, pool_->size()));
  new_venues_.push_back(venue);
  return Status::ok();
}

Status DatasetBuilder::add_checkin(CheckIn checkin) {
  const Venue* venue = venue_at(checkin.venue);
  if (venue == nullptr)
    return invalid_argument(crowdweb::format("check-in references unknown venue {}", checkin.venue));
  if (!geo::is_valid(checkin.position))
    return invalid_argument("check-in has an invalid position");
  if (checkin.category != venue->category)
    return invalid_argument(
        crowdweb::format("check-in category {} does not match venue category {}",
                         checkin.category, venue->category));
  pending_bounds_.extend(checkin.position);
  pending_[checkin.user].push_back(checkin);
  ++pending_count_;
  return Status::ok();
}

Dataset DatasetBuilder::build() {
  stats_ = {};
  ensure_pool();

  // Venue table: copy-on-write — adopt the base table untouched unless
  // this delta introduced venues.
  Dataset::VenueTablePtr venues;
  if (new_venues_.empty()) {
    venues = base_.venues_;
    stats_.venue_table_shared = venues != nullptr;
  } else {
    auto table = std::make_shared<std::vector<Venue>>();
    table->reserve(base_.venue_count() + new_venues_.size());
    if (base_.venues_)
      table->insert(table->end(), base_.venues_->begin(), base_.venues_->end());
    for (const Venue& v : new_venues_) table->push_back(v);
    venues = std::move(table);
  }

  // Touched users, ascending, each with its delta stably time-sorted so
  // same-timestamp records keep arrival order.
  std::vector<UserId> touched;
  touched.reserve(pending_.size());
  for (auto& [user, records] : pending_) {
    touched.push_back(user);
    std::stable_sort(records.begin(), records.end(),
                     [](const CheckIn& a, const CheckIn& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  std::sort(touched.begin(), touched.end());

  // Merge the base's user-sorted shards with the touched users: an
  // untouched shard is shared by pointer; a touched one is rebuilt by a
  // stable columnar time-merge of base records (first on ties) and the
  // delta.
  std::vector<Dataset::ShardPtr> shards;
  shards.reserve(base_.shards_.size() + touched.size());
  std::size_t bi = 0;
  std::size_t ti = 0;
  while (bi < base_.shards_.size() || ti < touched.size()) {
    if (ti == touched.size() ||
        (bi < base_.shards_.size() && base_.shards_[bi]->user < touched[ti])) {
      shards.push_back(base_.shards_[bi]);
      ++stats_.shards_reused;
      ++bi;
      continue;
    }
    const UserId user = touched[ti];
    std::vector<CheckIn>& delta = pending_[user];
    auto shard = std::make_shared<Dataset::UserShard>();
    shard->user = user;
    const Dataset::UserShard* existing = nullptr;
    if (bi < base_.shards_.size() && base_.shards_[bi]->user == user) {
      existing = base_.shards_[bi].get();
      ++bi;
    }
    const std::size_t base_n = existing ? existing->size() : 0;
    const std::size_t n = base_n + delta.size();
    shard->timestamps.reserve(n);
    shard->lats.reserve(n);
    shard->lons.reserve(n);
    shard->venues.reserve(n);
    std::size_t i = 0;  // base cursor
    std::size_t j = 0;  // delta cursor
    while (i < base_n || j < delta.size()) {
      // Base wins timestamp ties, matching std::merge's stable order.
      if (j == delta.size() ||
          (i < base_n && existing->timestamps[i] <= delta[j].timestamp)) {
        shard->timestamps.push_back(existing->timestamps[i]);
        shard->lats.push_back(existing->lats[i]);
        shard->lons.push_back(existing->lons[i]);
        shard->venues.push_back(existing->venues[i]);
        ++i;
      } else {
        shard->timestamps.push_back(delta[j].timestamp);
        shard->lats.push_back(delta[j].position.lat);
        shard->lons.push_back(delta[j].position.lon);
        shard->venues.push_back(delta[j].venue);
        ++j;
      }
    }
    shards.push_back(std::move(shard));
    ++stats_.shards_rebuilt;
    ++ti;
  }

  geo::BoundingBox bounds = base_.bounds_;
  bounds.extend(pending_bounds_);

  Dataset out;
  out.adopt(std::move(venues), pool_, pool_->snapshot(), std::move(shards), bounds);
  base_ = Dataset{};
  new_venues_.clear();
  pending_.clear();
  pending_count_ = 0;
  pending_bounds_ = geo::BoundingBox{};
  return out;
}

}  // namespace crowdweb::data

#include "data/dataset.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "stats/summary.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"

namespace crowdweb::data {

const Venue* Dataset::venue(VenueId id) const noexcept {
  if (id >= venues_.size()) return nullptr;
  return &venues_[id];
}

std::span<const CheckIn> Dataset::checkins_for(UserId user) const noexcept {
  const auto it = std::lower_bound(users_.begin(), users_.end(), user);
  if (it == users_.end() || *it != user) return {};
  const std::size_t index = static_cast<std::size_t>(it - users_.begin());
  return {checkins_.data() + offsets_[index], offsets_[index + 1] - offsets_[index]};
}

DatasetStats Dataset::stats() const {
  DatasetStats s;
  s.checkin_count = checkins_.size();
  s.user_count = users_.size();
  s.venue_count = venues_.size();
  if (checkins_.empty()) return s;

  std::vector<double> per_user;
  per_user.reserve(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i)
    per_user.push_back(static_cast<double>(offsets_[i + 1] - offsets_[i]));
  s.mean_records_per_user = stats::mean(per_user);
  s.median_records_per_user = stats::median(per_user);

  std::int64_t first = checkins_.front().timestamp;
  std::int64_t last = first;
  for (const CheckIn& c : checkins_) {
    first = std::min(first, c.timestamp);
    last = std::max(last, c.timestamp);
  }
  s.first_timestamp = first;
  s.last_timestamp = last;
  s.collection_days = static_cast<std::size_t>(day_index(last) - day_index(first)) + 1;
  if (s.collection_days > 0)
    s.mean_records_per_user_day =
        s.mean_records_per_user / static_cast<double>(s.collection_days);
  return s;
}

std::vector<std::pair<std::string, std::size_t>> Dataset::monthly_counts() const {
  // Month key = year * 12 + (month - 1), kept ordered.
  std::vector<std::pair<std::int64_t, std::size_t>> keyed;
  for (const CheckIn& c : checkins_) {
    const CivilTime civil = to_civil(c.timestamp);
    const std::int64_t key = static_cast<std::int64_t>(civil.year) * 12 + civil.month - 1;
    const auto it = std::lower_bound(
        keyed.begin(), keyed.end(), key,
        [](const auto& entry, std::int64_t k) { return entry.first < k; });
    if (it != keyed.end() && it->first == key) {
      ++it->second;
    } else {
      keyed.insert(it, {key, 1});
    }
  }
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(keyed.size());
  for (const auto& [key, count] : keyed) {
    out.emplace_back(
        crowdweb::format("{:04}-{:02}", key / 12, key % 12 + 1), count);
  }
  return out;
}

std::size_t Dataset::active_days(UserId user, std::int64_t from, std::int64_t to) const {
  std::set<std::int64_t> days;
  for (const CheckIn& c : checkins_for(user)) {
    if (c.timestamp < from) continue;
    if (to != 0 && c.timestamp >= to) continue;
    days.insert(day_index(c.timestamp));
  }
  return days.size();
}

bool Dataset::is_active_user(UserId user, const ActiveUserCriteria& criteria) const {
  const auto records = checkins_for(user);
  // Count qualifying days. Records are time-sorted, so a single pass
  // suffices: a day qualifies when the gap rule is disabled (any record)
  // or when two consecutive records on that day are close enough.
  std::set<std::int64_t> qualifying;
  std::int64_t prev_time = 0;
  std::int64_t prev_day = -1;
  bool have_prev = false;
  for (const CheckIn& c : records) {
    if (c.timestamp < criteria.from || c.timestamp >= criteria.to) {
      have_prev = false;
      continue;
    }
    const std::int64_t day = day_index(c.timestamp);
    if (criteria.max_gap_seconds <= 0) {
      qualifying.insert(day);
    } else if (have_prev && prev_day == day &&
               c.timestamp - prev_time <= criteria.max_gap_seconds) {
      qualifying.insert(day);
    }
    prev_time = c.timestamp;
    prev_day = day;
    have_prev = true;
  }
  return static_cast<int>(qualifying.size()) > criteria.min_days;
}

namespace {

Dataset subset(const Dataset& source, const std::vector<CheckIn>& keep) {
  DatasetBuilder builder;
  for (const Venue& v : source.venues()) {
    const Status status = builder.add_venue(v);
    (void)status;  // venues come from a built dataset; always valid
  }
  for (const CheckIn& c : keep) {
    const Status status = builder.add_checkin(c);
    (void)status;
  }
  return builder.build();
}

}  // namespace

Dataset Dataset::filter_time_range(std::int64_t from, std::int64_t to) const {
  std::vector<CheckIn> keep;
  for (const CheckIn& c : checkins_) {
    if (c.timestamp >= from && c.timestamp < to) keep.push_back(c);
  }
  return subset(*this, keep);
}

Dataset Dataset::filter_active_users(const ActiveUserCriteria& criteria) const {
  std::vector<UserId> selected;
  for (const UserId user : users_) {
    if (is_active_user(user, criteria)) selected.push_back(user);
  }
  return filter_users(selected);
}

Dataset Dataset::filter_users(std::span<const UserId> users) const {
  const std::unordered_set<UserId> wanted(users.begin(), users.end());
  std::vector<CheckIn> keep;
  for (const CheckIn& c : checkins_) {
    if (wanted.contains(c.user)) keep.push_back(c);
  }
  return subset(*this, keep);
}

void Dataset::rebuild_index() {
  std::sort(checkins_.begin(), checkins_.end(), [](const CheckIn& a, const CheckIn& b) {
    if (a.user != b.user) return a.user < b.user;
    return a.timestamp < b.timestamp;
  });
  users_.clear();
  offsets_.clear();
  bounds_ = geo::BoundingBox{};
  for (std::size_t i = 0; i < checkins_.size(); ++i) {
    if (i == 0 || checkins_[i].user != checkins_[i - 1].user) {
      users_.push_back(checkins_[i].user);
      offsets_.push_back(i);
    }
    bounds_.extend(checkins_[i].position);
  }
  offsets_.push_back(checkins_.size());
}

Status DatasetBuilder::add_venue(Venue venue) {
  if (venue.id != venues_.size())
    return invalid_argument(
        crowdweb::format("venue ids must be dense: expected {}, got {}", venues_.size(),
                         venue.id));
  if (!geo::is_valid(venue.position))
    return invalid_argument(crowdweb::format("venue '{}' has an invalid position", venue.name));
  if (venue.category == kNoCategory)
    return invalid_argument(crowdweb::format("venue '{}' has no category", venue.name));
  venues_.push_back(std::move(venue));
  return Status::ok();
}

Status DatasetBuilder::add_checkin(CheckIn checkin) {
  if (checkin.venue >= venues_.size())
    return invalid_argument(crowdweb::format("check-in references unknown venue {}", checkin.venue));
  if (!geo::is_valid(checkin.position))
    return invalid_argument("check-in has an invalid position");
  if (checkin.category != venues_[checkin.venue].category)
    return invalid_argument(
        crowdweb::format("check-in category {} does not match venue category {}",
                         checkin.category, venues_[checkin.venue].category));
  checkins_.push_back(checkin);
  return Status::ok();
}

Dataset DatasetBuilder::build() {
  Dataset dataset;
  dataset.venues_ = std::move(venues_);
  dataset.checkins_ = std::move(checkins_);
  venues_.clear();
  checkins_.clear();
  dataset.rebuild_index();
  return dataset;
}

}  // namespace crowdweb::data

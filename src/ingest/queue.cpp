#include "ingest/queue.hpp"

#include <algorithm>

namespace crowdweb::ingest {

IngestQueue::IngestQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

std::size_t IngestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

bool IngestQueue::try_push(const IngestEvent& event) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_ && events_.size() < capacity_) {
      events_.push_back(event);
      not_empty_.notify_one();
      return true;
    }
  }
  count_rejected(1);
  return false;
}

std::size_t IngestQueue::push_batch(std::span<const IngestEvent> events) {
  std::size_t accepted = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_) {
      const std::size_t room = capacity_ - std::min(capacity_, events_.size());
      accepted = std::min(room, events.size());
      events_.insert(events_.end(), events.begin(), events.begin() + accepted);
      if (accepted > 0) not_empty_.notify_one();
    }
  }
  count_rejected(events.size() - accepted);
  return accepted;
}

std::size_t IngestQueue::drain(std::vector<IngestEvent>& out, std::size_t max_events,
                               std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_for(lock, timeout, [this] { return !events_.empty() || closed_; });
  const std::size_t count = std::min(max_events, events_.size());
  out.insert(out.end(), events_.begin(), events_.begin() + count);
  events_.erase(events_.begin(), events_.begin() + count);
  return count;
}

void IngestQueue::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
}

bool IngestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::uint64_t IngestQueue::rejected() const noexcept {
  return rejected_.load(std::memory_order_relaxed);
}

}  // namespace crowdweb::ingest

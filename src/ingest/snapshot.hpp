// Epoch-based snapshot publication (RCU-style).
//
// The ingestion worker never mutates state that HTTP handlers read.
// Instead it builds a fresh, immutable PlatformSnapshot off to the side
// and publishes it by swapping one atomic shared_ptr — the "epoch"
// advances, readers that loaded the previous snapshot keep a reference
// until their request completes, and the old epoch retires when its last
// reader drops the pointer. Readers therefore take no locks and never
// observe a half-built state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "crowd/model.hpp"
#include "data/dataset.hpp"
#include "geo/grid.hpp"
#include "patterns/mobility.hpp"

namespace crowdweb::ingest {

/// One immutable epoch of the live platform: the merged corpus (base +
/// accepted live check-ins) and everything phase 2/3 derives from it.
///
/// The big parts are shared, not copied: `dataset` holds per-user
/// shards and the venue table behind shared_ptrs, `mobility` shares the
/// per-user entries the epoch's delta did not touch, and `crowd` shares
/// the unaffected time windows — so publishing an epoch costs O(delta),
/// not O(corpus), and consecutive snapshots alias all unchanged state.
struct PlatformSnapshot {
  std::uint64_t epoch = 0;
  std::size_t live_checkins = 0;  ///< accepted live events merged so far
  std::size_t live_users = 0;     ///< users whose history the deltas touched
  double rebuild_ms = 0.0;        ///< wall-clock cost of building this epoch
  data::Dataset dataset;
  patterns::MobilityTable mobility;  ///< per-user entries, ascending user id
  geo::SpatialGrid grid;
  crowd::CrowdModel crowd;
};

using SnapshotPtr = std::shared_ptr<const PlatformSnapshot>;

/// Single-writer multi-reader snapshot exchange point.
class SnapshotHub {
 public:
  /// The latest published epoch; null until the first publication. The
  /// returned pointer keeps the whole epoch alive for as long as the
  /// caller holds it.
  [[nodiscard]] SnapshotPtr current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Swaps in the next epoch (worker thread only), then invokes every
  /// on_publish hook with the new snapshot — on the publishing thread,
  /// after the swap, so hooks observe `current()` == the argument.
  void publish(SnapshotPtr next) {
    const PlatformSnapshot* snapshot = next.get();
    current_.store(std::move(next), std::memory_order_release);
    if (snapshot == nullptr) return;
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    for (const auto& hook : hooks_) hook(*snapshot);
  }

  /// Registers a callback run on every publication (e.g. bumping a
  /// ResponseCache epoch so stale entries become unreachable). Hooks
  /// run on the publishing thread and must be fast and non-blocking.
  /// Register before the worker starts to see the first epoch.
  void on_publish(std::function<void(const PlatformSnapshot&)> hook) {
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    hooks_.push_back(std::move(hook));
  }

  /// Epoch of the current snapshot (0 before the first publication).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    const SnapshotPtr snapshot = current();
    return snapshot ? snapshot->epoch : 0;
  }

 private:
  std::atomic<SnapshotPtr> current_;
  std::mutex hooks_mutex_;
  std::vector<std::function<void(const PlatformSnapshot&)>> hooks_;
};

}  // namespace crowdweb::ingest

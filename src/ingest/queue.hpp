// Bounded MPSC queue feeding the live ingestion worker.
//
// Producers are HTTP handler threads and replay drivers; the single
// consumer is the IngestWorker. The queue is bounded with *explicit*
// backpressure: a full queue rejects the push (and counts the rejection)
// instead of blocking or silently dropping, so callers can report a
// structured "try again" to their own clients. The consumer drains in
// batches, amortizing wakeups under load.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "data/checkin.hpp"
#include "geo/point.hpp"
#include "ingest/event.hpp"
#include "telemetry/metrics.hpp"

namespace crowdweb::ingest {

/// Bounded multi-producer single-consumer event queue.
class IngestQueue {
 public:
  explicit IngestQueue(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Current depth (racy snapshot; exact under the producer's own lock).
  [[nodiscard]] std::size_t size() const;

  /// Enqueues one event. Returns false — and counts a rejection — when
  /// the queue is full or closed.
  bool try_push(const IngestEvent& event);

  /// Enqueues a batch front-to-back until the queue fills; returns the
  /// number accepted. Rejected events are counted.
  std::size_t push_batch(std::span<const IngestEvent> events);

  /// Consumer side: blocks up to `timeout` for at least one event, then
  /// appends up to `max_events` to `out`. Returns the number drained
  /// (0 on timeout or when closed and empty).
  std::size_t drain(std::vector<IngestEvent>& out, std::size_t max_events,
                    std::chrono::milliseconds timeout);

  /// Rejects all future pushes and wakes the consumer. Already-queued
  /// events remain drainable. Idempotent.
  void close();

  [[nodiscard]] bool closed() const;

  /// Total events rejected because the queue was full or closed.
  [[nodiscard]] std::uint64_t rejected() const noexcept;

  /// Mirrors every rejection onto a registry counter (the
  /// crowdweb_ingest_rejected_total series; attached by the worker).
  /// Pass nullptr to detach. The counter must outlive the queue while
  /// attached; call before producers start pushing.
  void attach_rejected_counter(telemetry::Counter* counter) noexcept {
    rejected_counter_.store(counter, std::memory_order_release);
  }

 private:
  void count_rejected(std::uint64_t n) noexcept {
    if (n == 0) return;
    rejected_.fetch_add(n, std::memory_order_relaxed);
    if (telemetry::Counter* counter = rejected_counter_.load(std::memory_order_acquire))
      counter->increment(n);
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<IngestEvent> events_;
  bool closed_ = false;
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<telemetry::Counter*> rejected_counter_{nullptr};
};

}  // namespace crowdweb::ingest

#include "ingest/replay.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "data/csv.hpp"
#include "http/client.hpp"
#include "json/json.hpp"
#include "util/civil_time.hpp"
#include "util/format.hpp"

namespace crowdweb::ingest {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

IngestEvent to_event(const data::CheckIn& checkin) noexcept {
  IngestEvent event;
  event.user = checkin.user;
  event.category = checkin.category;
  event.position = checkin.position;
  event.timestamp = checkin.timestamp;
  return event;
}

Result<ReplayReport> replay(std::span<const data::CheckIn> stream,
                            const ReplayOptions& options, const ReplaySink& sink) {
  if (!sink) return invalid_argument("replay needs a sink");
  const std::size_t batch_size = std::max<std::size_t>(1, options.batch_size);
  const std::size_t total = options.max_events > 0
                                ? std::min(stream.size(), options.max_events)
                                : stream.size();
  ReplayReport report;
  std::vector<IngestEvent> batch;
  batch.reserve(batch_size);
  const auto start = Clock::now();
  std::size_t sent = 0;
  while (sent < total) {
    if (options.max_seconds > 0.0 && seconds_since(start) >= options.max_seconds) break;
    if (options.events_per_second > 0.0) {
      // Event i is due at start + i/rate; sleeping to the batch's first
      // event keeps the offered rate steady regardless of sink latency.
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(sent) /
                                                    options.events_per_second));
      std::this_thread::sleep_until(due);
    }
    const std::size_t n = std::min(batch_size, total - sent);
    batch.clear();
    for (std::size_t i = 0; i < n; ++i) batch.push_back(to_event(stream[sent + i]));
    const auto outcome = sink(batch);
    if (!outcome) return outcome.status();
    report.offered += n;
    report.accepted += outcome->accepted;
    report.rejected += outcome->rejected;
    sent += n;
  }
  report.elapsed_seconds = seconds_since(start);
  return report;
}

ReplaySink worker_sink(IngestWorker& worker) {
  return [&worker](std::span<const IngestEvent> events) -> Result<SinkReport> {
    const SubmitResult result = worker.submit(events);
    return SinkReport{result.accepted, result.rejected};
  };
}

ReplaySink queue_sink(IngestQueue& queue) {
  return [&queue](std::span<const IngestEvent> events) -> Result<SinkReport> {
    const std::size_t accepted = queue.push_batch(events);
    return SinkReport{accepted, events.size() - accepted};
  };
}

std::string events_csv(std::span<const IngestEvent> events,
                       const data::Taxonomy& taxonomy) {
  std::vector<data::CsvRow> rows;
  rows.reserve(events.size() + 1);
  rows.push_back({"user", "category", "lat", "lon", "timestamp"});
  for (const IngestEvent& event : events) {
    rows.push_back({std::to_string(event.user), taxonomy.name(event.category),
                    std::to_string(event.position.lat),
                    std::to_string(event.position.lon),
                    format_timestamp(event.timestamp)});
  }
  return data::write_csv(rows);
}

ReplaySink http_sink(std::string host, std::uint16_t port,
                     const data::Taxonomy& taxonomy) {
  return [host = std::move(host), port,
          &taxonomy](std::span<const IngestEvent> events) -> Result<SinkReport> {
    const auto response =
        http::fetch(host, port, "POST", "/api/ingest", events_csv(events, taxonomy));
    if (!response) return response.status();
    if (response->status != 200 && response->status != 429)
      return unavailable(crowdweb::format("/api/ingest answered {}: {}",
                                          response->status, response->body));
    const auto payload = json::parse(response->body);
    if (!payload) return payload.status();
    SinkReport report;
    if (const json::Value* accepted = payload->find("accepted"))
      report.accepted = static_cast<std::size_t>(accepted->as_int());
    if (const json::Value* rejected = payload->find("rejected"))
      report.rejected = static_cast<std::size_t>(rejected->as_int());
    // Spool-backed deployments absorb bursts to disk; those events are
    // on their way into the queue, so the producer treats them as taken.
    if (const json::Value* spooled = payload->find("spooled"))
      report.accepted += static_cast<std::size_t>(spooled->as_int());
    return report;
  };
}

}  // namespace crowdweb::ingest

// The live check-in event record shared by the ingestion queue and the
// durable store's write-ahead log.
#pragma once

#include <cstdint>

#include "data/checkin.hpp"
#include "geo/point.hpp"

namespace crowdweb::ingest {

/// One live check-in as submitted, before venue resolution. Producers
/// only know *what kind* of place was visited and where; the worker maps
/// the position onto a concrete venue of the evolving corpus.
struct IngestEvent {
  data::UserId user = 0;
  data::CategoryId category = data::kNoCategory;
  geo::LatLon position;
  std::int64_t timestamp = 0;  ///< epoch seconds, local city time

  friend bool operator==(const IngestEvent&, const IngestEvent&) = default;
};

}  // namespace crowdweb::ingest

// Background ingestion worker: queue -> validation -> delta merge ->
// epoch publication.
//
// The worker owns the only mutable copy of the live corpus. It drains
// the ingest queue in batches, validates events against the taxonomy,
// resolves each event onto a venue (an existing one at that position, or
// a freshly registered "live" venue), and appends the resulting check-in
// to its delta state. On a configurable cadence it rebuilds the derived
// state — phase-2 re-mining *only* for users whose history changed,
// phase-3 crowd model and grid occupancy over the merged corpus — and
// publishes the result as the next immutable epoch through a
// SnapshotHub. HTTP readers keep loading snapshots lock-free while the
// worker prepares the next one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crowd/model.hpp"
#include "data/categories.hpp"
#include "data/dataset.hpp"
#include "ingest/queue.hpp"
#include "ingest/snapshot.hpp"
#include "mining/seqdb.hpp"
#include "patterns/mobility.hpp"
#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace crowdweb::ingest {

/// How the worker rebuilds derived state (mirrors PlatformConfig's
/// phase-2/phase-3 knobs; see core::make_ingest_worker).
struct IngestPipelineConfig {
  double grid_cell_meters = 500.0;
  crowd::CrowdOptions crowd;
  mining::SequenceOptions sequences;
  mining::MiningOptions mining;
};

struct IngestWorkerConfig {
  std::size_t queue_capacity = 8192;
  /// Events drained from the queue per wakeup.
  std::size_t drain_batch = 1024;
  /// Minimum spacing between epoch rebuilds; accepted events batch up in
  /// between.
  std::chrono::milliseconds rebuild_interval{200};
  /// Telemetry registry the worker records onto (crowdweb_ingest_*
  /// families; see docs/OBSERVABILITY.md). Must outlive the worker.
  /// Null = the worker keeps a private registry (stats() still works);
  /// attach at most one worker per registry — the scrape-time gauges
  /// (queue depth, epoch, ...) are registered by name.
  telemetry::Registry* metrics = nullptr;
  /// Upper bounds (seconds) of the epoch-rebuild and per-stage
  /// histograms; empty = telemetry::default_duration_buckets().
  std::vector<double> rebuild_buckets;
};

/// Monotonic counters for `GET /api/ingest/stats`.
struct IngestStats {
  std::uint64_t submitted = 0;   ///< events offered through submit()
  std::uint64_t accepted = 0;    ///< validated and merged (or pending merge)
  std::uint64_t rejected = 0;    ///< refused by the full queue
  std::uint64_t invalid = 0;     ///< failed validation
  std::uint64_t epochs_published = 0;
  std::uint64_t current_epoch = 0;    ///< epoch visible in the hub
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::uint64_t live_checkins = 0;    ///< accepted deltas in the published epoch
  double last_rebuild_ms = 0.0;
  double total_rebuild_ms = 0.0;
};

/// Outcome of one submit() call.
struct SubmitResult {
  std::size_t accepted = 0;  ///< enqueued for the worker
  std::size_t rejected = 0;  ///< refused: queue full (retry later)
};

class IngestWorker {
 public:
  /// `base` and `base_mobility` seed the live corpus (copied); `taxonomy`
  /// must outlive the worker.
  IngestWorker(const data::Dataset& base,
               std::span<const patterns::UserMobility> base_mobility,
               const data::Taxonomy& taxonomy, IngestPipelineConfig pipeline = {},
               IngestWorkerConfig config = {});
  ~IngestWorker();
  IngestWorker(const IngestWorker&) = delete;
  IngestWorker& operator=(const IngestWorker&) = delete;

  /// Publishes the base corpus as epoch 1 and spawns the worker thread.
  [[nodiscard]] Status start();

  /// Closes the queue, merges what was already accepted into a final
  /// epoch, and joins (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Producer side: enqueues events with backpressure. Thread-safe.
  SubmitResult submit(std::span<const IngestEvent> events);

  /// Accounts events a producer discarded before submission (e.g. CSV
  /// rows that failed to parse). Thread-safe.
  void note_invalid(std::uint64_t count) noexcept;

  /// A fresh user id for an anonymous submission (outside any corpus
  /// id range). Thread-safe.
  [[nodiscard]] data::UserId allocate_guest_id() noexcept;

  [[nodiscard]] const SnapshotHub& hub() const noexcept { return hub_; }
  [[nodiscard]] IngestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const data::Taxonomy& taxonomy() const noexcept { return taxonomy_; }

  [[nodiscard]] IngestStats stats() const;

  /// Blocks until the published epoch reaches `epoch` (true) or the
  /// timeout expires (false).
  [[nodiscard]] bool wait_for_epoch(std::uint64_t epoch,
                                    std::chrono::milliseconds timeout) const;

 private:
  void run();
  /// Validates and applies drained events to the delta state. Worker
  /// thread only.
  void apply(std::span<const IngestEvent> events);
  /// Rebuilds derived state and publishes the next epoch. Worker thread
  /// only (also called once from start() before the thread exists).
  Status rebuild_and_publish();
  [[nodiscard]] data::VenueId resolve_venue(data::CategoryId category,
                                            const geo::LatLon& position);

  const data::Taxonomy& taxonomy_;
  IngestPipelineConfig pipeline_;
  IngestWorkerConfig config_;
  IngestQueue queue_;
  SnapshotHub hub_;

  // Live corpus, owned by the worker thread after start().
  std::vector<data::Venue> venues_;
  std::vector<data::CheckIn> checkins_;
  std::vector<patterns::UserMobility> mobility_;         // sorted by user
  std::unordered_map<std::uint64_t, data::VenueId> venue_index_;
  std::unordered_set<data::UserId> pending_users_;  // changed since last epoch
  std::unordered_set<data::UserId> touched_users_;  // ever touched by deltas
  std::uint64_t epoch_ = 0;
  std::size_t base_checkin_count_ = 0;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Telemetry: the crowdweb_ingest_* families are the worker's only
  // accounting — IngestStats reads them back. `own_metrics_` backs
  // workers constructed without an external registry.
  void init_metrics();
  std::unique_ptr<telemetry::Registry> own_metrics_;
  telemetry::Registry* metrics_ = nullptr;
  telemetry::Counter* submitted_ = nullptr;
  telemetry::Counter* accepted_ = nullptr;
  telemetry::Counter* invalid_ = nullptr;
  telemetry::Counter* epochs_published_ = nullptr;
  telemetry::Histogram* rebuild_seconds_ = nullptr;
  telemetry::Histogram* stage_merge_seconds_ = nullptr;
  telemetry::Histogram* stage_mine_seconds_ = nullptr;
  telemetry::Histogram* stage_grid_seconds_ = nullptr;
  telemetry::Histogram* stage_crowd_seconds_ = nullptr;
  telemetry::Gauge* last_rebuild_seconds_ = nullptr;
  std::vector<std::string> callback_gauge_names_;  ///< removed on destruction

  std::atomic<std::uint64_t> snapshot_live_{0};
  std::atomic<data::UserId> next_guest_id_{3'000'000'000u};

  mutable std::mutex epoch_mutex_;
  mutable std::condition_variable epoch_cv_;
  std::uint64_t published_epoch_ = 0;  // guarded by epoch_mutex_
};

}  // namespace crowdweb::ingest

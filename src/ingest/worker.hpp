// Background ingestion worker: queue -> validation -> delta merge ->
// epoch publication.
//
// The worker owns the only mutable copy of the live corpus. It drains
// the ingest queue in batches, validates events against the taxonomy,
// resolves each event onto a venue (an existing one at that position, or
// a freshly registered "live" venue), and appends the resulting check-in
// to its delta state. On a configurable cadence it rebuilds the derived
// state — phase-2 re-mining *only* for users whose history changed,
// phase-3 crowd model and grid occupancy over the merged corpus — and
// publishes the result as the next immutable epoch through a
// SnapshotHub. HTTP readers keep loading snapshots lock-free while the
// worker prepares the next one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crowd/model.hpp"
#include "data/categories.hpp"
#include "data/dataset.hpp"
#include "ingest/queue.hpp"
#include "ingest/snapshot.hpp"
#include "mining/seqdb.hpp"
#include "patterns/mobility.hpp"
#include "store/store.hpp"
#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace crowdweb::ingest {

/// How the worker rebuilds derived state (mirrors PlatformConfig's
/// phase-2/phase-3 knobs; see core::make_ingest_worker).
struct IngestPipelineConfig {
  double grid_cell_meters = 500.0;
  crowd::CrowdOptions crowd;
  mining::SequenceOptions sequences;
  mining::MiningOptions mining;
  /// Worker threads for delta re-mining and crowd placement
  /// (0 = hardware concurrency). Epochs re-mine only the users the
  /// delta touched, sharded across this many threads; full crowd
  /// rebuilds fan user placement across the same pool.
  unsigned mining_threads = 0;
  /// Rebuild the crowd model from scratch every N epochs as a
  /// correctness backstop for the incremental update path (0 = never;
  /// the incremental update is exact while the grid and options are
  /// stable, so the backstop only guards against drift bugs).
  std::uint64_t crowd_full_rebuild_epochs = 64;
  /// Pins the spatial grid to these bounds (inflated by the same margin
  /// the dynamic path uses): the grid is created once and never rebuilt,
  /// regardless of corpus growth. Sharded deployments set every shard's
  /// grid to the same city-wide box so per-shard cell ids are directly
  /// mergeable (see shard::ShardRouter); events outside the box clamp
  /// to edge cells. Unset = the grid tracks the live corpus bounds.
  std::optional<geo::BoundingBox> fixed_grid_bounds;
};

struct IngestWorkerConfig {
  std::size_t queue_capacity = 8192;
  /// Events drained from the queue per wakeup.
  std::size_t drain_batch = 1024;
  /// Minimum spacing between epoch rebuilds; accepted events batch up in
  /// between.
  std::chrono::milliseconds rebuild_interval{200};
  /// Telemetry registry the worker records onto (crowdweb_ingest_*
  /// families; see docs/OBSERVABILITY.md). Must outlive the worker.
  /// Null = the worker keeps a private registry (stats() still works);
  /// attach at most one worker per registry — the scrape-time gauges
  /// (queue depth, epoch, ...) are registered by name.
  telemetry::Registry* metrics = nullptr;
  /// Upper bounds (seconds) of the epoch-rebuild and per-stage
  /// histograms; empty = telemetry::default_duration_buckets().
  std::vector<double> rebuild_buckets;
  /// Durable storage (WAL + checkpoints). `store.dir` empty = disabled:
  /// the worker keeps the pre-durability behavior (memory only). With a
  /// directory set, start() runs crash recovery before publishing
  /// epoch 1 and every accepted batch is journaled before its epoch is
  /// published. `store.metrics` null inherits the worker's registry.
  store::StoreConfig store;
};

/// Monotonic counters for `GET /api/ingest/stats`.
struct IngestStats {
  std::uint64_t submitted = 0;   ///< events offered through submit()
  std::uint64_t accepted = 0;    ///< validated and merged (or pending merge)
  std::uint64_t rejected = 0;    ///< refused by the full queue
  std::uint64_t invalid = 0;     ///< failed validation
  std::uint64_t epochs_published = 0;
  std::uint64_t current_epoch = 0;    ///< epoch visible in the hub
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::uint64_t live_checkins = 0;    ///< accepted deltas in the published epoch
  double last_rebuild_ms = 0.0;
  double total_rebuild_ms = 0.0;
};

/// Outcome of one submit() call.
struct SubmitResult {
  std::size_t accepted = 0;  ///< enqueued for the worker
  std::size_t rejected = 0;  ///< refused: queue full (retry later)
};

class IngestWorker {
 public:
  /// `base` and `base_mobility` seed the live corpus (copied); `taxonomy`
  /// must outlive the worker.
  IngestWorker(const data::Dataset& base,
               std::span<const patterns::UserMobility> base_mobility,
               const data::Taxonomy& taxonomy, IngestPipelineConfig pipeline = {},
               IngestWorkerConfig config = {});
  ~IngestWorker();
  IngestWorker(const IngestWorker&) = delete;
  IngestWorker& operator=(const IngestWorker&) = delete;

  /// Recovers from the durable store when one is configured (newest
  /// checkpoint + WAL tail replayed through the merge path), publishes
  /// the recovered corpus as the first epoch, and spawns the worker
  /// thread. Without a store, publishes the base corpus as epoch 1.
  [[nodiscard]] Status start();

  /// Closes the queue, merges what was already accepted into a final
  /// epoch, and joins (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Producer side: enqueues events with backpressure. Thread-safe.
  SubmitResult submit(std::span<const IngestEvent> events);

  /// Accounts events a producer discarded before submission (e.g. CSV
  /// rows that failed to parse). Thread-safe.
  void note_invalid(std::uint64_t count) noexcept;

  /// A fresh user id for an anonymous submission (outside any corpus
  /// id range). Thread-safe.
  [[nodiscard]] data::UserId allocate_guest_id() noexcept;

  [[nodiscard]] const SnapshotHub& hub() const noexcept { return hub_; }
  /// Mutable hub access, e.g. to register SnapshotHub::on_publish hooks
  /// (do so before start() to observe the first epoch).
  [[nodiscard]] SnapshotHub& hub() noexcept { return hub_; }
  [[nodiscard]] IngestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const data::Taxonomy& taxonomy() const noexcept { return taxonomy_; }
  /// The worker's configuration (e.g. the rebuild interval backing the
  /// Retry-After hint on 429 responses).
  [[nodiscard]] const IngestWorkerConfig& config() const noexcept { return config_; }

  [[nodiscard]] IngestStats stats() const;

  /// The durable store, or null when durability is disabled (not
  /// configured, or start() has not run yet). Valid once start()
  /// returned OK; the pointer is stable until destruction.
  [[nodiscard]] store::DurableStore* store() const noexcept { return store_.get(); }

  /// Asks the worker thread to write a checkpoint and blocks until it
  /// lands (or `timeout` expires). Thread-safe.
  [[nodiscard]] Status checkpoint_now(std::chrono::milliseconds timeout);

  /// Blocks until the published epoch reaches `epoch` (true) or the
  /// timeout expires (false).
  [[nodiscard]] bool wait_for_epoch(std::uint64_t epoch,
                                    std::chrono::milliseconds timeout) const;

 private:
  void run();
  /// Consumes the journal queue, appending each batch to the WAL.
  /// Runs on journal_thread_ while a store is configured.
  void journal_run();
  /// Blocks until every handed-off batch is on the WAL (and synced, per
  /// the fsync policy). Called before an epoch publishes or a
  /// checkpoint snapshots the corpus.
  void journal_barrier();
  /// Validates and applies drained events to the delta state, then
  /// hands the accepted subset to the journal thread. Worker thread
  /// only.
  void apply(std::span<const IngestEvent> events);
  /// Validates and merges one event (shared by live apply and WAL
  /// replay). Returns false for invalid events.
  bool merge_event(const IngestEvent& event);
  /// Opens the store, adopts its recovered checkpoint + WAL tail, and
  /// resumes the epoch counter. Called from start().
  [[nodiscard]] Status recover_from_store();
  /// Re-indexes `live_` from the flat corpus vectors through the same
  /// DatasetBuilder merge path epochs use, and empties the delta
  /// buffers. Used when the flat corpus was replaced wholesale
  /// (checkpoint adoption + WAL replay).
  [[nodiscard]] Status rebuild_live_from_flat();
  /// Snapshots the live corpus into the store as a checkpoint. Worker
  /// thread only.
  void write_checkpoint();
  /// Rebuilds derived state and publishes the next epoch. Worker thread
  /// only (also called once from start() before the thread exists).
  Status rebuild_and_publish();
  [[nodiscard]] data::VenueId resolve_venue(data::CategoryId category,
                                            const geo::LatLon& position);

  const data::Taxonomy& taxonomy_;
  IngestPipelineConfig pipeline_;
  IngestWorkerConfig config_;
  IngestQueue queue_;
  SnapshotHub hub_;

  // Live corpus, owned by the worker thread after start(). The flat
  // venue/check-in vectors keep the original insertion order — the
  // order checkpoint images serialize and venue-id resolution depends
  // on. `live_` is the same corpus in indexed (sharded) form,
  // maintained incrementally: each epoch applies `delta_venues_` +
  // `delta_checkins_` through data::DatasetBuilder's incremental path
  // instead of re-feeding the whole corpus.
  //
  // `pool_` interns venue names at this boundary: it starts as the base
  // corpus's pool (shared — base NameIds stay valid) and every venue a
  // live event registers interns its generated name here. The pool is
  // append-only, so ids never move across epochs; checkpoint adoption
  // replaces it with one rebuilt from the checkpoint's names table.
  data::StringPoolPtr pool_;
  std::vector<data::Venue> venues_;
  std::vector<data::CheckIn> checkins_;
  data::Dataset live_;
  std::vector<data::Venue> delta_venues_;      // registered since last epoch
  std::vector<data::CheckIn> delta_checkins_;  // merged since last epoch
  patterns::MobilityTable mobility_;           // per-user shared entries
  std::unordered_map<std::uint64_t, data::VenueId> venue_index_;
  std::unordered_set<data::UserId> pending_users_;  // changed since last epoch
  std::unordered_set<data::UserId> touched_users_;  // ever touched by deltas
  std::uint64_t epoch_ = 0;
  std::size_t base_checkin_count_ = 0;

  // Derived state carried across epochs so unchanged parts are reused:
  // the grid is rebuilt only when the corpus bounds grow, and the crowd
  // model is updated incrementally (full rebuild on grid change or on
  // the crowd_full_rebuild_epochs backstop cadence).
  std::optional<geo::SpatialGrid> grid_;
  geo::BoundingBox grid_bounds_;
  std::optional<crowd::CrowdModel> crowd_;
  std::uint64_t crowd_epochs_since_full_ = 0;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Telemetry: the crowdweb_ingest_* families are the worker's only
  // accounting — IngestStats reads them back. `own_metrics_` backs
  // workers constructed without an external registry.
  void init_metrics();
  std::unique_ptr<telemetry::Registry> own_metrics_;
  telemetry::Registry* metrics_ = nullptr;
  telemetry::Counter* submitted_ = nullptr;
  telemetry::Counter* accepted_ = nullptr;
  telemetry::Counter* invalid_ = nullptr;
  telemetry::Counter* epochs_published_ = nullptr;
  telemetry::Histogram* rebuild_seconds_ = nullptr;
  telemetry::Histogram* stage_merge_seconds_ = nullptr;
  telemetry::Histogram* stage_mine_seconds_ = nullptr;
  telemetry::Histogram* stage_grid_seconds_ = nullptr;
  telemetry::Histogram* stage_crowd_seconds_ = nullptr;
  telemetry::Gauge* last_rebuild_seconds_ = nullptr;
  // Delta-pipeline accounting (crowdweb_ingest_delta_*): how much of
  // each epoch was actually recomputed vs shared with the previous one.
  telemetry::Counter* delta_events_ = nullptr;
  telemetry::Counter* delta_users_ = nullptr;
  telemetry::Counter* delta_shards_reused_ = nullptr;
  telemetry::Counter* delta_shards_rebuilt_ = nullptr;
  telemetry::Counter* delta_grid_reused_ = nullptr;
  telemetry::Counter* delta_crowd_full_rebuilds_ = nullptr;
  telemetry::Gauge* delta_last_events_ = nullptr;
  // Mining accounting (crowdweb_mining_*): what the per-user re-mines of
  // each epoch emitted (the miner's own output), reconstructed by
  // closed-set expansion, pruned, and — the one worth alerting on —
  // truncated at the max_patterns cap.
  telemetry::Counter* mining_emitted_ = nullptr;
  telemetry::Counter* mining_expanded_ = nullptr;
  telemetry::Counter* mining_pruned_ = nullptr;
  telemetry::Counter* mining_truncated_ = nullptr;
  std::vector<std::string> callback_gauge_names_;  ///< removed on destruction

  std::atomic<std::uint64_t> snapshot_live_{0};
  std::atomic<data::UserId> next_guest_id_{3'000'000'000u};

  // Durable storage. Declared after own_metrics_: the store's
  // destructor unhooks its scrape gauges from the registry, so it must
  // die first. Set once in start(), before the thread exists.
  std::unique_ptr<store::DurableStore> store_;
  std::atomic<bool> checkpoint_requested_{false};

  // Journal pipeline: apply() merges a batch and hands it to this
  // thread, which encodes + writes (+ fsyncs) it off the merge path;
  // rebuild_and_publish() and write_checkpoint() barrier on
  // journal_pending_ so nothing reaches readers or a checkpoint before
  // it is journaled. Growth is bounded by one rebuild interval of
  // accepted events — every publication drains the queue.
  struct JournalTask {
    std::uint64_t epoch = 0;
    std::vector<IngestEvent> events;
  };
  std::thread journal_thread_;
  std::mutex journal_mutex_;
  std::condition_variable journal_cv_;          // new work or stop
  std::condition_variable journal_drained_cv_;  // journal_pending_ hit 0
  std::deque<JournalTask> journal_queue_;       // guarded by journal_mutex_
  std::size_t journal_pending_ = 0;             // queued + in-flight batches
  bool journal_stop_ = false;                   // guarded by journal_mutex_

  mutable std::mutex epoch_mutex_;
  mutable std::condition_variable epoch_cv_;
  std::uint64_t published_epoch_ = 0;   // guarded by epoch_mutex_
  std::uint64_t checkpoints_done_ = 0;  // guarded by epoch_mutex_
};

}  // namespace crowdweb::ingest

#include "ingest/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "telemetry/timer.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::ingest {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Packs (category, position quantized to ~10 m) into one key so live
/// events land on an existing venue when one sits at that spot.
std::uint64_t venue_key(data::CategoryId category, const geo::LatLon& position) {
  const auto lat = static_cast<std::uint64_t>(std::llround((position.lat + 90.0) * 1e4));
  const auto lon = static_cast<std::uint64_t>(std::llround((position.lon + 180.0) * 1e4));
  return (static_cast<std::uint64_t>(category) << 43) | (lat << 22) | lon;
}

}  // namespace

IngestWorker::IngestWorker(const data::Dataset& base,
                           std::span<const patterns::UserMobility> base_mobility,
                           const data::Taxonomy& taxonomy, IngestPipelineConfig pipeline,
                           IngestWorkerConfig config)
    : taxonomy_(taxonomy),
      pipeline_(pipeline),
      config_(config),
      queue_(config.queue_capacity) {
  init_metrics();
  pool_ = base.name_pool() != nullptr ? base.name_pool()
                                      : std::make_shared<data::StringPool>();
  venues_.assign(base.venues().begin(), base.venues().end());
  checkins_.assign(base.checkins().begin(), base.checkins().end());
  live_ = base;  // shares the base's shards and venue table
  if (base.name_pool() == nullptr) {
    // A default-constructed base has no pool; rebuild the (empty) live
    // dataset around the worker's so every epoch interns into one pool.
    live_ = data::DatasetBuilder(pool_).build();
  }
  mobility_ = patterns::MobilityTable::from_entries(
      {base_mobility.begin(), base_mobility.end()});
  base_checkin_count_ = checkins_.size();
  venue_index_.reserve(venues_.size());
  for (const data::Venue& venue : venues_)
    venue_index_.emplace(venue_key(venue.category, venue.position), venue.id);
}

void IngestWorker::init_metrics() {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<telemetry::Registry>();
    metrics_ = own_metrics_.get();
  }
  submitted_ = &metrics_->counter("crowdweb_ingest_submitted_total",
                                  "Events offered through submit().");
  accepted_ = &metrics_->counter("crowdweb_ingest_accepted_total",
                                 "Events validated and merged into the live corpus.");
  invalid_ = &metrics_->counter("crowdweb_ingest_invalid_total",
                                "Events that failed validation.");
  epochs_published_ =
      &metrics_->counter("crowdweb_ingest_epochs_published_total", "Epochs published.");
  queue_.attach_rejected_counter(
      &metrics_->counter("crowdweb_ingest_rejected_total",
                         "Events refused by the full (or closed) ingest queue."));
  const std::vector<double> buckets = config_.rebuild_buckets.empty()
                                          ? telemetry::default_duration_buckets()
                                          : config_.rebuild_buckets;
  rebuild_seconds_ = &metrics_->histogram(
      "crowdweb_ingest_epoch_rebuild_duration_seconds",
      "End-to-end wall time to rebuild and publish one epoch.", buckets);
  telemetry::HistogramFamily& stages = metrics_->histogram_family(
      "crowdweb_ingest_rebuild_stage_duration_seconds",
      "Wall time of one epoch-rebuild stage: merge (dataset rebuild), mine "
      "(incremental per-user re-mining), grid, crowd (model aggregation).",
      {"stage"}, buckets);
  stage_merge_seconds_ = &stages.with_labels({"merge"});
  stage_mine_seconds_ = &stages.with_labels({"mine"});
  stage_grid_seconds_ = &stages.with_labels({"grid"});
  stage_crowd_seconds_ = &stages.with_labels({"crowd"});
  last_rebuild_seconds_ = &metrics_->gauge("crowdweb_ingest_last_rebuild_seconds",
                                           "Wall time of the most recent epoch rebuild.");
  delta_events_ = &metrics_->counter("crowdweb_ingest_delta_events_total",
                                     "Check-ins applied through the delta merge path.");
  delta_users_ = &metrics_->counter("crowdweb_ingest_delta_users_total",
                                    "Per-user delta re-minings across all epochs.");
  delta_shards_reused_ = &metrics_->counter(
      "crowdweb_ingest_delta_shards_reused_total",
      "Per-user dataset shards shared with the previous epoch (not copied).");
  delta_shards_rebuilt_ = &metrics_->counter(
      "crowdweb_ingest_delta_shards_rebuilt_total",
      "Per-user dataset shards rebuilt because the epoch's delta touched them.");
  delta_grid_reused_ = &metrics_->counter(
      "crowdweb_ingest_delta_grid_reused_total",
      "Epochs that reused the previous spatial grid (corpus bounds unchanged).");
  delta_crowd_full_rebuilds_ = &metrics_->counter(
      "crowdweb_ingest_delta_crowd_full_rebuilds_total",
      "Crowd-model full rebuilds (first epoch, grid growth, or the periodic "
      "backstop) instead of incremental updates.");
  delta_last_events_ =
      &metrics_->gauge("crowdweb_ingest_delta_last_events",
                       "Check-ins merged by the most recent epoch's delta.");
  mining_emitted_ = &metrics_->counter(
      "crowdweb_mining_patterns_emitted_total",
      "Patterns the miner itself returned in per-user re-mines across all epochs "
      "(for closed miners this is the closed set, before any expansion).");
  mining_expanded_ = &metrics_->counter(
      "crowdweb_mining_patterns_expanded_total",
      "Frequent patterns reconstructed from closed sets by expansion across all "
      "epochs — materialized into the tables when expand_closed is on, streamed "
      "through the placement-index build when it is off. 0 for full miners.");
  mining_pruned_ = &metrics_->counter(
      "crowdweb_mining_pruned_total",
      "Search subtrees/candidates the miner cut without counting (BackScan, "
      "equivalent projections, apriori).");
  mining_truncated_ = &metrics_->counter(
      "crowdweb_mining_truncated_total",
      "Per-user re-mines whose pattern set was cut short by the max_patterns cap "
      "(the published tables are incomplete for those users).");
  // Scrape-time gauges: sampled when /metrics renders, so readers see
  // live queue state without the worker pushing updates.
  metrics_->gauge_callback("crowdweb_ingest_queue_depth", "Events waiting in the queue.",
                           [this] { return static_cast<double>(queue_.size()); });
  metrics_->gauge_callback("crowdweb_ingest_queue_capacity", "Bounded queue capacity.",
                           [this] { return static_cast<double>(queue_.capacity()); });
  metrics_->gauge_callback("crowdweb_ingest_epoch", "Epoch visible in the snapshot hub.",
                           [this] { return static_cast<double>(hub_.epoch()); });
  metrics_->gauge_callback(
      "crowdweb_ingest_live_checkins", "Accepted deltas in the published epoch.", [this] {
        return static_cast<double>(snapshot_live_.load(std::memory_order_relaxed));
      });
  callback_gauge_names_ = {"crowdweb_ingest_queue_depth", "crowdweb_ingest_queue_capacity",
                           "crowdweb_ingest_epoch", "crowdweb_ingest_live_checkins"};
}

IngestWorker::~IngestWorker() {
  stop();
  // The scrape callbacks capture `this`; unhook them before members die
  // so a shared registry can never sample a destroyed worker.
  for (const std::string& name : callback_gauge_names_) metrics_->remove(name);
  queue_.attach_rejected_counter(nullptr);
}

Status IngestWorker::start() {
  if (running_.load(std::memory_order_acquire))
    return failed_precondition("ingest worker already running");
  if (queue_.closed()) return failed_precondition("ingest worker cannot restart");
  if (!config_.store.dir.empty() && store_ == nullptr) {
    const Status recovered = recover_from_store();
    if (!recovered.is_ok()) return recovered;
  }
  // First epoch: the base corpus — or, after recovery, the checkpoint
  // plus the replayed WAL tail — so readers always have a snapshot.
  const Status status = rebuild_and_publish();
  if (!status.is_ok()) return status;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  if (store_ != nullptr) {
    journal_stop_ = false;
    journal_thread_ = std::thread([this] { journal_run(); });
  }
  thread_ = std::thread([this] { run(); });
  log_info("ingest worker started: queue capacity {}, rebuild interval {} ms",
           queue_.capacity(), config_.rebuild_interval.count());
  return Status::ok();
}

void IngestWorker::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  queue_.close();
  thread_.join();
}

bool IngestWorker::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

SubmitResult IngestWorker::submit(std::span<const IngestEvent> events) {
  submitted_->increment(events.size());
  SubmitResult result;
  result.accepted = queue_.push_batch(events);
  result.rejected = events.size() - result.accepted;
  return result;
}

void IngestWorker::note_invalid(std::uint64_t count) noexcept {
  invalid_->increment(count);
}

data::UserId IngestWorker::allocate_guest_id() noexcept {
  return next_guest_id_.fetch_add(1, std::memory_order_relaxed);
}

Status IngestWorker::recover_from_store() {
  store::StoreConfig store_config = config_.store;
  if (store_config.metrics == nullptr) store_config.metrics = metrics_;
  Result<std::unique_ptr<store::DurableStore>> opened =
      store::DurableStore::open(std::move(store_config));
  if (!opened) return opened.status();
  store_ = std::move(*opened);

  store::RecoveredState recovered = store_->take_recovered();
  if (recovered.checkpoint.has_value()) {
    // The checkpoint replaces the base corpus copies wholesale: it IS
    // the base corpus plus every delta merged before it was written,
    // in the original insertion order (which venue resolution depends
    // on for deterministic ids).
    store::Checkpoint& checkpoint = *recovered.checkpoint;
    // Rebuild the interning pool from the checkpoint's names table:
    // interning in id order into a fresh pool reproduces every NameId
    // exactly, so the venue rows' name ids resolve unchanged.
    pool_ = std::make_shared<data::StringPool>();
    for (const std::string& name : checkpoint.names) pool_->intern(name);
    venues_ = std::move(checkpoint.venues);
    checkins_ = std::move(checkpoint.checkins);
    base_checkin_count_ = checkpoint.base_checkin_count;
    touched_users_.clear();
    touched_users_.insert(checkpoint.touched_users.begin(),
                          checkpoint.touched_users.end());
    data::UserId next_guest = next_guest_id_.load(std::memory_order_relaxed);
    next_guest_id_.store(std::max(next_guest, checkpoint.next_guest_id),
                         std::memory_order_relaxed);
    venue_index_.clear();
    venue_index_.reserve(venues_.size());
    for (const data::Venue& venue : venues_)
      venue_index_.emplace(venue_key(venue.category, venue.position), venue.id);
  }
  // Touched users' mobility differs from the base corpus mobility the
  // constructor copied, so every one of them re-mines in the first
  // rebuild (later epochs go back to re-mining only fresh deltas).
  pending_users_ = touched_users_;

  // Replay the WAL tail through the same validate + merge path live
  // events take. Counters stay untouched — these events were counted
  // when first accepted; crowdweb_store_recovery_* records the replay.
  std::uint64_t replayed_events = 0;
  for (const store::WalRecord& record : recovered.records) {
    for (const IngestEvent& event : record.events) {
      if (merge_event(event)) ++replayed_events;
    }
  }
  // The flat corpus was replaced wholesale (checkpoint) and extended
  // (WAL replay); re-index the live dataset from it through the same
  // builder the epochs use, so there is exactly one merge path.
  const Status reindexed = rebuild_live_from_flat();
  if (!reindexed.is_ok()) return reindexed;

  // Resume the epoch counter past everything disk has seen, so the
  // first published epoch after restart is strictly newer than any a
  // reader saw before the crash.
  epoch_ = std::max(epoch_, recovered.max_epoch);
  if (recovered.checkpoint.has_value() || !recovered.records.empty() ||
      recovered.truncated_bytes > 0) {
    log_info(
        "store recovery: checkpoint {}, {} WAL record(s) / {} event(s) replayed, "
        "{} torn byte(s) truncated, resuming at epoch {}",
        recovered.checkpoint ? recovered.checkpoint->seq : 0,
        recovered.records.size(), replayed_events, recovered.truncated_bytes, epoch_);
  }
  return Status::ok();
}

Status IngestWorker::checkpoint_now(std::chrono::milliseconds timeout) {
  if (store_ == nullptr)
    return failed_precondition("durable store not configured (no store directory)");
  if (!running_.load(std::memory_order_acquire))
    return failed_precondition("ingest worker not running");
  std::unique_lock<std::mutex> lock(epoch_mutex_);
  const std::uint64_t target = checkpoints_done_ + 1;
  checkpoint_requested_.store(true, std::memory_order_release);
  if (!epoch_cv_.wait_for(lock, timeout,
                          [this, target] { return checkpoints_done_ >= target; })) {
    return unavailable("checkpoint did not complete in time (see server log)");
  }
  return Status::ok();
}

IngestStats IngestWorker::stats() const {
  IngestStats stats;
  stats.submitted = submitted_->value();
  stats.accepted = accepted_->value();
  stats.rejected = queue_.rejected();
  stats.invalid = invalid_->value();
  stats.epochs_published = epochs_published_->value();
  stats.current_epoch = hub_.epoch();
  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.live_checkins = snapshot_live_.load(std::memory_order_relaxed);
  stats.last_rebuild_ms = last_rebuild_seconds_->value() * 1e3;
  stats.total_rebuild_ms = rebuild_seconds_->sum() * 1e3;
  return stats;
}

bool IngestWorker::wait_for_epoch(std::uint64_t epoch,
                                  std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(epoch_mutex_);
  return epoch_cv_.wait_for(lock, timeout,
                            [this, epoch] { return published_epoch_ >= epoch; });
}

void IngestWorker::run() {
  std::vector<IngestEvent> batch;
  auto last_publish = Clock::now();
  while (true) {
    batch.clear();
    queue_.drain(batch, config_.drain_batch, config_.rebuild_interval);
    apply(batch);
    if (store_ != nullptr) {
      store_->maybe_sync();
      const std::uint64_t auto_bytes = config_.store.checkpoint_wal_bytes;
      if (checkpoint_requested_.exchange(false, std::memory_order_acq_rel) ||
          (auto_bytes > 0 && store_->wal_bytes_since_checkpoint() >= auto_bytes)) {
        write_checkpoint();
      }
    }
    const bool stopping =
        stop_requested_.load(std::memory_order_acquire) && queue_.size() == 0;
    if (!pending_users_.empty() &&
        (stopping || Clock::now() - last_publish >= config_.rebuild_interval)) {
      const Status status = rebuild_and_publish();
      if (!status.is_ok())
        log_error("epoch rebuild failed: {}", status.to_string());
      last_publish = Clock::now();
    }
    if (stopping) break;
  }
  if (journal_thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(journal_mutex_);
      journal_stop_ = true;
    }
    journal_cv_.notify_all();
    journal_thread_.join();  // drains the backlog before exiting
  }
  if (store_ != nullptr) {
    // Clean shutdown: everything accepted is on disk regardless of the
    // fsync policy.
    const Status status = store_->sync();
    if (!status.is_ok()) log_error("final WAL sync failed: {}", status.to_string());
  }
  running_.store(false, std::memory_order_release);
}

void IngestWorker::journal_run() {
  std::unique_lock<std::mutex> lock(journal_mutex_);
  while (true) {
    journal_cv_.wait(lock, [this] { return journal_stop_ || !journal_queue_.empty(); });
    if (journal_queue_.empty()) {
      if (journal_stop_) return;
      continue;
    }
    JournalTask task = std::move(journal_queue_.front());
    journal_queue_.pop_front();
    lock.unlock();
    // A failed append is logged and counted
    // (crowdweb_store_append_failures_total) but does not stop serving:
    // the events stay live in memory, they are just not durable.
    const Status status = store_->append(task.epoch, task.events);
    if (!status.is_ok()) log_error("WAL append failed: {}", status.to_string());
    lock.lock();
    if (--journal_pending_ == 0) journal_drained_cv_.notify_all();
  }
}

void IngestWorker::journal_barrier() {
  if (store_ == nullptr) return;
  std::unique_lock<std::mutex> lock(journal_mutex_);
  journal_drained_cv_.wait(lock, [this] { return journal_pending_ == 0; });
}

Status IngestWorker::rebuild_live_from_flat() {
  // From-scratch (no base dataset), but against the worker's pool: the
  // flat venue rows carry NameIds interned there.
  data::DatasetBuilder builder(pool_);
  for (const data::Venue& venue : venues_) {
    const Status status = builder.add_venue(venue);
    if (!status.is_ok()) return status;
  }
  for (const data::CheckIn& checkin : checkins_) {
    const Status status = builder.add_checkin(checkin);
    if (!status.is_ok()) return status;
  }
  live_ = builder.build();
  delta_venues_.clear();
  delta_checkins_.clear();
  return Status::ok();
}

bool IngestWorker::merge_event(const IngestEvent& event) {
  if (event.category >= taxonomy_.size() || !geo::is_valid(event.position) ||
      event.timestamp <= 0) {
    return false;
  }
  const data::VenueId venue = resolve_venue(event.category, event.position);
  const data::CheckIn checkin{event.user, venue, event.category, event.position,
                              event.timestamp};
  checkins_.push_back(checkin);
  delta_checkins_.push_back(checkin);
  pending_users_.insert(event.user);
  touched_users_.insert(event.user);
  return true;
}

void IngestWorker::apply(std::span<const IngestEvent> events) {
  std::uint64_t invalid = 0;
  std::vector<IngestEvent> accepted;
  if (store_ != nullptr) accepted.reserve(events.size());
  for (const IngestEvent& event : events) {
    if (!merge_event(event)) {
      ++invalid;
      continue;
    }
    if (store_ != nullptr) accepted.push_back(event);
  }
  if (invalid > 0) invalid_->increment(invalid);
  const std::uint64_t accepted_count =
      store_ != nullptr ? accepted.size() : events.size() - invalid;
  if (accepted_count > 0) accepted_->increment(accepted_count);
  if (store_ != nullptr && !accepted.empty()) {
    // Hand the batch to the journal thread: the WAL write overlaps the
    // next drain/merge, and the barrier in rebuild_and_publish() keeps
    // the invariant that events are journaled before their epoch is
    // visible to readers.
    {
      const std::lock_guard<std::mutex> lock(journal_mutex_);
      journal_queue_.push_back({epoch_, std::move(accepted)});
      ++journal_pending_;
    }
    journal_cv_.notify_one();
  }
}

void IngestWorker::write_checkpoint() {
  // The image snapshots checkins_, so every batch merged into it must
  // be on the WAL first — otherwise its queued records would land
  // *after* the checkpoint and replay as duplicates on recovery.
  journal_barrier();
  store::Checkpoint image;
  image.epoch = epoch_;
  image.next_guest_id = next_guest_id_.load(std::memory_order_relaxed);
  image.base_checkin_count = base_checkin_count_;
  const data::NamesPtr names = pool_->snapshot();
  image.names.reserve(names->size());
  for (const std::string_view name : names->names()) image.names.emplace_back(name);
  image.venues = venues_;
  image.checkins = checkins_;
  image.touched_users.assign(touched_users_.begin(), touched_users_.end());
  const Status status = store_->write_checkpoint(std::move(image));
  if (!status.is_ok()) {
    log_error("checkpoint failed: {}", status.to_string());
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(epoch_mutex_);
    ++checkpoints_done_;
  }
  epoch_cv_.notify_all();
}

data::VenueId IngestWorker::resolve_venue(data::CategoryId category,
                                          const geo::LatLon& position) {
  const std::uint64_t key = venue_key(category, position);
  const auto it = venue_index_.find(key);
  if (it != venue_index_.end()) return it->second;
  data::Venue venue;
  venue.id = static_cast<data::VenueId>(venues_.size());
  venue.name = pool_->intern(crowdweb::format("live-{}", venue.id));
  venue.category = category;
  venue.position = position;
  venue_index_.emplace(key, venue.id);
  venues_.push_back(venue);
  delta_venues_.push_back(std::move(venue));
  return venues_.back().id;
}

Status IngestWorker::rebuild_and_publish() {
  const auto start = Clock::now();
  telemetry::ScopedTimer rebuild_timer(rebuild_seconds_);
  const std::size_t delta_events = delta_checkins_.size();

  // Stage 1: merge — apply the delta to the live dataset through the
  // incremental builder: only the shards of touched users are rebuilt,
  // everything else is shared with the previous epoch by pointer.
  telemetry::ScopedTimer merge_timer(stage_merge_seconds_);
  data::DatasetBuilder builder(live_);
  for (const data::Venue& venue : delta_venues_) {
    const Status status = builder.add_venue(venue);
    if (!status.is_ok()) return status;
  }
  for (const data::CheckIn& checkin : delta_checkins_) {
    const Status status = builder.add_checkin(checkin);
    if (!status.is_ok()) return status;
  }
  live_ = builder.build();
  delta_venues_.clear();
  delta_checkins_.clear();
  const data::DatasetBuilder::BuildStats& merge_stats = builder.stats();
  merge_timer.stop();

  // Stage 2: mine — phase 2 for the touched users only, sharded across
  // the mining pool; the result batch-merges into the shared mobility
  // table (untouched entries stay shared with the previous epoch).
  telemetry::ScopedTimer mine_timer(stage_mine_seconds_);
  patterns::MobilityOptions mobility_options;
  mobility_options.sequences = pipeline_.sequences;
  mobility_options.mining = pipeline_.mining;
  std::vector<data::UserId> changed(pending_users_.begin(), pending_users_.end());
  std::sort(changed.begin(), changed.end());
  if (!changed.empty()) {
    std::vector<patterns::UserMobility> updates = patterns::mine_users_mobility_parallel(
        live_, changed, taxonomy_, mobility_options, pipeline_.mining_threads);
    mining::MiningStats epoch_mining;
    std::size_t truncated_users = 0;
    for (const patterns::UserMobility& entry : updates) {
      epoch_mining.merge(entry.mining_stats);
      if (entry.mining_stats.truncated) ++truncated_users;
    }
    mining_emitted_->increment(epoch_mining.emitted);
    mining_expanded_->increment(epoch_mining.expanded);
    mining_pruned_->increment(epoch_mining.pruned);
    if (truncated_users > 0) {
      mining_truncated_->increment(truncated_users);
      // Once per epoch, not per user: the cap repeats until raised.
      log_warn(
          "epoch {}: miner '{}' truncated {} of {} re-mined users at max_patterns={}; "
          "their published tables are incomplete",
          epoch_ + 1, pipeline_.mining.algorithm, truncated_users, updates.size(),
          pipeline_.mining.max_patterns);
    }
    mobility_ = mobility_.with_updates(std::move(updates));
  }
  mine_timer.stop();

  // Stage 3: grid — reuse the previous grid unless the delta extended
  // the corpus bounds (cells are derived from the bounding box, so an
  // unchanged box means an identical grid).
  telemetry::ScopedTimer grid_timer(stage_grid_seconds_);
  bool grid_rebuilt = false;
  const geo::BoundingBox grid_source =
      pipeline_.fixed_grid_bounds.value_or(live_.bounds());
  if (!grid_.has_value() ||
      (!pipeline_.fixed_grid_bounds && live_.bounds() != grid_bounds_)) {
    auto grid = geo::SpatialGrid::create(grid_source.inflated(0.002),
                                         pipeline_.grid_cell_meters);
    if (!grid) return grid.status();
    grid_ = std::move(*grid);
    grid_bounds_ = grid_source;
    grid_rebuilt = true;
  } else {
    delta_grid_reused_->increment();
  }
  grid_timer.stop();

  // Stage 4: crowd — retract + replace the changed users' placements in
  // the previous model, sharing every unaffected time window. A grid
  // change invalidates every placement's cell, and the periodic
  // backstop guards the incremental path, so both force a full build.
  telemetry::ScopedTimer crowd_timer(stage_crowd_seconds_);
  const bool full_crowd =
      !crowd_.has_value() || grid_rebuilt ||
      (pipeline_.crowd_full_rebuild_epochs > 0 &&
       crowd_epochs_since_full_ + 1 >= pipeline_.crowd_full_rebuild_epochs);
  if (full_crowd) {
    auto crowd = crowd::CrowdModel::build(live_, mobility_, *grid_, pipeline_.crowd,
                                          pipeline_.mining_threads);
    if (!crowd) return crowd.status();
    crowd_ = std::move(*crowd);
    crowd_epochs_since_full_ = 0;
    delta_crowd_full_rebuilds_->increment();
  } else {
    auto crowd = crowd::CrowdModel::update(*crowd_, live_, mobility_, changed);
    if (!crowd) return crowd.status();
    crowd_ = std::move(*crowd);
    ++crowd_epochs_since_full_;
  }
  crowd_timer.stop();

  // Delta accounting: how much of this epoch was recomputed vs shared.
  delta_events_->increment(delta_events);
  delta_users_->increment(changed.size());
  delta_shards_reused_->increment(merge_stats.shards_reused);
  delta_shards_rebuilt_->increment(merge_stats.shards_rebuilt);
  delta_last_events_->set(static_cast<double>(delta_events));

  // Durability barrier: every batch merged into this epoch must be
  // journaled (and synced, per the fsync policy) before a reader can
  // see it. Waiting here, after the rebuild stages, means the WAL
  // writes overlapped all of the work above.
  journal_barrier();

  const double elapsed_ms = ms_since(start);
  ++epoch_;
  // The snapshot shares the live state rather than copying it: the
  // dataset aliases the per-user shards and venue table, the mobility
  // table aliases the per-user entries, and the crowd model aliases
  // the per-window placements — publishing costs O(users), not
  // O(records).
  auto snapshot = std::make_shared<const PlatformSnapshot>(PlatformSnapshot{
      epoch_, checkins_.size() - base_checkin_count_, touched_users_.size(),
      elapsed_ms, live_, mobility_, *grid_, *crowd_});
  snapshot_live_.store(snapshot->live_checkins, std::memory_order_relaxed);
  hub_.publish(std::move(snapshot));
  pending_users_.clear();
  epochs_published_->increment();
  last_rebuild_seconds_->set(rebuild_timer.stop());
  {
    const std::lock_guard<std::mutex> lock(epoch_mutex_);
    published_epoch_ = epoch_;
  }
  epoch_cv_.notify_all();
  return Status::ok();
}

}  // namespace crowdweb::ingest

#include "ingest/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "telemetry/timer.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::ingest {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Packs (category, position quantized to ~10 m) into one key so live
/// events land on an existing venue when one sits at that spot.
std::uint64_t venue_key(data::CategoryId category, const geo::LatLon& position) {
  const auto lat = static_cast<std::uint64_t>(std::llround((position.lat + 90.0) * 1e4));
  const auto lon = static_cast<std::uint64_t>(std::llround((position.lon + 180.0) * 1e4));
  return (static_cast<std::uint64_t>(category) << 43) | (lat << 22) | lon;
}

}  // namespace

IngestWorker::IngestWorker(const data::Dataset& base,
                           std::span<const patterns::UserMobility> base_mobility,
                           const data::Taxonomy& taxonomy, IngestPipelineConfig pipeline,
                           IngestWorkerConfig config)
    : taxonomy_(taxonomy),
      pipeline_(pipeline),
      config_(config),
      queue_(config.queue_capacity) {
  init_metrics();
  venues_.assign(base.venues().begin(), base.venues().end());
  checkins_.assign(base.checkins().begin(), base.checkins().end());
  mobility_.assign(base_mobility.begin(), base_mobility.end());
  base_checkin_count_ = checkins_.size();
  venue_index_.reserve(venues_.size());
  for (const data::Venue& venue : venues_)
    venue_index_.emplace(venue_key(venue.category, venue.position), venue.id);
}

void IngestWorker::init_metrics() {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<telemetry::Registry>();
    metrics_ = own_metrics_.get();
  }
  submitted_ = &metrics_->counter("crowdweb_ingest_submitted_total",
                                  "Events offered through submit().");
  accepted_ = &metrics_->counter("crowdweb_ingest_accepted_total",
                                 "Events validated and merged into the live corpus.");
  invalid_ = &metrics_->counter("crowdweb_ingest_invalid_total",
                                "Events that failed validation.");
  epochs_published_ =
      &metrics_->counter("crowdweb_ingest_epochs_published_total", "Epochs published.");
  queue_.attach_rejected_counter(
      &metrics_->counter("crowdweb_ingest_rejected_total",
                         "Events refused by the full (or closed) ingest queue."));
  const std::vector<double> buckets = config_.rebuild_buckets.empty()
                                          ? telemetry::default_duration_buckets()
                                          : config_.rebuild_buckets;
  rebuild_seconds_ = &metrics_->histogram(
      "crowdweb_ingest_epoch_rebuild_duration_seconds",
      "End-to-end wall time to rebuild and publish one epoch.", buckets);
  telemetry::HistogramFamily& stages = metrics_->histogram_family(
      "crowdweb_ingest_rebuild_stage_duration_seconds",
      "Wall time of one epoch-rebuild stage: merge (dataset rebuild), mine "
      "(incremental per-user re-mining), grid, crowd (model aggregation).",
      {"stage"}, buckets);
  stage_merge_seconds_ = &stages.with_labels({"merge"});
  stage_mine_seconds_ = &stages.with_labels({"mine"});
  stage_grid_seconds_ = &stages.with_labels({"grid"});
  stage_crowd_seconds_ = &stages.with_labels({"crowd"});
  last_rebuild_seconds_ = &metrics_->gauge("crowdweb_ingest_last_rebuild_seconds",
                                           "Wall time of the most recent epoch rebuild.");
  // Scrape-time gauges: sampled when /metrics renders, so readers see
  // live queue state without the worker pushing updates.
  metrics_->gauge_callback("crowdweb_ingest_queue_depth", "Events waiting in the queue.",
                           [this] { return static_cast<double>(queue_.size()); });
  metrics_->gauge_callback("crowdweb_ingest_queue_capacity", "Bounded queue capacity.",
                           [this] { return static_cast<double>(queue_.capacity()); });
  metrics_->gauge_callback("crowdweb_ingest_epoch", "Epoch visible in the snapshot hub.",
                           [this] { return static_cast<double>(hub_.epoch()); });
  metrics_->gauge_callback(
      "crowdweb_ingest_live_checkins", "Accepted deltas in the published epoch.", [this] {
        return static_cast<double>(snapshot_live_.load(std::memory_order_relaxed));
      });
  callback_gauge_names_ = {"crowdweb_ingest_queue_depth", "crowdweb_ingest_queue_capacity",
                           "crowdweb_ingest_epoch", "crowdweb_ingest_live_checkins"};
}

IngestWorker::~IngestWorker() {
  stop();
  // The scrape callbacks capture `this`; unhook them before members die
  // so a shared registry can never sample a destroyed worker.
  for (const std::string& name : callback_gauge_names_) metrics_->remove(name);
  queue_.attach_rejected_counter(nullptr);
}

Status IngestWorker::start() {
  if (running_.load(std::memory_order_acquire))
    return failed_precondition("ingest worker already running");
  if (queue_.closed()) return failed_precondition("ingest worker cannot restart");
  // Epoch 1: the base corpus, so readers always have a snapshot.
  const Status status = rebuild_and_publish();
  if (!status.is_ok()) return status;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  log_info("ingest worker started: queue capacity {}, rebuild interval {} ms",
           queue_.capacity(), config_.rebuild_interval.count());
  return Status::ok();
}

void IngestWorker::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  queue_.close();
  thread_.join();
}

bool IngestWorker::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

SubmitResult IngestWorker::submit(std::span<const IngestEvent> events) {
  submitted_->increment(events.size());
  SubmitResult result;
  result.accepted = queue_.push_batch(events);
  result.rejected = events.size() - result.accepted;
  return result;
}

void IngestWorker::note_invalid(std::uint64_t count) noexcept {
  invalid_->increment(count);
}

data::UserId IngestWorker::allocate_guest_id() noexcept {
  return next_guest_id_.fetch_add(1, std::memory_order_relaxed);
}

IngestStats IngestWorker::stats() const {
  IngestStats stats;
  stats.submitted = submitted_->value();
  stats.accepted = accepted_->value();
  stats.rejected = queue_.rejected();
  stats.invalid = invalid_->value();
  stats.epochs_published = epochs_published_->value();
  stats.current_epoch = hub_.epoch();
  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.live_checkins = snapshot_live_.load(std::memory_order_relaxed);
  stats.last_rebuild_ms = last_rebuild_seconds_->value() * 1e3;
  stats.total_rebuild_ms = rebuild_seconds_->sum() * 1e3;
  return stats;
}

bool IngestWorker::wait_for_epoch(std::uint64_t epoch,
                                  std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(epoch_mutex_);
  return epoch_cv_.wait_for(lock, timeout,
                            [this, epoch] { return published_epoch_ >= epoch; });
}

void IngestWorker::run() {
  std::vector<IngestEvent> batch;
  auto last_publish = Clock::now();
  while (true) {
    batch.clear();
    queue_.drain(batch, config_.drain_batch, config_.rebuild_interval);
    apply(batch);
    const bool stopping =
        stop_requested_.load(std::memory_order_acquire) && queue_.size() == 0;
    if (!pending_users_.empty() &&
        (stopping || Clock::now() - last_publish >= config_.rebuild_interval)) {
      const Status status = rebuild_and_publish();
      if (!status.is_ok())
        log_error("epoch rebuild failed: {}", status.to_string());
      last_publish = Clock::now();
    }
    if (stopping) break;
  }
  running_.store(false, std::memory_order_release);
}

void IngestWorker::apply(std::span<const IngestEvent> events) {
  std::uint64_t invalid = 0;
  std::uint64_t accepted = 0;
  for (const IngestEvent& event : events) {
    if (event.category >= taxonomy_.size() || !geo::is_valid(event.position) ||
        event.timestamp <= 0) {
      ++invalid;
      continue;
    }
    const data::VenueId venue = resolve_venue(event.category, event.position);
    checkins_.push_back({event.user, venue, event.category, event.position,
                         event.timestamp});
    pending_users_.insert(event.user);
    touched_users_.insert(event.user);
    ++accepted;
  }
  if (invalid > 0) invalid_->increment(invalid);
  if (accepted > 0) accepted_->increment(accepted);
}

data::VenueId IngestWorker::resolve_venue(data::CategoryId category,
                                          const geo::LatLon& position) {
  const std::uint64_t key = venue_key(category, position);
  const auto it = venue_index_.find(key);
  if (it != venue_index_.end()) return it->second;
  data::Venue venue;
  venue.id = static_cast<data::VenueId>(venues_.size());
  venue.name = crowdweb::format("live-{}", venue.id);
  venue.category = category;
  venue.position = position;
  venue_index_.emplace(key, venue.id);
  venues_.push_back(std::move(venue));
  return venues_.back().id;
}

Status IngestWorker::rebuild_and_publish() {
  const auto start = Clock::now();
  telemetry::ScopedTimer rebuild_timer(rebuild_seconds_);

  // Stage 1: merge — rebuild the dataset (venue + check-in indexes) from
  // the worker's live corpus.
  telemetry::ScopedTimer merge_timer(stage_merge_seconds_);
  data::DatasetBuilder builder;
  for (const data::Venue& venue : venues_) {
    const Status status = builder.add_venue(venue);
    if (!status.is_ok()) return status;
  }
  for (const data::CheckIn& checkin : checkins_) {
    const Status status = builder.add_checkin(checkin);
    if (!status.is_ok()) return status;
  }
  data::Dataset merged = builder.build();
  merge_timer.stop();

  // Stage 2: mine — phase 2 incrementally: only users whose history
  // changed are re-mined; everyone else keeps their mobility from the
  // last epoch.
  telemetry::ScopedTimer mine_timer(stage_mine_seconds_);
  patterns::MobilityOptions mobility_options;
  mobility_options.sequences = pipeline_.sequences;
  mobility_options.mining = pipeline_.mining;
  for (const data::UserId user : pending_users_) {
    patterns::UserMobility fresh =
        patterns::mine_user_mobility(merged, user, taxonomy_, mobility_options);
    const auto it = std::lower_bound(
        mobility_.begin(), mobility_.end(), user,
        [](const patterns::UserMobility& m, data::UserId id) { return m.user < id; });
    if (it != mobility_.end() && it->user == user) {
      *it = std::move(fresh);
    } else {
      mobility_.insert(it, std::move(fresh));
    }
  }
  mine_timer.stop();

  // Stages 3 and 4: grid + crowd — phase 3 over the merged corpus. The
  // grid is re-derived because live events can extend the city's
  // bounding box.
  telemetry::ScopedTimer grid_timer(stage_grid_seconds_);
  auto grid = geo::SpatialGrid::create(merged.bounds().inflated(0.002),
                                       pipeline_.grid_cell_meters);
  if (!grid) return grid.status();
  grid_timer.stop();
  telemetry::ScopedTimer crowd_timer(stage_crowd_seconds_);
  auto crowd = crowd::CrowdModel::build(merged, mobility_, *grid, pipeline_.crowd);
  if (!crowd) return crowd.status();
  crowd_timer.stop();

  const double elapsed_ms = ms_since(start);
  ++epoch_;
  auto snapshot = std::make_shared<const PlatformSnapshot>(PlatformSnapshot{
      epoch_, checkins_.size() - base_checkin_count_, touched_users_.size(),
      elapsed_ms, std::move(merged), mobility_, *grid, std::move(crowd).value()});
  snapshot_live_.store(snapshot->live_checkins, std::memory_order_relaxed);
  hub_.publish(std::move(snapshot));
  pending_users_.clear();
  epochs_published_->increment();
  last_rebuild_seconds_->set(rebuild_timer.stop());
  {
    const std::lock_guard<std::mutex> lock(epoch_mutex_);
    published_epoch_ = epoch_;
  }
  epoch_cv_.notify_all();
  return Status::ok();
}

}  // namespace crowdweb::ingest

// Replay driver: feeds a recorded check-in stream through the ingestion
// path at a configurable event rate.
//
// The driver is sink-agnostic so the same pacing loop exercises every
// layer: `worker_sink` submits straight into an IngestWorker's queue
// (benches, tests), `http_sink` POSTs CSV batches to a running server's
// /api/ingest route (the live_monitor example), and tests can pass any
// lambda. Rejected events are reported, never silently dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "data/checkin.hpp"
#include "data/dataset.hpp"
#include "ingest/queue.hpp"
#include "ingest/worker.hpp"
#include "util/status.hpp"

namespace crowdweb::ingest {

struct ReplayOptions {
  /// Target sustained rate; <= 0 replays as fast as the sink accepts.
  double events_per_second = 1'000.0;
  /// Events delivered per sink call.
  std::size_t batch_size = 64;
  /// Stop after this many events (0 = the whole stream).
  std::size_t max_events = 0;
  /// Stop after this much wall-clock time (0 = unbounded).
  double max_seconds = 0.0;
};

struct ReplayReport {
  std::size_t offered = 0;    ///< events handed to the sink
  std::size_t accepted = 0;   ///< events the sink took
  std::size_t rejected = 0;   ///< backpressure rejections
  double elapsed_seconds = 0.0;

  [[nodiscard]] double offered_per_second() const noexcept {
    return elapsed_seconds > 0.0 ? static_cast<double>(offered) / elapsed_seconds : 0.0;
  }
};

/// Outcome of delivering one batch.
struct SinkReport {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
};

using ReplaySink = std::function<Result<SinkReport>(std::span<const IngestEvent>)>;

/// Paces `stream` (already time-ordered) through `sink`. Stops early on
/// a sink error and returns it.
[[nodiscard]] Result<ReplayReport> replay(std::span<const data::CheckIn> stream,
                                          const ReplayOptions& options,
                                          const ReplaySink& sink);

/// Converts a recorded check-in to an ingest event (venue identity is
/// re-resolved by the worker).
[[nodiscard]] IngestEvent to_event(const data::CheckIn& checkin) noexcept;

/// Sink submitting into a worker's queue with backpressure accounting.
[[nodiscard]] ReplaySink worker_sink(IngestWorker& worker);

/// Sink pushing into a raw queue (for queue-level tests).
[[nodiscard]] ReplaySink queue_sink(IngestQueue& queue);

/// Sink POSTing CSV batches to `/api/ingest` on a running server. The
/// taxonomy must outlive the sink (category ids become names).
[[nodiscard]] ReplaySink http_sink(std::string host, std::uint16_t port,
                                   const data::Taxonomy& taxonomy);

/// The `/api/ingest` CSV body for a batch of events:
/// `user,category,lat,lon,timestamp` with one row per event.
[[nodiscard]] std::string events_csv(std::span<const IngestEvent> events,
                                     const data::Taxonomy& taxonomy);

}  // namespace crowdweb::ingest

// Individual mobility patterns — the output of the paper's phase 2.
//
// A mobility pattern is a frequent sequential pattern of labeled places
// annotated with representative times of day: "Eatery ~08:20 -> Office
// ~09:05" with its support among the user's recorded days. The time
// annotation is what lets phase 3 place users on the city map for a
// selected time window.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "mining/pattern.hpp"
#include "mining/seqdb.hpp"
#include "util/status.hpp"

namespace crowdweb::patterns {

/// One element of a mobility pattern: a labeled place and its typical
/// visit time.
struct TimedElement {
  mining::Item label = 0;
  double mean_minute = 0.0;    ///< mean minute-of-day across occurrences
  double stddev_minute = 0.0;  ///< spread across occurrences

  friend bool operator==(const TimedElement&, const TimedElement&) = default;
};

/// A time-annotated frequent movement pattern of one user.
struct MobilityPattern {
  std::vector<TimedElement> elements;
  std::size_t support_count = 0;  ///< days containing the pattern
  double support = 0.0;           ///< fraction of recorded days

  [[nodiscard]] std::size_t length() const noexcept { return elements.size(); }

  friend bool operator==(const MobilityPattern&, const MobilityPattern&) = default;
};

/// One element of the compact placement index a closed-mode entry
/// carries instead of the expanded pattern set. `rank` is the element's
/// position in the canonical expanded-mode emission order (pattern-major
/// over the canonically sorted frequent set), `minute` is the element's
/// annotated mean minute-of-day truncated to an int — the two inputs the
/// crowd layer's first-qualifying-wins placement rule consumes. Only the
/// per-(label, minute) support frontier is kept: a candidate whose
/// support does not exceed every earlier-rank candidate of the same key
/// can never win a placement at any threshold or window size, so it is
/// pruned at mine time (see mobility.cpp for the argument).
struct PlacementCandidate {
  mining::Item label = 0;
  std::uint16_t minute = 0;        ///< int(mean_minute), in [0, 1440)
  std::uint32_t rank = 0;          ///< canonical expanded emission order
  std::uint32_t support_count = 0; ///< days supporting the source pattern
  double support = 0.0;            ///< support_count / recorded_days

  friend bool operator==(const PlacementCandidate&, const PlacementCandidate&) = default;
};

/// Everything phase 2 derives for one user.
struct UserMobility {
  data::UserId user = 0;
  std::size_t recorded_days = 0;  ///< sequences in the user's database
  std::vector<MobilityPattern> patterns;
  /// What the miner did for this user (explored/pruned counts and the
  /// max_patterns truncation flag). Carried per user so the pipeline can
  /// aggregate an epoch's mining telemetry from the entries it re-mined.
  mining::MiningStats mining_stats;
  /// True when `patterns` holds only the *closed* set (closed-output
  /// miner, MiningOptions::expand_closed off). Support queries answer by
  /// subsumption and crowd placement reads `placement_index`; routes
  /// whose wire contract needs the full set expand lazily (see
  /// expand_user_patterns).
  bool closed_only = false;
  /// Size of the full frequent set (known at mine time even when only
  /// the closed set is stored). Meaningful only when closed_only.
  std::size_t frequent_patterns = 0;
  /// Closed-mode placement index, sorted by rank. Empty when
  /// closed_only is false (the expanded patterns are their own index).
  std::vector<PlacementCandidate> placement_index;

  /// Patterns a full-set consumer would see: the stored count in
  /// expanded mode, the expansion's size in closed mode.
  [[nodiscard]] std::size_t served_pattern_count() const noexcept {
    return closed_only ? frequent_patterns : patterns.size();
  }

  /// Exact support count of a label sequence, answered by subsumption
  /// over the stored pattern set. Over a closed set this equals the full
  /// miner's count for every frequent sequence (closure guarantees a
  /// closed super-pattern of equal support); infrequent sequences return
  /// 0. Also correct over an expanded set (a pattern subsumes itself).
  [[nodiscard]] std::size_t support_count_of(
      std::span<const mining::Item> labels) const noexcept;
  /// support_count_of divided by recorded_days (0 when no days).
  [[nodiscard]] double support_of(std::span<const mining::Item> labels) const noexcept;

  /// Heap bytes this entry keeps resident (patterns, elements, index).
  [[nodiscard]] std::size_t resident_bytes() const noexcept;
};

struct MobilityOptions {
  mining::SequenceOptions sequences;
  mining::MiningOptions mining;
};

/// Phase 2 of the framework: builds the user's day-sequence database and
/// mines it with the miner named by options.mining.algorithm (see
/// mining/registry.hpp; closed-output miners expand back to the full
/// frequent set under options.mining.expand_closed), annotating each
/// pattern with times.
[[nodiscard]] UserMobility mine_user_mobility(const data::Dataset& dataset,
                                              data::UserId user,
                                              const data::Taxonomy& taxonomy,
                                              const MobilityOptions& options = {});

/// Phase 2 over every user of the dataset (sequential).
[[nodiscard]] std::vector<UserMobility> mine_all_mobility(const data::Dataset& dataset,
                                                          const data::Taxonomy& taxonomy,
                                                          const MobilityOptions& options = {});

/// Phase 2 over every user, sharded across `threads` worker threads
/// (0 = hardware concurrency). Users are independent, so the result is
/// identical to the sequential version, in the same order.
[[nodiscard]] std::vector<UserMobility> mine_all_mobility_parallel(
    const data::Dataset& dataset, const data::Taxonomy& taxonomy,
    const MobilityOptions& options = {}, unsigned threads = 0);

/// Phase 2 for the given users only (result order matches `users`),
/// sharded across `threads` worker threads (0 = hardware concurrency).
/// This is the delta form: an epoch re-mines just the users its events
/// touched instead of the whole corpus.
[[nodiscard]] std::vector<UserMobility> mine_users_mobility_parallel(
    const data::Dataset& dataset, std::span<const data::UserId> users,
    const data::Taxonomy& taxonomy, const MobilityOptions& options = {},
    unsigned threads = 0);

/// Aggregate size of a set of mobility entries — what /api/status and
/// bench_mining report per epoch to make the closed-mode memory win (or
/// its absence on sparse corpora) observable.
struct MobilityStats {
  std::size_t entries = 0;               ///< users with a mined entry
  std::size_t compact_entries = 0;       ///< entries stored closed-only
  std::size_t patterns = 0;              ///< resident annotated patterns
  std::size_t placement_candidates = 0;  ///< resident index candidates
  std::size_t bytes = 0;                 ///< resident heap bytes

  void add(const UserMobility& entry) noexcept {
    ++entries;
    if (entry.closed_only) ++compact_entries;
    patterns += entry.patterns.size();
    placement_candidates += entry.placement_index.size();
    bytes += entry.resident_bytes();
  }

  /// Folds another table's totals in (shard scatter-gather status).
  void merge(const MobilityStats& other) noexcept {
    entries += other.entries;
    compact_entries += other.compact_entries;
    patterns += other.patterns;
    placement_candidates += other.placement_candidates;
    bytes += other.bytes;
  }
};

/// Immutable per-user mobility entries in ascending user order, each
/// behind a shared_ptr so successive epochs share the entries of every
/// user the delta did not touch. `with_updates` is the maintenance
/// operation: it replaces or inserts the freshly mined entries and
/// shares everything else with the previous table by pointer.
class MobilityTable {
 public:
  using EntryPtr = std::shared_ptr<const UserMobility>;

  /// Iterates entries as `const UserMobility&` in ascending user order.
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = UserMobility;
    using difference_type = std::ptrdiff_t;
    using pointer = const UserMobility*;
    using reference = const UserMobility&;

    const_iterator() = default;
    [[nodiscard]] reference operator*() const noexcept { return **it_; }
    [[nodiscard]] pointer operator->() const noexcept { return it_->get(); }
    [[nodiscard]] reference operator[](difference_type n) const noexcept { return *it_[n]; }
    const_iterator& operator++() noexcept { ++it_; return *this; }
    const_iterator operator++(int) noexcept { return const_iterator{it_++}; }
    const_iterator& operator--() noexcept { --it_; return *this; }
    const_iterator operator--(int) noexcept { return const_iterator{it_--}; }
    const_iterator& operator+=(difference_type n) noexcept { it_ += n; return *this; }
    const_iterator& operator-=(difference_type n) noexcept { it_ -= n; return *this; }
    [[nodiscard]] friend const_iterator operator+(const_iterator it, difference_type n) noexcept {
      return it += n;
    }
    [[nodiscard]] friend const_iterator operator-(const_iterator it, difference_type n) noexcept {
      return it -= n;
    }
    [[nodiscard]] friend difference_type operator-(const_iterator a, const_iterator b) noexcept {
      return a.it_ - b.it_;
    }
    [[nodiscard]] friend bool operator==(const_iterator, const_iterator) = default;
    [[nodiscard]] friend auto operator<=>(const_iterator, const_iterator) = default;

   private:
    friend class MobilityTable;
    explicit const_iterator(const EntryPtr* it) noexcept : it_(it) {}
    const EntryPtr* it_ = nullptr;
  };

  MobilityTable() = default;

  /// Adopts freshly mined entries (any order; sorted by user here).
  [[nodiscard]] static MobilityTable from_entries(std::vector<UserMobility> entries);

  /// New table where each update replaces (or inserts) its user's
  /// entry; every untouched entry is shared with this table by pointer.
  [[nodiscard]] MobilityTable with_updates(std::vector<UserMobility> updates) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const UserMobility& operator[](std::size_t index) const noexcept {
    return *entries_[index];
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator{entries_.data()};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator{entries_.data() + entries_.size()};
  }

  /// The user's entry, or null when the user has never been mined.
  [[nodiscard]] const UserMobility* find(data::UserId user) const noexcept;

  /// The shared entry object (pointer equality across tables proves the
  /// entry was reused, not recomputed).
  [[nodiscard]] EntryPtr entry_for(data::UserId user) const noexcept;

  /// Deep copy into a flat vector, in user order.
  [[nodiscard]] std::vector<UserMobility> to_vector() const;

  /// Aggregate entry/pattern/byte counts over every entry (O(patterns)).
  [[nodiscard]] MobilityStats stats() const noexcept;

 private:
  explicit MobilityTable(std::vector<EntryPtr> entries) : entries_(std::move(entries)) {}

  std::vector<EntryPtr> entries_;  // ascending by user
};

/// Annotates an already-mined pattern with per-position visit times by
/// scanning the greedy first embedding in every supporting day.
[[nodiscard]] MobilityPattern annotate_pattern(const mining::Pattern& pattern,
                                               const mining::UserSequences& sequences);

/// The full frequent pattern set of an entry, annotated — exactly what
/// the entry's `patterns` would hold had it been mined with
/// expand_closed on. Compact (closed_only) entries expand their closed
/// set lazily against the user's day-sequence database (same expansion
/// cap, same canonical order, same greedy-embedding annotation, so the
/// result is byte-identical to expanded-mode output); expanded entries
/// return a copy of `patterns` unchanged. This is the per-request path
/// behind routes whose wire contract needs the full set.
[[nodiscard]] std::vector<MobilityPattern> expand_user_patterns(
    const UserMobility& mobility, const mining::UserSequences& sequences,
    const mining::MiningOptions& mining);

/// Convenience overload that rebuilds the user's sequences from the
/// dataset first (the shard API has no Platform to ask).
[[nodiscard]] std::vector<MobilityPattern> expand_user_patterns(
    const UserMobility& mobility, const data::Dataset& dataset,
    const data::Taxonomy& taxonomy, const MobilityOptions& options);

/// Mean pattern length of a user (0 for no patterns) — the Figure 7/8
/// metric.
[[nodiscard]] double average_pattern_length(const std::vector<MobilityPattern>& patterns);

/// "Eatery@08:20 -> Office@09:05 (support 0.62)".
[[nodiscard]] std::string describe_pattern(const MobilityPattern& pattern,
                                           const data::Taxonomy& taxonomy,
                                           const data::Dataset& dataset,
                                           mining::LabelMode mode);

}  // namespace crowdweb::patterns

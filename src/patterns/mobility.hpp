// Individual mobility patterns — the output of the paper's phase 2.
//
// A mobility pattern is a frequent sequential pattern of labeled places
// annotated with representative times of day: "Eatery ~08:20 -> Office
// ~09:05" with its support among the user's recorded days. The time
// annotation is what lets phase 3 place users on the city map for a
// selected time window.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "mining/pattern.hpp"
#include "mining/seqdb.hpp"
#include "util/status.hpp"

namespace crowdweb::patterns {

/// One element of a mobility pattern: a labeled place and its typical
/// visit time.
struct TimedElement {
  mining::Item label = 0;
  double mean_minute = 0.0;    ///< mean minute-of-day across occurrences
  double stddev_minute = 0.0;  ///< spread across occurrences
};

/// A time-annotated frequent movement pattern of one user.
struct MobilityPattern {
  std::vector<TimedElement> elements;
  std::size_t support_count = 0;  ///< days containing the pattern
  double support = 0.0;           ///< fraction of recorded days

  [[nodiscard]] std::size_t length() const noexcept { return elements.size(); }
};

/// Everything phase 2 derives for one user.
struct UserMobility {
  data::UserId user = 0;
  std::size_t recorded_days = 0;  ///< sequences in the user's database
  std::vector<MobilityPattern> patterns;
};

struct MobilityOptions {
  mining::SequenceOptions sequences;
  mining::MiningOptions mining;
};

/// Phase 2 of the framework: builds the user's day-sequence database and
/// mines it with PrefixSpan, annotating each pattern with times.
[[nodiscard]] UserMobility mine_user_mobility(const data::Dataset& dataset,
                                              data::UserId user,
                                              const data::Taxonomy& taxonomy,
                                              const MobilityOptions& options = {});

/// Phase 2 over every user of the dataset (sequential).
[[nodiscard]] std::vector<UserMobility> mine_all_mobility(const data::Dataset& dataset,
                                                          const data::Taxonomy& taxonomy,
                                                          const MobilityOptions& options = {});

/// Phase 2 over every user, sharded across `threads` worker threads
/// (0 = hardware concurrency). Users are independent, so the result is
/// identical to the sequential version, in the same order.
[[nodiscard]] std::vector<UserMobility> mine_all_mobility_parallel(
    const data::Dataset& dataset, const data::Taxonomy& taxonomy,
    const MobilityOptions& options = {}, unsigned threads = 0);

/// Annotates an already-mined pattern with per-position visit times by
/// scanning the greedy first embedding in every supporting day.
[[nodiscard]] MobilityPattern annotate_pattern(const mining::Pattern& pattern,
                                               const mining::UserSequences& sequences);

/// Mean pattern length of a user (0 for no patterns) — the Figure 7/8
/// metric.
[[nodiscard]] double average_pattern_length(const std::vector<MobilityPattern>& patterns);

/// "Eatery@08:20 -> Office@09:05 (support 0.62)".
[[nodiscard]] std::string describe_pattern(const MobilityPattern& pattern,
                                           const data::Taxonomy& taxonomy,
                                           const data::Dataset& dataset,
                                           mining::LabelMode mode);

}  // namespace crowdweb::patterns

#include "patterns/place_graph.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace crowdweb::patterns {

std::optional<std::size_t> PlaceGraph::node_of(mining::Item label) const noexcept {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].label == label) return i;
  }
  return std::nullopt;
}

PlaceGraph build_place_graph(const mining::UserSequences& sequences,
                             const data::Taxonomy& taxonomy, const data::Dataset& dataset,
                             mining::LabelMode mode, const PlaceGraphOptions& options) {
  PlaceGraph graph;
  graph.user = sequences.user;

  // Optional restriction to pattern places.
  std::set<mining::Item> allowed;
  if (options.restrict_to_patterns != nullptr) {
    for (const MobilityPattern& pattern : *options.restrict_to_patterns) {
      for (const TimedElement& element : pattern.elements) allowed.insert(element.label);
    }
  }
  const auto is_allowed = [&](mining::Item label) {
    return options.restrict_to_patterns == nullptr || allowed.contains(label);
  };

  // Node statistics.
  std::map<mining::Item, std::pair<std::size_t, double>> visit_stats;  // count, minute sum
  std::map<std::pair<mining::Item, mining::Item>, std::size_t> transition_counts;
  for (std::size_t d = 0; d < sequences.day_count(); ++d) {
    const auto day = sequences.day(d);
    const auto minutes = sequences.minutes_of(d);
    for (std::size_t i = 0; i < day.size(); ++i) {
      if (!is_allowed(day[i])) continue;
      auto& [count, minute_sum] = visit_stats[day[i]];
      ++count;
      minute_sum += minutes[i];
      // Edge to the next allowed visit of the same day.
      for (std::size_t j = i + 1; j < day.size(); ++j) {
        if (!is_allowed(day[j])) continue;
        ++transition_counts[{day[i], day[j]}];
        break;
      }
    }
  }

  // Materialize nodes above the visit threshold.
  std::map<mining::Item, std::size_t> node_index;
  for (const auto& [label, stats] : visit_stats) {
    const auto& [count, minute_sum] = stats;
    if (count < std::max<std::size_t>(1, options.min_visits)) continue;
    PlaceNode node;
    node.label = label;
    node.name = mining::label_name(label, mode, taxonomy, dataset);
    node.visits = count;
    node.mean_minute = minute_sum / static_cast<double>(count);
    node_index[label] = graph.nodes.size();
    graph.nodes.push_back(std::move(node));
  }

  for (const auto& [pair, count] : transition_counts) {
    const auto from = node_index.find(pair.first);
    const auto to = node_index.find(pair.second);
    if (from == node_index.end() || to == node_index.end()) continue;
    graph.edges.push_back({from->second, to->second, count});
  }
  return graph;
}

}  // namespace crowdweb::patterns

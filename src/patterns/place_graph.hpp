// The place graph — the structure the iMAP/CrowdWeb UI draws for a user.
//
// Nodes are the user's labeled places, weighted by visit count; directed
// edges are same-day transitions between consecutive visits, weighted by
// how often they occur. The graph is built from the day-sequence database
// and can be restricted to the places that participate in mined patterns.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mining/seqdb.hpp"
#include "patterns/mobility.hpp"

namespace crowdweb::patterns {

struct PlaceNode {
  mining::Item label = 0;
  std::string name;
  std::size_t visits = 0;       ///< total check-ins with this label
  double mean_minute = 0.0;     ///< mean visit time of day
};

struct PlaceEdge {
  std::size_t from = 0;  ///< index into nodes
  std::size_t to = 0;
  std::size_t count = 0;  ///< observed same-day transitions
};

/// A user's visited-places graph.
struct PlaceGraph {
  data::UserId user = 0;
  std::vector<PlaceNode> nodes;
  std::vector<PlaceEdge> edges;

  /// Index of the node with the given label, if present.
  [[nodiscard]] std::optional<std::size_t> node_of(mining::Item label) const noexcept;
};

struct PlaceGraphOptions {
  /// Keep only places appearing in at least one of these patterns
  /// (empty = keep everything).
  const std::vector<MobilityPattern>* restrict_to_patterns = nullptr;
  /// Drop nodes with fewer visits.
  std::size_t min_visits = 1;
};

/// Builds the graph from a user's sequences.
[[nodiscard]] PlaceGraph build_place_graph(const mining::UserSequences& sequences,
                                           const data::Taxonomy& taxonomy,
                                           const data::Dataset& dataset,
                                           mining::LabelMode mode,
                                           const PlaceGraphOptions& options = {});

}  // namespace crowdweb::patterns

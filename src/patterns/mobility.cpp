#include "patterns/mobility.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "mining/registry.hpp"
#include "util/format.hpp"

namespace crowdweb::patterns {

MobilityPattern annotate_pattern(const mining::Pattern& pattern,
                                 const mining::UserSequences& sequences) {
  MobilityPattern out;
  out.support_count = pattern.support_count;
  out.support = pattern.support;
  out.elements.reserve(pattern.items.size());
  for (const mining::Item item : pattern.items) out.elements.push_back({item, 0.0, 0.0});

  // Accumulate minute-of-day per position over the greedy first embedding
  // in every day that contains the pattern.
  std::vector<double> sum(pattern.items.size(), 0.0);
  std::vector<double> sum_sq(pattern.items.size(), 0.0);
  std::vector<int> embedding(pattern.items.size(), 0);
  std::size_t matched_days = 0;
  for (std::size_t d = 0; d < sequences.day_count(); ++d) {
    const auto day = sequences.day(d);
    const auto minutes = sequences.minutes_of(d);
    std::size_t position = 0;
    for (std::size_t i = 0; i < day.size() && position < pattern.items.size(); ++i) {
      if (day[i] == pattern.items[position]) {
        embedding[position] = minutes[i];
        ++position;
      }
    }
    if (position != pattern.items.size()) continue;  // day does not support it
    ++matched_days;
    for (std::size_t p = 0; p < embedding.size(); ++p) {
      sum[p] += embedding[p];
      sum_sq[p] += static_cast<double>(embedding[p]) * embedding[p];
    }
  }
  if (matched_days > 0) {
    for (std::size_t p = 0; p < out.elements.size(); ++p) {
      const double mean = sum[p] / static_cast<double>(matched_days);
      const double variance =
          std::max(0.0, sum_sq[p] / static_cast<double>(matched_days) - mean * mean);
      out.elements[p].mean_minute = mean;
      out.elements[p].stddev_minute = std::sqrt(variance);
    }
  }
  return out;
}

UserMobility mine_user_mobility(const data::Dataset& dataset, data::UserId user,
                                const data::Taxonomy& taxonomy,
                                const MobilityOptions& options) {
  UserMobility out;
  out.user = user;
  const mining::UserSequences sequences =
      mining::build_user_sequences(dataset, user, taxonomy, options.sequences);
  out.recorded_days = sequences.day_count();
  if (sequences.empty()) return out;

  const mining::MiningResult mined = mining::mine_with(sequences.columns(), options.mining);
  out.mining_stats = mined.stats;
  out.patterns.reserve(mined.patterns.size());
  for (const mining::Pattern& pattern : mined.patterns)
    out.patterns.push_back(annotate_pattern(pattern, sequences));
  return out;
}

std::vector<UserMobility> mine_all_mobility(const data::Dataset& dataset,
                                            const data::Taxonomy& taxonomy,
                                            const MobilityOptions& options) {
  std::vector<UserMobility> out;
  out.reserve(dataset.user_count());
  for (const data::UserId user : dataset.users())
    out.push_back(mine_user_mobility(dataset, user, taxonomy, options));
  return out;
}

std::vector<UserMobility> mine_all_mobility_parallel(const data::Dataset& dataset,
                                                     const data::Taxonomy& taxonomy,
                                                     const MobilityOptions& options,
                                                     unsigned threads) {
  return mine_users_mobility_parallel(dataset, dataset.users(), taxonomy, options, threads);
}

std::vector<UserMobility> mine_users_mobility_parallel(const data::Dataset& dataset,
                                                       std::span<const data::UserId> users,
                                                       const data::Taxonomy& taxonomy,
                                                       const MobilityOptions& options,
                                                       unsigned threads) {
  std::vector<UserMobility> out(users.size());
  if (users.empty()) return out;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(users.size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < users.size(); ++i)
      out[i] = mine_user_mobility(dataset, users[i], taxonomy, options);
    return out;
  }

  // Users are claimed from a shared atomic counter; each result lands in
  // its own slot, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= users.size()) return;
      out[index] = mine_user_mobility(dataset, users[index], taxonomy, options);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return out;
}

MobilityTable MobilityTable::from_entries(std::vector<UserMobility> entries) {
  std::vector<EntryPtr> owned;
  owned.reserve(entries.size());
  for (UserMobility& entry : entries)
    owned.push_back(std::make_shared<const UserMobility>(std::move(entry)));
  std::sort(owned.begin(), owned.end(), [](const EntryPtr& a, const EntryPtr& b) {
    return a->user < b->user;
  });
  return MobilityTable(std::move(owned));
}

MobilityTable MobilityTable::with_updates(std::vector<UserMobility> updates) const {
  std::sort(updates.begin(), updates.end(),
            [](const UserMobility& a, const UserMobility& b) { return a.user < b.user; });
  std::vector<EntryPtr> merged;
  merged.reserve(entries_.size() + updates.size());
  std::size_t bi = 0;
  std::size_t ui = 0;
  while (bi < entries_.size() || ui < updates.size()) {
    if (ui == updates.size() ||
        (bi < entries_.size() && entries_[bi]->user < updates[ui].user)) {
      merged.push_back(entries_[bi]);  // untouched: share the entry
      ++bi;
      continue;
    }
    if (bi < entries_.size() && entries_[bi]->user == updates[ui].user) ++bi;
    merged.push_back(std::make_shared<const UserMobility>(std::move(updates[ui])));
    ++ui;
  }
  return MobilityTable(std::move(merged));
}

const UserMobility* MobilityTable::find(data::UserId user) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), user,
      [](const EntryPtr& entry, data::UserId u) { return entry->user < u; });
  if (it == entries_.end() || (*it)->user != user) return nullptr;
  return it->get();
}

MobilityTable::EntryPtr MobilityTable::entry_for(data::UserId user) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), user,
      [](const EntryPtr& entry, data::UserId u) { return entry->user < u; });
  if (it == entries_.end() || (*it)->user != user) return nullptr;
  return *it;
}

std::vector<UserMobility> MobilityTable::to_vector() const {
  std::vector<UserMobility> out;
  out.reserve(entries_.size());
  for (const EntryPtr& entry : entries_) out.push_back(*entry);
  return out;
}

double average_pattern_length(const std::vector<MobilityPattern>& patterns) {
  if (patterns.empty()) return 0.0;
  double total = 0.0;
  for (const MobilityPattern& p : patterns) total += static_cast<double>(p.length());
  return total / static_cast<double>(patterns.size());
}

std::string describe_pattern(const MobilityPattern& pattern, const data::Taxonomy& taxonomy,
                             const data::Dataset& dataset, mining::LabelMode mode) {
  std::string out;
  for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
    if (i > 0) out += " -> ";
    const TimedElement& e = pattern.elements[i];
    const int minute = static_cast<int>(e.mean_minute + 0.5);
    out += crowdweb::format("{}@{:02}:{:02}", mining::label_name(e.label, mode, taxonomy, dataset),
                            minute / 60, minute % 60);
  }
  out += crowdweb::format(" (support {:.2f})", pattern.support);
  return out;
}

}  // namespace crowdweb::patterns

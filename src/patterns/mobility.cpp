#include "patterns/mobility.hpp"

#include <atomic>
#include <cmath>
#include <thread>

#include "mining/prefixspan.hpp"
#include "util/format.hpp"

namespace crowdweb::patterns {

MobilityPattern annotate_pattern(const mining::Pattern& pattern,
                                 const mining::UserSequences& sequences) {
  MobilityPattern out;
  out.support_count = pattern.support_count;
  out.support = pattern.support;
  out.elements.reserve(pattern.items.size());
  for (const mining::Item item : pattern.items) out.elements.push_back({item, 0.0, 0.0});

  // Accumulate minute-of-day per position over the greedy first embedding
  // in every day that contains the pattern.
  std::vector<double> sum(pattern.items.size(), 0.0);
  std::vector<double> sum_sq(pattern.items.size(), 0.0);
  std::vector<int> embedding(pattern.items.size(), 0);
  std::size_t matched_days = 0;
  for (std::size_t d = 0; d < sequences.days.size(); ++d) {
    const auto& day = sequences.days[d];
    const auto& minutes = sequences.minutes[d];
    std::size_t position = 0;
    for (std::size_t i = 0; i < day.size() && position < pattern.items.size(); ++i) {
      if (day[i] == pattern.items[position]) {
        embedding[position] = minutes[i];
        ++position;
      }
    }
    if (position != pattern.items.size()) continue;  // day does not support it
    ++matched_days;
    for (std::size_t p = 0; p < embedding.size(); ++p) {
      sum[p] += embedding[p];
      sum_sq[p] += static_cast<double>(embedding[p]) * embedding[p];
    }
  }
  if (matched_days > 0) {
    for (std::size_t p = 0; p < out.elements.size(); ++p) {
      const double mean = sum[p] / static_cast<double>(matched_days);
      const double variance =
          std::max(0.0, sum_sq[p] / static_cast<double>(matched_days) - mean * mean);
      out.elements[p].mean_minute = mean;
      out.elements[p].stddev_minute = std::sqrt(variance);
    }
  }
  return out;
}

UserMobility mine_user_mobility(const data::Dataset& dataset, data::UserId user,
                                const data::Taxonomy& taxonomy,
                                const MobilityOptions& options) {
  UserMobility out;
  out.user = user;
  const mining::UserSequences sequences =
      mining::build_user_sequences(dataset, user, taxonomy, options.sequences);
  out.recorded_days = sequences.days.size();
  if (sequences.days.empty()) return out;

  const std::vector<mining::Pattern> mined =
      mining::prefixspan(sequences.days, options.mining);
  out.patterns.reserve(mined.size());
  for (const mining::Pattern& pattern : mined)
    out.patterns.push_back(annotate_pattern(pattern, sequences));
  return out;
}

std::vector<UserMobility> mine_all_mobility(const data::Dataset& dataset,
                                            const data::Taxonomy& taxonomy,
                                            const MobilityOptions& options) {
  std::vector<UserMobility> out;
  out.reserve(dataset.user_count());
  for (const data::UserId user : dataset.users())
    out.push_back(mine_user_mobility(dataset, user, taxonomy, options));
  return out;
}

std::vector<UserMobility> mine_all_mobility_parallel(const data::Dataset& dataset,
                                                     const data::Taxonomy& taxonomy,
                                                     const MobilityOptions& options,
                                                     unsigned threads) {
  const auto users = dataset.users();
  std::vector<UserMobility> out(users.size());
  if (users.empty()) return out;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(users.size()));
  if (threads <= 1) return mine_all_mobility(dataset, taxonomy, options);

  // Users are claimed from a shared atomic counter; each result lands in
  // its own slot, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= users.size()) return;
      out[index] = mine_user_mobility(dataset, users[index], taxonomy, options);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return out;
}

double average_pattern_length(const std::vector<MobilityPattern>& patterns) {
  if (patterns.empty()) return 0.0;
  double total = 0.0;
  for (const MobilityPattern& p : patterns) total += static_cast<double>(p.length());
  return total / static_cast<double>(patterns.size());
}

std::string describe_pattern(const MobilityPattern& pattern, const data::Taxonomy& taxonomy,
                             const data::Dataset& dataset, mining::LabelMode mode) {
  std::string out;
  for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
    if (i > 0) out += " -> ";
    const TimedElement& e = pattern.elements[i];
    const int minute = static_cast<int>(e.mean_minute + 0.5);
    out += crowdweb::format("{}@{:02}:{:02}", mining::label_name(e.label, mode, taxonomy, dataset),
                            minute / 60, minute % 60);
  }
  out += crowdweb::format(" (support {:.2f})", pattern.support);
  return out;
}

}  // namespace crowdweb::patterns

#include "patterns/mobility.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "mining/registry.hpp"
#include "util/format.hpp"

namespace crowdweb::patterns {

MobilityPattern annotate_pattern(const mining::Pattern& pattern,
                                 const mining::UserSequences& sequences) {
  MobilityPattern out;
  out.support_count = pattern.support_count;
  out.support = pattern.support;
  out.elements.reserve(pattern.items.size());
  for (const mining::Item item : pattern.items) out.elements.push_back({item, 0.0, 0.0});

  // Accumulate minute-of-day per position over the greedy first embedding
  // in every day that contains the pattern.
  std::vector<double> sum(pattern.items.size(), 0.0);
  std::vector<double> sum_sq(pattern.items.size(), 0.0);
  std::vector<int> embedding(pattern.items.size(), 0);
  std::size_t matched_days = 0;
  for (std::size_t d = 0; d < sequences.day_count(); ++d) {
    const auto day = sequences.day(d);
    const auto minutes = sequences.minutes_of(d);
    std::size_t position = 0;
    for (std::size_t i = 0; i < day.size() && position < pattern.items.size(); ++i) {
      if (day[i] == pattern.items[position]) {
        embedding[position] = minutes[i];
        ++position;
      }
    }
    if (position != pattern.items.size()) continue;  // day does not support it
    ++matched_days;
    for (std::size_t p = 0; p < embedding.size(); ++p) {
      sum[p] += embedding[p];
      sum_sq[p] += static_cast<double>(embedding[p]) * embedding[p];
    }
  }
  if (matched_days > 0) {
    for (std::size_t p = 0; p < out.elements.size(); ++p) {
      const double mean = sum[p] / static_cast<double>(matched_days);
      const double variance =
          std::max(0.0, sum_sq[p] / static_cast<double>(matched_days) - mean * mean);
      out.elements[p].mean_minute = mean;
      out.elements[p].stddev_minute = std::sqrt(variance);
    }
  }
  return out;
}

namespace {

/// Builds the closed-mode placement index: stream the *exact* expanded
/// frequent set (same expansion function and cap as expanded mode, so
/// truncation behaves identically), annotate each pattern transiently,
/// and keep — per (label, int(mean_minute)) key — only the candidates on
/// the support frontier in rank order.
///
/// Why the frontier suffices: the crowd layer places the first element
/// (pattern-major canonical order = ascending rank) whose pattern
/// clears min_pattern_support and whose (window, label) key is unseen.
/// Two candidates with the same (label, minute) map to the same window
/// under *every* window size, so if an earlier-rank same-key candidate
/// has support >= a later one's, the earlier qualifies whenever the
/// later does and always beats it to the dedup set — the later can
/// never be the placed element, at any threshold or window size. The
/// expanded-mode winner itself always survives pruning: any same-key
/// candidate that dominated it would have qualified first in expanded
/// mode too, contradicting the winner being placed.
void build_placement_index(UserMobility& out, std::span<const mining::Pattern> closed,
                           const mining::UserSequences& sequences,
                           const mining::MiningOptions& mining) {
  mining::MiningStats expand_stats;
  const std::vector<mining::Pattern> full = mining::expand_closed_patterns(
      closed, sequences.day_count(), mining, &expand_stats);
  out.mining_stats.expanded += expand_stats.expanded;
  out.mining_stats.truncated = out.mining_stats.truncated || expand_stats.truncated;
  out.frequent_patterns = full.size();

  std::vector<PlacementCandidate> candidates;
  std::uint32_t rank = 0;
  for (const mining::Pattern& pattern : full) {
    const MobilityPattern annotated = annotate_pattern(pattern, sequences);
    for (const TimedElement& element : annotated.elements) {
      PlacementCandidate candidate;
      candidate.label = element.label;
      candidate.minute = static_cast<std::uint16_t>(
          std::clamp(static_cast<int>(element.mean_minute), 0, 24 * 60 - 1));
      candidate.rank = rank++;
      candidate.support_count = static_cast<std::uint32_t>(pattern.support_count);
      candidate.support = pattern.support;
      candidates.push_back(candidate);
    }
  }

  // Per-key frontier sweep: group by (label, minute), walk each group in
  // rank order, keep a candidate only when it strictly raises the
  // group's running support maximum.
  std::sort(candidates.begin(), candidates.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              if (a.label != b.label) return a.label < b.label;
              if (a.minute != b.minute) return a.minute < b.minute;
              return a.rank < b.rank;
            });
  std::vector<PlacementCandidate> kept;
  std::size_t i = 0;
  while (i < candidates.size()) {
    std::uint32_t best = 0;
    std::size_t j = i;
    for (; j < candidates.size() && candidates[j].label == candidates[i].label &&
           candidates[j].minute == candidates[i].minute;
         ++j) {
      if (candidates[j].support_count > best) {
        best = candidates[j].support_count;
        kept.push_back(candidates[j]);
      }
    }
    i = j;
  }
  std::sort(kept.begin(), kept.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              return a.rank < b.rank;
            });
  kept.shrink_to_fit();
  out.placement_index = std::move(kept);
}

}  // namespace

UserMobility mine_user_mobility(const data::Dataset& dataset, data::UserId user,
                                const data::Taxonomy& taxonomy,
                                const MobilityOptions& options) {
  UserMobility out;
  out.user = user;
  const mining::UserSequences sequences =
      mining::build_user_sequences(dataset, user, taxonomy, options.sequences);
  out.recorded_days = sequences.day_count();
  if (sequences.empty()) return out;

  const mining::MiningResult mined = mining::mine_with(sequences.columns(), options.mining);
  out.mining_stats = mined.stats;
  out.patterns.reserve(mined.patterns.size());
  for (const mining::Pattern& pattern : mined.patterns)
    out.patterns.push_back(annotate_pattern(pattern, sequences));
  if (mined.closed) {
    out.closed_only = true;
    build_placement_index(out, mined.patterns, sequences, options.mining);
  }
  return out;
}

std::size_t UserMobility::support_count_of(
    std::span<const mining::Item> labels) const noexcept {
  std::size_t best = 0;
  for (const MobilityPattern& pattern : patterns) {
    if (pattern.support_count <= best) continue;  // cannot improve the max
    if (pattern.elements.size() < labels.size()) continue;
    std::size_t n = 0;
    for (const TimedElement& element : pattern.elements) {
      if (n == labels.size()) break;
      if (element.label == labels[n]) ++n;
    }
    if (n == labels.size()) best = pattern.support_count;
  }
  return best;
}

double UserMobility::support_of(std::span<const mining::Item> labels) const noexcept {
  if (recorded_days == 0) return 0.0;
  return static_cast<double>(support_count_of(labels)) /
         static_cast<double>(recorded_days);
}

std::size_t UserMobility::resident_bytes() const noexcept {
  std::size_t bytes = sizeof(UserMobility);
  bytes += patterns.size() * sizeof(MobilityPattern);
  for (const MobilityPattern& pattern : patterns)
    bytes += pattern.elements.size() * sizeof(TimedElement);
  bytes += placement_index.size() * sizeof(PlacementCandidate);
  return bytes;
}

std::vector<MobilityPattern> expand_user_patterns(const UserMobility& mobility,
                                                  const mining::UserSequences& sequences,
                                                  const mining::MiningOptions& mining) {
  if (!mobility.closed_only) return mobility.patterns;
  // Reconstitute the closed set in miner form (items + supports; the
  // annotations are not needed to expand), then rerun the exact
  // expansion + annotation the expanded-mode mine would have done.
  std::vector<mining::Pattern> closed;
  closed.reserve(mobility.patterns.size());
  for (const MobilityPattern& pattern : mobility.patterns) {
    mining::Pattern raw;
    raw.items.reserve(pattern.elements.size());
    for (const TimedElement& element : pattern.elements) raw.items.push_back(element.label);
    raw.support_count = pattern.support_count;
    raw.support = pattern.support;
    closed.push_back(std::move(raw));
  }
  const std::vector<mining::Pattern> full =
      mining::expand_closed_patterns(closed, sequences.day_count(), mining);
  std::vector<MobilityPattern> out;
  out.reserve(full.size());
  for (const mining::Pattern& pattern : full)
    out.push_back(annotate_pattern(pattern, sequences));
  return out;
}

std::vector<MobilityPattern> expand_user_patterns(const UserMobility& mobility,
                                                  const data::Dataset& dataset,
                                                  const data::Taxonomy& taxonomy,
                                                  const MobilityOptions& options) {
  if (!mobility.closed_only) return mobility.patterns;
  const mining::UserSequences sequences =
      mining::build_user_sequences(dataset, mobility.user, taxonomy, options.sequences);
  return expand_user_patterns(mobility, sequences, options.mining);
}

std::vector<UserMobility> mine_all_mobility(const data::Dataset& dataset,
                                            const data::Taxonomy& taxonomy,
                                            const MobilityOptions& options) {
  std::vector<UserMobility> out;
  out.reserve(dataset.user_count());
  for (const data::UserId user : dataset.users())
    out.push_back(mine_user_mobility(dataset, user, taxonomy, options));
  return out;
}

std::vector<UserMobility> mine_all_mobility_parallel(const data::Dataset& dataset,
                                                     const data::Taxonomy& taxonomy,
                                                     const MobilityOptions& options,
                                                     unsigned threads) {
  return mine_users_mobility_parallel(dataset, dataset.users(), taxonomy, options, threads);
}

std::vector<UserMobility> mine_users_mobility_parallel(const data::Dataset& dataset,
                                                       std::span<const data::UserId> users,
                                                       const data::Taxonomy& taxonomy,
                                                       const MobilityOptions& options,
                                                       unsigned threads) {
  std::vector<UserMobility> out(users.size());
  if (users.empty()) return out;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(users.size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < users.size(); ++i)
      out[i] = mine_user_mobility(dataset, users[i], taxonomy, options);
    return out;
  }

  // Users are claimed from a shared atomic counter; each result lands in
  // its own slot, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= users.size()) return;
      out[index] = mine_user_mobility(dataset, users[index], taxonomy, options);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return out;
}

MobilityTable MobilityTable::from_entries(std::vector<UserMobility> entries) {
  std::vector<EntryPtr> owned;
  owned.reserve(entries.size());
  for (UserMobility& entry : entries)
    owned.push_back(std::make_shared<const UserMobility>(std::move(entry)));
  std::sort(owned.begin(), owned.end(), [](const EntryPtr& a, const EntryPtr& b) {
    return a->user < b->user;
  });
  return MobilityTable(std::move(owned));
}

MobilityTable MobilityTable::with_updates(std::vector<UserMobility> updates) const {
  std::sort(updates.begin(), updates.end(),
            [](const UserMobility& a, const UserMobility& b) { return a.user < b.user; });
  std::vector<EntryPtr> merged;
  merged.reserve(entries_.size() + updates.size());
  std::size_t bi = 0;
  std::size_t ui = 0;
  while (bi < entries_.size() || ui < updates.size()) {
    if (ui == updates.size() ||
        (bi < entries_.size() && entries_[bi]->user < updates[ui].user)) {
      merged.push_back(entries_[bi]);  // untouched: share the entry
      ++bi;
      continue;
    }
    if (bi < entries_.size() && entries_[bi]->user == updates[ui].user) ++bi;
    merged.push_back(std::make_shared<const UserMobility>(std::move(updates[ui])));
    ++ui;
  }
  return MobilityTable(std::move(merged));
}

const UserMobility* MobilityTable::find(data::UserId user) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), user,
      [](const EntryPtr& entry, data::UserId u) { return entry->user < u; });
  if (it == entries_.end() || (*it)->user != user) return nullptr;
  return it->get();
}

MobilityTable::EntryPtr MobilityTable::entry_for(data::UserId user) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), user,
      [](const EntryPtr& entry, data::UserId u) { return entry->user < u; });
  if (it == entries_.end() || (*it)->user != user) return nullptr;
  return *it;
}

std::vector<UserMobility> MobilityTable::to_vector() const {
  std::vector<UserMobility> out;
  out.reserve(entries_.size());
  for (const EntryPtr& entry : entries_) out.push_back(*entry);
  return out;
}

MobilityStats MobilityTable::stats() const noexcept {
  MobilityStats stats;
  for (const EntryPtr& entry : entries_) stats.add(*entry);
  return stats;
}

double average_pattern_length(const std::vector<MobilityPattern>& patterns) {
  if (patterns.empty()) return 0.0;
  double total = 0.0;
  for (const MobilityPattern& p : patterns) total += static_cast<double>(p.length());
  return total / static_cast<double>(patterns.size());
}

std::string describe_pattern(const MobilityPattern& pattern, const data::Taxonomy& taxonomy,
                             const data::Dataset& dataset, mining::LabelMode mode) {
  std::string out;
  for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
    if (i > 0) out += " -> ";
    const TimedElement& e = pattern.elements[i];
    const int minute = static_cast<int>(e.mean_minute + 0.5);
    out += crowdweb::format("{}@{:02}:{:02}", mining::label_name(e.label, mode, taxonomy, dataset),
                            minute / 60, minute % 60);
  }
  out += crowdweb::format(" (support {:.2f})", pattern.support);
  return out;
}

}  // namespace crowdweb::patterns

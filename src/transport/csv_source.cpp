#include "transport/csv_source.hpp"

#include <algorithm>
#include <string>

#include "data/csv.hpp"
#include "geo/grid.hpp"
#include "json/json.hpp"
#include "util/civil_time.hpp"
#include "util/strings.hpp"

namespace crowdweb::transport {

using http::Request;
using http::Response;

Result<ParsedIngest> parse_ingest_csv(const Request& request,
                                      const data::Taxonomy& taxonomy,
                                      const std::function<data::UserId()>& allocate_guest) {
  const auto rows = data::parse_csv(request.body);
  if (!rows) return rows.status();
  const data::CsvRow with_user{"user", "category", "lat", "lon", "timestamp"};
  const data::CsvRow anonymous{"category", "lat", "lon", "timestamp"};
  if (rows->empty() || ((*rows)[0] != with_user && (*rows)[0] != anonymous))
    return invalid_argument("expected header: [user,]category,lat,lon,timestamp");
  const bool has_user = (*rows)[0] == with_user;
  const data::UserId guest = has_user ? 0 : allocate_guest();

  ParsedIngest parsed;
  parsed.received = rows->size() - 1;
  parsed.events.reserve(rows->size() - 1);
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const data::CsvRow& row = (*rows)[i];
    if (row.size() != (has_user ? 5u : 4u)) {
      ++parsed.invalid;
      continue;
    }
    std::size_t field = 0;
    data::UserId user = guest;
    if (has_user) {
      const auto parsed_user = parse_int(row[field++]);
      if (!parsed_user || *parsed_user < 0) {
        ++parsed.invalid;
        continue;
      }
      user = static_cast<data::UserId>(*parsed_user);
    }
    const auto category = taxonomy.find(row[field]);
    const auto lat = parse_double(row[field + 1]);
    const auto lon = parse_double(row[field + 2]);
    auto timestamp = parse_timestamp(row[field + 3]);
    if (!timestamp) timestamp = parse_int(row[field + 3]);  // raw epoch seconds
    if (!category || !lat || !lon || !geo::is_valid({*lat, *lon}) || !timestamp ||
        *timestamp <= 0) {
      ++parsed.invalid;
      continue;
    }
    parsed.events.push_back({user, *category, {*lat, *lon}, *timestamp});
  }
  return parsed;
}

Response bad_ingest_request(const Status& status) {
  return Response::bad_request_400(status.code() == StatusCode::kInvalidArgument
                                       ? status.message()
                                       : status.to_string());
}

Response ingest_response(const ParsedIngest& parsed, const PipelineOutcome& outcome,
                         const ingest::IngestStats& stats,
                         std::chrono::milliseconds rebuild_interval) {
  const bool taken = outcome.accepted > 0 || outcome.spooled > 0;
  const int status = (!parsed.events.empty() && !taken) ? 429 : 200;
  Response response = Response::json(
      status,
      json::dump(json::object(
          {{"received", static_cast<std::int64_t>(parsed.received)},
           {"accepted", static_cast<std::int64_t>(outcome.accepted)},
           {"rejected", static_cast<std::int64_t>(outcome.rejected)},
           {"spooled", static_cast<std::int64_t>(outcome.spooled)},
           {"invalid", static_cast<std::int64_t>(parsed.invalid)},
           {"queue_depth", static_cast<std::int64_t>(stats.queue_depth)},
           {"queue_capacity", static_cast<std::int64_t>(stats.queue_capacity)},
           {"epoch", static_cast<std::int64_t>(stats.current_epoch)}})));
  if (status == 429) {
    // The queue drains at least once per rebuild interval, so that is
    // the honest earliest retry time (rounded up to whole seconds,
    // floor 1 — Retry-After speaks seconds).
    const std::int64_t seconds =
        std::max<std::int64_t>(1, (rebuild_interval.count() + 999) / 1000);
    response.headers["Retry-After"] = std::to_string(seconds);
  }
  return response;
}

HttpCsvSource::HttpCsvSource(IngestPipeline& pipeline, Config config)
    : pipeline_(pipeline), config_(std::move(config)) {}

HttpCsvSource::~HttpCsvSource() = default;

Response HttpCsvSource::handle(const Request& request) {
  const auto parsed =
      parse_ingest_csv(request, *config_.taxonomy, config_.allocate_guest);
  if (!parsed.is_ok()) {
    counters_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    pipeline_.note_decode_error(name());
    return bad_ingest_request(parsed.status());
  }
  counters_.frames.fetch_add(1, std::memory_order_relaxed);
  counters_.events.fetch_add(parsed->received, std::memory_order_relaxed);
  if (parsed->invalid > 0) {
    counters_.invalid.fetch_add(parsed->invalid, std::memory_order_relaxed);
    pipeline_.note_invalid(parsed->invalid, name());
  }
  const PipelineOutcome outcome = pipeline_.submit(parsed->events, name());
  counters_.accepted.fetch_add(outcome.accepted, std::memory_order_relaxed);
  counters_.rejected.fetch_add(outcome.rejected, std::memory_order_relaxed);
  counters_.spooled.fetch_add(outcome.spooled, std::memory_order_relaxed);
  return ingest_response(*parsed, outcome, config_.stats(), config_.rebuild_interval);
}

std::string_view HttpCsvSource::name() const noexcept { return "http_csv"; }

Status HttpCsvSource::start() {
  running_.store(true);
  return Status::ok();
}

void HttpCsvSource::stop() { running_.store(false); }

bool HttpCsvSource::running() const noexcept { return running_.load(); }

SourceStats HttpCsvSource::stats() const noexcept { return counters_.snapshot(); }

}  // namespace crowdweb::transport

#include "transport/frame_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::transport {

namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

struct FrameServer::Impl {
  IngestPipeline& pipeline;
  FrameServerConfig config;
  std::string source_name;  // "tcp" or "uds"

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t bound_port = 0;
  std::thread loop_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};

  struct Connection {
    std::string inbox;
    std::string outbox;
    std::size_t outbox_offset = 0;
    std::chrono::steady_clock::time_point last_activity;
    bool want_write = false;
  };
  std::unordered_map<int, Connection> connections;  // loop thread only

  SourceCounters counters;
  std::atomic<std::size_t> connection_count{0};
  std::atomic<std::uint64_t> idle_closed{0};
  telemetry::Gauge* connections_gauge = nullptr;

  explicit Impl(IngestPipeline& pipeline_ref) : pipeline(pipeline_ref) {}

  void init_metrics() {
    if (config.metrics == nullptr) return;
    connections_gauge =
        &config.metrics
             ->gauge_family("crowdweb_transport_connections",
                            "Open producer sockets on a frame listener.", {"source"})
             .with_labels({source_name});
  }

  void set_connection_count(std::size_t n) {
    connection_count.store(n, std::memory_order_relaxed);
    if (connections_gauge != nullptr) connections_gauge->set(static_cast<double>(n));
  }

  Status bind_listener() {
    if (!config.uds_path.empty()) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (config.uds_path.size() >= sizeof(addr.sun_path))
        return invalid_argument("uds path too long");
      std::memcpy(addr.sun_path, config.uds_path.c_str(), config.uds_path.size() + 1);
      ::unlink(config.uds_path.c_str());
      listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (listen_fd < 0) return io_error("cannot create uds socket");
      if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        close_fd(listen_fd);
        return io_error(crowdweb::format("cannot bind uds socket {}: {}",
                                         config.uds_path, std::strerror(errno)));
      }
    } else {
      listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (listen_fd < 0) return io_error("cannot create tcp socket");
      const int enable = 1;
      ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(config.port);
      if (::inet_pton(AF_INET, config.address.c_str(), &addr.sin_addr) != 1) {
        close_fd(listen_fd);
        return invalid_argument(
            crowdweb::format("bad listen address {}", config.address));
      }
      if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        close_fd(listen_fd);
        return io_error(crowdweb::format("cannot bind {}:{}: {}", config.address,
                                         config.port, std::strerror(errno)));
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
        bound_port = ntohs(bound.sin_port);
    }
    if (::listen(listen_fd, 128) != 0) {
      close_fd(listen_fd);
      return io_error(crowdweb::format("cannot listen: {}", std::strerror(errno)));
    }
    return Status::ok();
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  bool update_epoll(int fd, Connection& conn) {
    epoll_event event{};
    event.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    event.data.fd = fd;
    return ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &event) == 0;
  }

  void close_connection(int fd) {
    connections.erase(fd);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    set_connection_count(connections.size());
  }

  void accept_ready() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure
      }
      if (config.uds_path.empty()) {
        const int enable = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
      }
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
        ::close(fd);
        continue;
      }
      Connection& conn = connections[fd];
      conn.last_activity = std::chrono::steady_clock::now();
      set_connection_count(connections.size());
    }
  }

  /// Writes as much pending ack bytes as the socket takes. False when
  /// the connection died.
  bool flush_outbox(int fd, Connection& conn) {
    while (conn.outbox_offset < conn.outbox.size()) {
      const ssize_t n = ::send(fd, conn.outbox.data() + conn.outbox_offset,
                               conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      conn.outbox_offset += static_cast<std::size_t>(n);
    }
    if (conn.outbox_offset >= conn.outbox.size()) {
      conn.outbox.clear();
      conn.outbox_offset = 0;
    }
    const bool want_write = !conn.outbox.empty();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      if (!update_epoll(fd, conn)) return false;
    }
    return true;
  }

  /// Decodes every complete frame in the inbox. False when the
  /// connection must close (EOF-worthy protocol damage).
  bool drain_inbox(int fd, Connection& conn) {
    std::size_t offset = 0;
    while (true) {
      const FrameDecodeResult decoded =
          decode_frame(std::string_view(conn.inbox).substr(offset),
                       config.max_frame_payload_bytes);
      if (decoded.state == FrameState::kNeedMore) break;
      if (decoded.state == FrameState::kError) {
        counters.decode_errors.fetch_add(1, std::memory_order_relaxed);
        pipeline.note_decode_error(source_name);
        log_warn("{} producer sent a bad frame, closing: {}", source_name,
                 decoded.error);
        return false;
      }
      offset += decoded.consumed;
      if (decoded.frame.type != FrameType::kData) continue;  // acks are ignored
      counters.frames.fetch_add(1, std::memory_order_relaxed);
      counters.events.fetch_add(decoded.frame.events.size(), std::memory_order_relaxed);
      const PipelineOutcome outcome =
          pipeline.submit(decoded.frame.events, source_name);
      counters.accepted.fetch_add(outcome.accepted, std::memory_order_relaxed);
      counters.rejected.fetch_add(outcome.rejected, std::memory_order_relaxed);
      counters.spooled.fetch_add(outcome.spooled, std::memory_order_relaxed);
      FrameAck ack;
      ack.accepted = static_cast<std::uint32_t>(outcome.accepted);
      ack.rejected = static_cast<std::uint32_t>(outcome.rejected);
      ack.spooled = static_cast<std::uint32_t>(outcome.spooled);
      conn.outbox += encode_ack_frame(decoded.frame.seq, ack);
    }
    conn.inbox.erase(0, offset);
    return flush_outbox(fd, conn);
  }

  bool read_ready(int fd, Connection& conn) {
    char chunk[kReadChunkBytes];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.inbox.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return false;  // producer closed
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn.last_activity = std::chrono::steady_clock::now();
    return drain_inbox(fd, conn);
  }

  void sweep_idle() {
    if (config.idle_timeout.count() <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<int> stale;
    for (const auto& [fd, conn] : connections)
      if (now - conn.last_activity > config.idle_timeout) stale.push_back(fd);
    for (const int fd : stale) {
      idle_closed.fetch_add(1, std::memory_order_relaxed);
      close_connection(fd);
    }
  }

  void loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    int timeout_ms = 500;
    if (config.idle_timeout.count() > 0)
      timeout_ms = static_cast<int>(
          std::min<std::int64_t>(250, config.idle_timeout.count() / 2 + 1));
    while (!stop_requested.load(std::memory_order_acquire)) {
      const int ready = ::epoll_wait(epoll_fd, events, kMaxEvents, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        log_error("{} listener epoll_wait failed: {}", source_name,
                  std::strerror(errno));
        break;
      }
      for (int i = 0; i < ready; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd) {
          std::uint64_t drained = 0;
          [[maybe_unused]] const ssize_t n = ::read(wake_fd, &drained, sizeof(drained));
          continue;
        }
        if (fd == listen_fd) {
          accept_ready();
          continue;
        }
        const auto it = connections.find(fd);
        if (it == connections.end()) continue;
        bool alive = true;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) alive = false;
        if (alive && (events[i].events & EPOLLIN) != 0)
          alive = read_ready(fd, it->second);
        if (alive && (events[i].events & EPOLLOUT) != 0)
          alive = flush_outbox(fd, it->second);
        if (!alive) close_connection(fd);
      }
      sweep_idle();
    }
  }

  Status start() {
    if (running.load()) return Status::ok();
    if (Status status = bind_listener(); !status.is_ok()) return status;
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd < 0 || wake_fd < 0) {
      close_fd(listen_fd);
      close_fd(epoll_fd);
      close_fd(wake_fd);
      return io_error("cannot create epoll/eventfd for frame listener");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = listen_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &event);
    event.data.fd = wake_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &event);
    stop_requested.store(false);
    loop_thread = std::thread([this] { loop(); });
    running.store(true);
    if (config.uds_path.empty())
      log_info("frame listener on {}:{}", config.address, bound_port);
    else
      log_info("frame listener on {}", config.uds_path);
    return Status::ok();
  }

  void stop() {
    if (!running.load()) return;
    stop_requested.store(true, std::memory_order_release);
    wake();
    if (loop_thread.joinable()) loop_thread.join();
    for (const auto& [fd, conn] : connections) ::close(fd);
    connections.clear();
    set_connection_count(0);
    close_fd(listen_fd);
    close_fd(epoll_fd);
    close_fd(wake_fd);
    if (!config.uds_path.empty()) ::unlink(config.uds_path.c_str());
    running.store(false);
  }
};

FrameServer::FrameServer(IngestPipeline& pipeline, FrameServerConfig config)
    : impl_(std::make_unique<Impl>(pipeline)) {
  impl_->config = std::move(config);
  impl_->source_name = impl_->config.uds_path.empty() ? "tcp" : "uds";
  impl_->init_metrics();
}

FrameServer::~FrameServer() { stop(); }

std::string_view FrameServer::name() const noexcept { return impl_->source_name; }

Status FrameServer::start() { return impl_->start(); }

void FrameServer::stop() { impl_->stop(); }

bool FrameServer::running() const noexcept { return impl_->running.load(); }

SourceStats FrameServer::stats() const noexcept { return impl_->counters.snapshot(); }

std::uint16_t FrameServer::port() const noexcept { return impl_->bound_port; }

std::size_t FrameServer::connections() const noexcept {
  return impl_->connection_count.load(std::memory_order_relaxed);
}

std::uint64_t FrameServer::idle_closed() const noexcept {
  return impl_->idle_closed.load(std::memory_order_relaxed);
}

}  // namespace crowdweb::transport

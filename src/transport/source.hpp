// The pluggable ingest-source interface.
//
// Every way check-ins enter the system — the HTTP CSV route, the framed
// binary TCP/UDS listener, the disk spool drainer — implements
// IngestSource and submits through one IngestPipeline (pipeline.hpp),
// so backpressure, spill-to-spool, and the crowdweb_transport_*
// accounting behave identically no matter how rows arrive. Mirrors the
// S1-SEE IngestAdapter design: transports are interchangeable at the
// edge, the queue contract stays in one place.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "util/status.hpp"

namespace crowdweb::transport {

/// Monotonic per-source counters (also exported as the
/// crowdweb_transport_* families when a registry is attached).
struct SourceStats {
  std::uint64_t frames = 0;         ///< batches received (HTTP bodies count as one)
  std::uint64_t events = 0;         ///< events carried by those batches
  std::uint64_t accepted = 0;       ///< events the queue took
  std::uint64_t rejected = 0;       ///< events refused (queue full, no spool room)
  std::uint64_t spooled = 0;        ///< events absorbed by the disk spool
  std::uint64_t invalid = 0;        ///< events refused before submission
  std::uint64_t decode_errors = 0;  ///< malformed frames / CSV bodies
};

class IngestSource {
 public:
  virtual ~IngestSource() = default;

  /// Stable label ("http_csv", "tcp", "uds", "spool") used for metric
  /// series and logs.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Begins accepting producers (listener sources bind here; the HTTP
  /// CSV source is passive and returns OK).
  [[nodiscard]] virtual Status start() = 0;

  /// Stops accepting and joins any threads (idempotent).
  virtual void stop() = 0;

  [[nodiscard]] virtual bool running() const noexcept = 0;

  [[nodiscard]] virtual SourceStats stats() const noexcept = 0;
};

/// Lock-free counter block concrete sources aggregate into (they all
/// report SourceStats from one of these).
struct SourceCounters {
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> spooled{0};
  std::atomic<std::uint64_t> invalid{0};
  std::atomic<std::uint64_t> decode_errors{0};

  [[nodiscard]] SourceStats snapshot() const noexcept {
    SourceStats stats;
    stats.frames = frames.load(std::memory_order_relaxed);
    stats.events = events.load(std::memory_order_relaxed);
    stats.accepted = accepted.load(std::memory_order_relaxed);
    stats.rejected = rejected.load(std::memory_order_relaxed);
    stats.spooled = spooled.load(std::memory_order_relaxed);
    stats.invalid = invalid.load(std::memory_order_relaxed);
    stats.decode_errors = decode_errors.load(std::memory_order_relaxed);
    return stats;
  }
};

}  // namespace crowdweb::transport

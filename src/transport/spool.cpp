#include "transport/spool.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <deque>
#include <filesystem>
#include <mutex>

#include "data/dataset_io.hpp"
#include "store/format.hpp"
#include "transport/frame.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::transport {

namespace fs = std::filesystem;

std::optional<std::uint64_t> parse_spool_segment_name(std::string_view name) {
  constexpr std::string_view prefix = "spool-";
  constexpr std::string_view suffix = ".spl";
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  const std::string_view digits = name.substr(prefix.size(), 16);
  std::uint64_t seq = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), seq, 16);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) return std::nullopt;
  return seq;
}

std::string spool_segment_name(std::uint64_t seq) {
  return crowdweb::format("spool-{:016x}.spl", seq);
}

namespace {

bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::write(fd, bytes.data(), bytes.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string spool_header() {
  std::string head;
  store::put_u32(head, kSpoolMagic);
  head.push_back(static_cast<char>(kSpoolVersion));
  head.append(3, '\0');
  return head;
}

}  // namespace

struct Spool::Impl {
  SpoolConfig config;

  struct Segment {
    std::uint64_t seq = 0;
    std::string path;
    std::size_t bytes = 0;
  };

  mutable std::mutex mutex;
  std::deque<Segment> segments;  // oldest first; back may be the write segment
  int write_fd = -1;             // -1 = no open write segment
  std::uint64_t next_segment_seq = 1;
  std::uint64_t next_frame_seq = 1;
  std::size_t total_bytes = 0;

  // Read cursor over the front segment.
  bool read_loaded = false;
  std::string read_buffer;
  std::size_t read_offset = 0;
  std::size_t peek_consumed = 0;  ///< bytes of the frame peek() decoded
  std::size_t peek_events = 0;

  SpoolStats counters;  // depth fields filled at stats() time

  telemetry::Gauge* depth_bytes_gauge = nullptr;
  telemetry::Gauge* depth_frames_gauge = nullptr;
  telemetry::Counter* spooled_total = nullptr;
  telemetry::Counter* drained_total = nullptr;
  telemetry::Counter* dropped_total = nullptr;
  std::size_t depth_frames = 0;

  ~Impl() { close_write(); }

  void init_metrics() {
    telemetry::Registry* metrics = config.metrics;
    if (metrics == nullptr) return;
    depth_bytes_gauge = &metrics->gauge("crowdweb_transport_spool_depth_bytes",
                                        "On-disk bytes across spool segments.");
    depth_frames_gauge =
        &metrics->gauge("crowdweb_transport_spool_depth_frames",
                        "Spooled frames waiting to be drained into the queue.");
    spooled_total = &metrics->counter("crowdweb_transport_spool_frames_spooled_total",
                                      "Frames absorbed by the disk spool.");
    drained_total = &metrics->counter("crowdweb_transport_spool_frames_drained_total",
                                      "Spooled frames drained into the ingest queue.");
    dropped_total = &metrics->counter(
        "crowdweb_transport_spool_frames_dropped_total",
        "Corrupt or torn spool content skipped on drain (counted per gap).");
  }

  void refresh_gauges() {
    if (depth_bytes_gauge != nullptr)
      depth_bytes_gauge->set(static_cast<double>(total_bytes));
    if (depth_frames_gauge != nullptr)
      depth_frames_gauge->set(static_cast<double>(depth_frames));
  }

  void close_write() {
    if (write_fd >= 0) ::close(write_fd);
    write_fd = -1;
  }

  /// Counts the decodable frames of an adopted segment (open()-time
  /// scan, so depth_frames is honest after a restart).
  static std::size_t count_frames(std::string_view bytes) {
    std::size_t frames = 0;
    std::string_view rest = bytes.size() >= kSpoolHeaderBytes
                                ? bytes.substr(kSpoolHeaderBytes)
                                : std::string_view{};
    while (!rest.empty()) {
      const FrameDecodeResult decoded = decode_frame(rest);
      if (decoded.state != FrameState::kComplete) break;
      if (decoded.frame.type == FrameType::kData) ++frames;
      rest.remove_prefix(decoded.consumed);
    }
    return frames;
  }

  Status open() {
    std::lock_guard<std::mutex> lock(mutex);
    std::error_code ec;
    fs::create_directories(config.dir, ec);
    if (ec)
      return io_error(crowdweb::format("cannot create spool dir {}: {}", config.dir,
                                       ec.message()));
    std::vector<Segment> adopted;
    for (const fs::directory_entry& entry : fs::directory_iterator(config.dir, ec)) {
      const std::string name = entry.path().filename().string();
      const auto seq = parse_spool_segment_name(name);
      if (!seq) continue;
      Segment segment;
      segment.seq = *seq;
      segment.path = entry.path().string();
      std::error_code size_ec;
      segment.bytes = static_cast<std::size_t>(fs::file_size(entry.path(), size_ec));
      adopted.push_back(std::move(segment));
    }
    if (ec)
      return io_error(
          crowdweb::format("cannot list spool dir {}: {}", config.dir, ec.message()));
    std::sort(adopted.begin(), adopted.end(),
              [](const Segment& a, const Segment& b) { return a.seq < b.seq; });
    for (Segment& segment : adopted) {
      total_bytes += segment.bytes;
      if (const auto bytes = data::read_file(segment.path))
        depth_frames += count_frames(*bytes);
      next_segment_seq = std::max(next_segment_seq, segment.seq + 1);
      segments.push_back(std::move(segment));
    }
    if (!segments.empty())
      log_info("spool adopted {} segment(s), {} frame(s), {} byte(s) from {}",
               segments.size(), depth_frames, total_bytes, config.dir);
    refresh_gauges();
    return Status::ok();
  }

  bool append(std::span<const ingest::IngestEvent> events) {
    const std::string frame = encode_data_frame(next_frame_seq, events);
    std::lock_guard<std::mutex> lock(mutex);
    ++next_frame_seq;
    std::size_t needed = frame.size();
    const bool rotate = write_fd < 0 || segments.empty() ||
                        segments.back().bytes >= config.segment_bytes;
    if (rotate) needed += kSpoolHeaderBytes;
    if (total_bytes + needed > config.max_bytes) return false;
    if (rotate) {
      close_write();
      Segment segment;
      segment.seq = next_segment_seq++;
      segment.path = (fs::path(config.dir) / spool_segment_name(segment.seq)).string();
      write_fd = ::open(segment.path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                        0644);
      if (write_fd < 0) {
        log_error("spool cannot open {}: {}", segment.path, std::strerror(errno));
        return false;
      }
      if (!write_all(write_fd, spool_header())) {
        close_write();
        return false;
      }
      segment.bytes = kSpoolHeaderBytes;
      total_bytes += kSpoolHeaderBytes;
      segments.push_back(std::move(segment));
    }
    if (!write_all(write_fd, frame)) {
      close_write();  // next append rotates past the damaged segment
      return false;
    }
    segments.back().bytes += frame.size();
    total_bytes += frame.size();
    ++depth_frames;
    ++counters.frames_spooled;
    counters.events_spooled += events.size();
    if (spooled_total != nullptr) spooled_total->increment();
    refresh_gauges();
    return true;
  }

  /// Drops the front segment (read side) and resets the read cursor.
  void drop_front_segment() {
    std::error_code ec;
    fs::remove(segments.front().path, ec);
    total_bytes -= std::min(total_bytes, segments.front().bytes);
    segments.pop_front();
    read_loaded = false;
    read_buffer.clear();
    read_offset = 0;
  }

  bool peek(std::vector<ingest::IngestEvent>& events) {
    std::lock_guard<std::mutex> lock(mutex);
    while (true) {
      if (!read_loaded) {
        if (segments.empty()) {
          refresh_gauges();
          return false;
        }
        // Reading the segment still being written: seal it so frames
        // appended after this load go to a fresh segment.
        if (segments.size() == 1 && write_fd >= 0) close_write();
        const auto bytes = data::read_file(segments.front().path);
        if (!bytes || bytes->size() < kSpoolHeaderBytes) {
          note_drop("unreadable or truncated segment header");
          drop_front_segment();
          continue;
        }
        store::ByteReader head(*bytes);
        std::uint32_t magic = 0;
        head.read_u32(magic);
        if (magic != kSpoolMagic || (*bytes)[4] != static_cast<char>(kSpoolVersion)) {
          note_drop("bad segment magic/version");
          drop_front_segment();
          continue;
        }
        read_buffer = *bytes;
        read_offset = kSpoolHeaderBytes;
        read_loaded = true;
      }
      if (read_offset >= read_buffer.size()) {
        drop_front_segment();
        continue;
      }
      const FrameDecodeResult decoded =
          decode_frame(std::string_view(read_buffer).substr(read_offset));
      if (decoded.state == FrameState::kComplete) {
        if (decoded.frame.type != FrameType::kData) {
          note_drop("non-data frame in spool");
          read_offset += decoded.consumed;
          continue;
        }
        events = decoded.frame.events;
        peek_consumed = decoded.consumed;
        peek_events = events.size();
        return true;
      }
      // Torn tail (kNeedMore on a fully loaded segment) or a corrupt
      // frame: there is no resync point past a bad header, so the rest
      // of this segment is skipped, counted as one gap.
      note_drop(decoded.state == FrameState::kNeedMore
                    ? "torn tail"
                    : decoded.error.c_str());
      read_offset = read_buffer.size();
    }
  }

  void note_drop(const char* why) {
    log_warn("spool skipping damaged content in {}: {}",
             segments.empty() ? "?" : segments.front().path, why);
    ++counters.frames_dropped;
    if (dropped_total != nullptr) dropped_total->increment();
  }

  void pop() {
    std::lock_guard<std::mutex> lock(mutex);
    if (!read_loaded || peek_consumed == 0) return;
    read_offset += peek_consumed;
    peek_consumed = 0;
    ++counters.frames_drained;
    counters.events_drained += peek_events;
    if (depth_frames > 0) --depth_frames;
    if (drained_total != nullptr) drained_total->increment();
    if (read_offset >= read_buffer.size()) drop_front_segment();
    refresh_gauges();
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex);
    return segments.empty();
  }

  SpoolStats stats() const {
    std::lock_guard<std::mutex> lock(mutex);
    SpoolStats stats = counters;
    stats.depth_frames = depth_frames;
    stats.depth_bytes = total_bytes;
    stats.segments = segments.size();
    return stats;
  }
};

Spool::Spool(SpoolConfig config) : impl_(std::make_unique<Impl>()) {
  impl_->config = std::move(config);
  impl_->init_metrics();
}

Spool::~Spool() = default;

Status Spool::open() { return impl_->open(); }

bool Spool::append(std::span<const ingest::IngestEvent> events) {
  return impl_->append(events);
}

bool Spool::peek(std::vector<ingest::IngestEvent>& events) { return impl_->peek(events); }

void Spool::pop() { impl_->pop(); }

bool Spool::empty() const { return impl_->empty(); }

SpoolStats Spool::stats() const { return impl_->stats(); }

}  // namespace crowdweb::transport

// The CSV-over-HTTP ingest source.
//
// POST /api/ingest bodies ("[user,]category,lat,lon,timestamp") are the
// original, human-debuggable transport; this refactor moves the body
// parsing and response rendering out of core/handlers so the route is
// just one IngestSource among several feeding the same pipeline. The
// response body reports the full outcome split — accepted, rejected,
// spooled, invalid — plus queue depth and capacity so producers can
// pace themselves, and a 429 carries Retry-After of one rebuild
// interval.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "http/message.hpp"
#include "ingest/event.hpp"
#include "ingest/worker.hpp"
#include "transport/pipeline.hpp"
#include "transport/source.hpp"
#include "util/status.hpp"

namespace crowdweb::transport {

/// The parsed body of a POST /api/ingest request.
struct ParsedIngest {
  std::vector<ingest::IngestEvent> events;
  std::uint64_t received = 0;  ///< data rows in the body
  std::uint64_t invalid = 0;   ///< rows that failed validation
};

/// Parses the ingest CSV body ("[user,]category,lat,lon,timestamp").
/// `allocate_guest` is invoked once iff the anonymous header form is
/// used; its id substitutes for the missing user column. Callers must
/// account `invalid` themselves (IngestWorker::note_invalid or
/// IngestPipeline::note_invalid). A non-OK status is kInvalidArgument
/// for a bad header (message is the body to serve) or the CSV parser's
/// own error.
[[nodiscard]] Result<ParsedIngest> parse_ingest_csv(
    const http::Request& request, const data::Taxonomy& taxonomy,
    const std::function<data::UserId()>& allocate_guest);

/// The 400 for a parse_ingest_csv failure: bad-header bodies stay the
/// bare message; parser errors keep their "<code>: <message>" form.
[[nodiscard]] http::Response bad_ingest_request(const Status& status);

/// Renders the POST /api/ingest response. 200 when anything was taken
/// (spooled counts: those events are the deployment's responsibility
/// now); 429 — with Retry-After of one rebuild interval, rounded up to
/// whole seconds, floor 1 — when rows were submitted and none were.
/// The body always carries queue_depth and queue_capacity so a
/// backpressured producer can size its retry.
[[nodiscard]] http::Response ingest_response(const ParsedIngest& parsed,
                                             const PipelineOutcome& outcome,
                                             const ingest::IngestStats& stats,
                                             std::chrono::milliseconds rebuild_interval);

/// The HTTP CSV route viewed as an IngestSource: passive (the HTTP
/// server owns the sockets), it parses bodies and funnels them through
/// the shared pipeline. Register handle() as the POST /api/ingest
/// target.
class HttpCsvSource final : public IngestSource {
 public:
  struct Config {
    /// Must outlive the source (category names -> ids).
    const data::Taxonomy* taxonomy = nullptr;
    /// Guest id allocator for the anonymous header form.
    std::function<data::UserId()> allocate_guest;
    /// Snapshot of worker/router stats for the response body.
    std::function<ingest::IngestStats()> stats;
    /// Retry-After basis for 429s.
    std::chrono::milliseconds rebuild_interval{2'000};
  };

  /// `pipeline` must outlive the source.
  HttpCsvSource(IngestPipeline& pipeline, Config config);
  ~HttpCsvSource() override;

  [[nodiscard]] http::Response handle(const http::Request& request);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] Status start() override;
  void stop() override;
  [[nodiscard]] bool running() const noexcept override;
  [[nodiscard]] SourceStats stats() const noexcept override;

 private:
  IngestPipeline& pipeline_;
  Config config_;
  SourceCounters counters_;
  std::atomic<bool> running_{false};
};

}  // namespace crowdweb::transport

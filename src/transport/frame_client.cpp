#include "transport/frame_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/format.hpp"

namespace crowdweb::transport {

struct FrameClient::Impl {
  int fd = -1;
  std::uint64_t next_seq = 1;
  std::string inbox;
  std::chrono::milliseconds timeout{5'000};

  ~Impl() { close(); }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    inbox.clear();
  }

  Status write_all(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        close();
        return io_error(crowdweb::format("frame send failed: {}",
                                         n < 0 ? std::strerror(errno) : "closed"));
      }
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return Status::ok();
  }

  Result<Frame> read_frame() {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      const FrameDecodeResult decoded = decode_frame(inbox);
      if (decoded.state == FrameState::kComplete) {
        Frame frame = decoded.frame;
        inbox.erase(0, decoded.consumed);
        return frame;
      }
      if (decoded.state == FrameState::kError) {
        close();
        return io_error(crowdweb::format("bad frame from listener: {}", decoded.error));
      }
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        close();
        return unavailable("timed out waiting for frame ack");
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        close();
        return io_error(crowdweb::format("poll failed: {}", std::strerror(errno)));
      }
      if (ready == 0) continue;  // deadline re-checked above
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        close();
        return io_error("listener closed the connection");
      }
      inbox.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

FrameClient::FrameClient() : impl_(std::make_unique<Impl>()) {}

FrameClient::~FrameClient() = default;

Status FrameClient::connect_tcp(const std::string& host, std::uint16_t port) {
  close();
  impl_->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (impl_->fd < 0) return io_error("cannot create tcp socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    impl_->close();
    return invalid_argument(crowdweb::format("bad host address {}", host));
  }
  if (::connect(impl_->fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = io_error(
        crowdweb::format("cannot connect to {}:{}: {}", host, port, std::strerror(errno)));
    impl_->close();
    return status;
  }
  const int enable = 1;
  ::setsockopt(impl_->fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return Status::ok();
}

Status FrameClient::connect_uds(const std::string& path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return invalid_argument("uds path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  impl_->fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (impl_->fd < 0) return io_error("cannot create uds socket");
  if (::connect(impl_->fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = io_error(
        crowdweb::format("cannot connect to {}: {}", path, std::strerror(errno)));
    impl_->close();
    return status;
  }
  return Status::ok();
}

void FrameClient::close() { impl_->close(); }

bool FrameClient::connected() const noexcept { return impl_->fd >= 0; }

Result<FrameAck> FrameClient::send(std::span<const ingest::IngestEvent> events) {
  if (impl_->fd < 0) return unavailable("frame client is not connected");
  const std::uint64_t seq = impl_->next_seq++;
  if (Status status = impl_->write_all(encode_data_frame(seq, events)); !status.is_ok())
    return status;
  while (true) {
    Result<Frame> frame = impl_->read_frame();
    if (!frame.is_ok()) return frame.status();
    if (frame->type != FrameType::kAck) continue;  // tolerate non-ack noise
    if (frame->seq != seq) {
      impl_->close();
      return io_error(crowdweb::format("ack sequence mismatch (sent {}, got {})", seq,
                                       frame->seq));
    }
    return frame->ack;
  }
}

void FrameClient::set_timeout(std::chrono::milliseconds timeout) noexcept {
  impl_->timeout = timeout;
}

ingest::ReplaySink frame_sink(std::shared_ptr<FrameClient> client) {
  return [client = std::move(client)](std::span<const ingest::IngestEvent> events)
             -> Result<ingest::SinkReport> {
    Result<FrameAck> ack = client->send(events);
    if (!ack.is_ok()) return ack.status();
    ingest::SinkReport report;
    report.accepted = ack->accepted + ack->spooled;
    report.rejected = ack->rejected;
    return report;
  };
}

}  // namespace crowdweb::transport

// IngestPipeline: the single funnel every transport submits through.
//
// A source (HTTP CSV route, framed TCP/UDS listener, replay sink) hands
// batches to submit(); the pipeline pushes them into the deployment's
// queue via the SubmitFn, and — when a spool is configured — absorbs
// the rejected suffix onto disk instead of bouncing it back to the
// producer. A background drain source (IngestSource "spool") feeds
// spooled frames back into the queue as capacity frees up, preserving
// arrival order. All outcomes land on the crowdweb_transport_* metric
// families, labeled by source.
//
// SubmitFn contract: when a batch is partially accepted, the *suffix*
// of the span must be the rejected part (IngestWorker::submit and
// IngestQueue::push_batch fill front to back, so both qualify).
// shard::ShardRouter::submit partitions batches across shards and does
// NOT reject a suffix — per-shard frame listeners therefore run
// spool-less (see shard/transport.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "ingest/event.hpp"
#include "ingest/worker.hpp"
#include "telemetry/metrics.hpp"
#include "transport/source.hpp"
#include "transport/spool.hpp"
#include "util/status.hpp"

namespace crowdweb::transport {

/// Outcome of one submit(): every offered event is exactly one of
/// accepted, rejected, or spooled.
struct PipelineOutcome {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t spooled = 0;
};

using SubmitFn = std::function<ingest::SubmitResult(std::span<const ingest::IngestEvent>)>;

struct PipelineConfig {
  /// Disk spool absorbing rejected suffixes. `spool.dir` empty = no
  /// spool: rejections surface to the producer (the pre-transport
  /// behavior). `spool.metrics` null inherits `metrics`.
  SpoolConfig spool;
  /// Registry for the crowdweb_transport_* families. Null = private
  /// registry (stats still work, nothing is scraped).
  telemetry::Registry* metrics = nullptr;
  /// Backoff between drain attempts while the queue is still full.
  std::chrono::milliseconds drain_retry{20};
  /// Producer-side invalid-row accounting hook (e.g.
  /// IngestWorker::note_invalid). Optional.
  std::function<void(std::uint64_t)> note_invalid;
};

class IngestPipeline {
 public:
  IngestPipeline(SubmitFn submit, PipelineConfig config = {});
  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Opens the spool (adopting crash survivors) and starts its drain
  /// source. A no-op without a configured spool — a spool-less pipeline
  /// may be used without start()/stop().
  [[nodiscard]] Status start();

  /// Stops the drain source; spooled-but-undrained frames stay on disk
  /// for the next start (at-least-once).
  void stop();

  /// Submits one batch for `source` ("http_csv", "tcp", ...): queue
  /// first, spool for the rejected suffix. Thread-safe. Counts one
  /// frame + the per-event outcomes onto the metric families.
  PipelineOutcome submit(std::span<const ingest::IngestEvent> events,
                         std::string_view source);

  /// Accounts rows a source refused before submission. Thread-safe.
  void note_invalid(std::uint64_t count, std::string_view source);

  /// Accounts a malformed frame / body for `source`. Thread-safe.
  void note_decode_error(std::string_view source);

  /// The spool, or null when not configured.
  [[nodiscard]] Spool* spool() noexcept;

  /// The drain source ("spool"), or null when no spool is configured.
  [[nodiscard]] IngestSource* spool_source() noexcept;

  /// Blocks until the spool is empty and fully drained (true) or the
  /// timeout expires. True immediately without a spool.
  [[nodiscard]] bool wait_until_drained(std::chrono::milliseconds timeout);

  struct Impl;  // public so the drain source (pipeline.cpp) can hold a reference

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdweb::transport

#include "transport/pipeline.hpp"

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace crowdweb::transport {

struct IngestPipeline::Impl {
  SubmitFn submit_fn;
  PipelineConfig config;
  std::unique_ptr<Spool> spool;
  std::unique_ptr<IngestSource> drain_source;  // created with the spool

  telemetry::CounterFamily* frames_family = nullptr;
  telemetry::CounterFamily* events_family = nullptr;
  telemetry::CounterFamily* decode_errors_family = nullptr;

  // Drain-source state: one thread replays spooled frames into the
  // queue as capacity frees up.
  std::mutex drain_mutex;
  std::condition_variable drain_cv;
  bool drain_stop = false;
  bool drain_idle = true;  ///< true while the drainer is parked on an empty spool
  std::thread drain_thread;
  SourceCounters drain_counters;
  std::atomic<bool> drain_running{false};

  void init_metrics() {
    telemetry::Registry* metrics = config.metrics;
    if (metrics == nullptr) return;
    frames_family = &metrics->counter_family(
        "crowdweb_transport_frames_total",
        "Ingest batches received, by transport source.", {"source"});
    events_family = &metrics->counter_family(
        "crowdweb_transport_events_total",
        "Ingest events by transport source and outcome "
        "(accepted|rejected|spooled|invalid).",
        {"source", "outcome"});
    decode_errors_family = &metrics->counter_family(
        "crowdweb_transport_decode_errors_total",
        "Malformed frames or bodies refused, by transport source.", {"source"});
  }

  void count_events(std::string_view source, const char* outcome, std::size_t n) {
    if (events_family == nullptr || n == 0) return;
    events_family->with_labels({std::string(source), outcome})
        .increment(static_cast<std::uint64_t>(n));
  }

  PipelineOutcome submit(std::span<const ingest::IngestEvent> events,
                         std::string_view source) {
    PipelineOutcome outcome;
    const ingest::SubmitResult result = submit_fn(events);
    outcome.accepted = result.accepted;
    if (result.rejected > 0) {
      // The queue fills front to back, so the rejected part is exactly
      // the batch suffix (see the SubmitFn contract in pipeline.hpp).
      const auto suffix = events.subspan(events.size() - result.rejected);
      if (spool != nullptr && spool->append(suffix)) {
        outcome.spooled = result.rejected;
        drain_cv.notify_one();
      } else {
        outcome.rejected = result.rejected;
      }
    }
    if (frames_family != nullptr)
      frames_family->with_labels({std::string(source)}).increment();
    count_events(source, "accepted", outcome.accepted);
    count_events(source, "rejected", outcome.rejected);
    count_events(source, "spooled", outcome.spooled);
    return outcome;
  }

  void drain_run() {
    std::vector<ingest::IngestEvent> events;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(drain_mutex);
        if (drain_stop) return;
      }
      events.clear();
      if (!spool->peek(events)) {
        std::unique_lock<std::mutex> lock(drain_mutex);
        drain_idle = true;
        drain_cv.notify_all();  // wait_until_drained watchers
        drain_cv.wait_for(lock, config.drain_retry * 5,
                          [this] { return drain_stop; });
        drain_idle = false;
        continue;
      }
      drain_counters.frames.fetch_add(1, std::memory_order_relaxed);
      drain_counters.events.fetch_add(events.size(), std::memory_order_relaxed);
      // Push the frame until the queue takes all of it; a partial
      // accept leaves the suffix for the next attempt after a backoff.
      std::size_t offset = 0;
      bool interrupted = false;
      while (offset < events.size()) {
        const ingest::SubmitResult result = submit_fn(
            std::span<const ingest::IngestEvent>(events).subspan(offset));
        offset += result.accepted;
        drain_counters.accepted.fetch_add(result.accepted, std::memory_order_relaxed);
        if (result.rejected == 0) break;
        std::unique_lock<std::mutex> lock(drain_mutex);
        if (drain_cv.wait_for(lock, config.drain_retry, [this] { return drain_stop; })) {
          interrupted = true;
          break;
        }
      }
      if (interrupted && offset < events.size()) return;  // frame stays spooled
      spool->pop();
      count_events("spool", "accepted", offset);
      if (frames_family != nullptr) frames_family->with_labels({"spool"}).increment();
    }
  }
};

namespace {

/// The drain thread viewed through the IngestSource interface.
class SpoolSource final : public IngestSource {
 public:
  explicit SpoolSource(IngestPipeline::Impl& impl) : impl_(impl) {}
  ~SpoolSource() override { stop(); }

  [[nodiscard]] std::string_view name() const noexcept override { return "spool"; }

  [[nodiscard]] Status start() override {
    if (impl_.drain_running.load()) return Status::ok();
    {
      std::lock_guard<std::mutex> lock(impl_.drain_mutex);
      impl_.drain_stop = false;
      impl_.drain_idle = false;
    }
    impl_.drain_thread = std::thread([this] { impl_.drain_run(); });
    impl_.drain_running.store(true);
    return Status::ok();
  }

  void stop() override {
    if (!impl_.drain_running.load()) return;
    {
      std::lock_guard<std::mutex> lock(impl_.drain_mutex);
      impl_.drain_stop = true;
    }
    impl_.drain_cv.notify_all();
    if (impl_.drain_thread.joinable()) impl_.drain_thread.join();
    impl_.drain_running.store(false);
  }

  [[nodiscard]] bool running() const noexcept override {
    return impl_.drain_running.load();
  }

  [[nodiscard]] SourceStats stats() const noexcept override {
    return impl_.drain_counters.snapshot();
  }

 private:
  IngestPipeline::Impl& impl_;
};

}  // namespace

IngestPipeline::IngestPipeline(SubmitFn submit, PipelineConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->submit_fn = std::move(submit);
  impl_->config = std::move(config);
  impl_->init_metrics();
  if (!impl_->config.spool.dir.empty()) {
    if (impl_->config.spool.metrics == nullptr)
      impl_->config.spool.metrics = impl_->config.metrics;
    impl_->spool = std::make_unique<Spool>(impl_->config.spool);
    impl_->drain_source = std::make_unique<SpoolSource>(*impl_);
  }
}

IngestPipeline::~IngestPipeline() { stop(); }

Status IngestPipeline::start() {
  if (impl_->spool == nullptr) return Status::ok();
  if (Status status = impl_->spool->open(); !status.is_ok()) return status;
  return impl_->drain_source->start();
}

void IngestPipeline::stop() {
  if (impl_->drain_source != nullptr) impl_->drain_source->stop();
}

PipelineOutcome IngestPipeline::submit(std::span<const ingest::IngestEvent> events,
                                       std::string_view source) {
  return impl_->submit(events, source);
}

void IngestPipeline::note_invalid(std::uint64_t count, std::string_view source) {
  if (count == 0) return;
  impl_->count_events(source, "invalid", count);
  if (impl_->config.note_invalid) impl_->config.note_invalid(count);
}

void IngestPipeline::note_decode_error(std::string_view source) {
  if (impl_->decode_errors_family != nullptr)
    impl_->decode_errors_family->with_labels({std::string(source)}).increment();
}

Spool* IngestPipeline::spool() noexcept { return impl_->spool.get(); }

IngestSource* IngestPipeline::spool_source() noexcept {
  return impl_->drain_source.get();
}

bool IngestPipeline::wait_until_drained(std::chrono::milliseconds timeout) {
  if (impl_->spool == nullptr) return true;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(impl_->drain_mutex);
  return impl_->drain_cv.wait_until(lock, deadline, [this] {
    return impl_->drain_idle && impl_->spool->empty();
  });
}

}  // namespace crowdweb::transport

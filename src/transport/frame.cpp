#include "transport/frame.hpp"

#include "store/crc32.hpp"
#include "store/format.hpp"
#include "util/format.hpp"

namespace crowdweb::transport {

namespace {

/// The header bytes the checksum covers (everything before the CRC).
constexpr std::size_t kCrcOffset = 20;

std::string encode_frame(FrameType type, std::uint64_t seq, std::string_view payload) {
  std::string head;
  head.reserve(kCrcOffset);
  store::put_u32(head, kFrameMagic);
  head.push_back(static_cast<char>(kFrameVersion));
  head.push_back(static_cast<char>(type));
  store::put_u16(head, 0);  // flags, reserved
  store::put_u64(head, seq);
  store::put_u32(head, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = store::crc32(head);
  crc = store::crc32(payload, crc);

  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out += head;
  store::put_u32(out, crc);
  out += payload;
  return out;
}

}  // namespace

std::string encode_data_frame(std::uint64_t seq,
                              std::span<const ingest::IngestEvent> events) {
  std::string payload;
  payload.reserve(4 + events.size() * kFrameEventBytes);
  store::put_u32(payload, static_cast<std::uint32_t>(events.size()));
  for (const ingest::IngestEvent& event : events) {
    store::put_u32(payload, event.user);
    store::put_u16(payload, event.category);
    store::put_f64(payload, event.position.lat);
    store::put_f64(payload, event.position.lon);
    store::put_i64(payload, event.timestamp);
  }
  return encode_frame(FrameType::kData, seq, payload);
}

std::string encode_ack_frame(std::uint64_t seq, const FrameAck& ack) {
  std::string payload;
  payload.reserve(16);
  store::put_u32(payload, ack.accepted);
  store::put_u32(payload, ack.rejected);
  store::put_u32(payload, ack.spooled);
  store::put_u32(payload, ack.invalid);
  return encode_frame(FrameType::kAck, seq, payload);
}

FrameDecodeResult decode_frame(std::string_view buffer, std::size_t max_payload_bytes) {
  FrameDecodeResult result;
  const auto fail = [&result](std::string message) -> FrameDecodeResult& {
    result.state = FrameState::kError;
    result.error = std::move(message);
    return result;
  };

  if (buffer.size() < kFrameHeaderBytes) return result;  // kNeedMore
  store::ByteReader reader(buffer);
  std::uint32_t magic = 0;
  std::uint16_t version_and_type = 0;
  std::uint16_t flags = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;
  reader.read_u32(magic);
  reader.read_u16(version_and_type);
  reader.read_u16(flags);
  reader.read_u64(seq);
  reader.read_u32(payload_bytes);
  reader.read_u32(crc);
  if (magic != kFrameMagic)
    return fail(crowdweb::format("bad frame magic {:08x}", magic));
  const auto version = static_cast<std::uint8_t>(version_and_type & 0xFF);
  const auto type = static_cast<std::uint8_t>(version_and_type >> 8);
  if (version != kFrameVersion)
    return fail(crowdweb::format("unsupported frame version {}", version));
  if (type != static_cast<std::uint8_t>(FrameType::kData) &&
      type != static_cast<std::uint8_t>(FrameType::kAck))
    return fail(crowdweb::format("unknown frame type {}", type));
  if (flags != 0) return fail(crowdweb::format("reserved frame flags {:04x}", flags));
  if (payload_bytes > max_payload_bytes)
    return fail(crowdweb::format("frame payload {} exceeds cap {}", payload_bytes,
                                 max_payload_bytes));
  const std::size_t total = kFrameHeaderBytes + payload_bytes;
  if (buffer.size() < total) return result;  // kNeedMore
  const std::string_view payload = buffer.substr(kFrameHeaderBytes, payload_bytes);
  std::uint32_t computed = store::crc32(buffer.substr(0, kCrcOffset));
  computed = store::crc32(payload, computed);
  if (computed != crc)
    return fail(crowdweb::format("frame checksum mismatch (stored {:08x}, computed {:08x})",
                                 crc, computed));

  result.frame.type = static_cast<FrameType>(type);
  result.frame.seq = seq;
  store::ByteReader body(payload);
  if (result.frame.type == FrameType::kData) {
    std::uint32_t count = 0;
    if (!body.read_u32(count) ||
        payload_bytes != 4 + static_cast<std::size_t>(count) * kFrameEventBytes)
      return fail("data frame payload length does not match its event count");
    result.frame.events.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ingest::IngestEvent event;
      std::uint16_t category = 0;
      body.read_u32(event.user);
      body.read_u16(category);
      body.read_f64(event.position.lat);
      body.read_f64(event.position.lon);
      body.read_i64(event.timestamp);
      if (body.truncated()) return fail("data frame payload truncated");  // unreachable
      event.category = category;
      result.frame.events.push_back(event);
    }
  } else {
    if (payload_bytes != 16) return fail("ack frame payload must be 16 bytes");
    body.read_u32(result.frame.ack.accepted);
    body.read_u32(result.frame.ack.rejected);
    body.read_u32(result.frame.ack.spooled);
    body.read_u32(result.frame.ack.invalid);
  }
  result.state = FrameState::kComplete;
  result.consumed = total;
  return result;
}

}  // namespace crowdweb::transport

// Server-sent events: the outbound half of the transport subsystem.
//
// Inbound transports feed epochs in; SSE pushes them back out. A
// browser (or the live_monitor example) opens GET /api/stream/epochs
// or /api/stream/crowd/:window and receives an event per published
// epoch instead of polling. The EpochStreamPublisher hooks
// SnapshotHub::on_publish and renders each subscribed crowd window
// exactly once per epoch — through the response cache, so the SSE
// payload and the GET /api/crowd/:window body are the same bytes and
// the cache is pre-warmed for free. Fan-out, per-connection send
// buffers, slow-consumer eviction, and the shutdown "bye" event live
// in http::Server (publish_stream).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "http/cache.hpp"
#include "http/message.hpp"
#include "http/server.hpp"
#include "ingest/snapshot.hpp"
#include "util/status.hpp"

namespace crowdweb::transport {

/// Channel names. The epoch channel carries one "epoch" event per
/// publication; each crowd channel carries that window's refreshed
/// distribution as a "crowd" event.
inline constexpr std::string_view kEpochChannel = "epochs";
[[nodiscard]] std::string crowd_channel(int window);
/// Parses "crowd/<window>" back to the window index (nullopt otherwise).
[[nodiscard]] std::optional<int> crowd_channel_window(std::string_view channel);

/// One wire-framed SSE event: "event: <event>\ndata: <line>\n...\n\n".
/// Newlines inside `data` become multiple data: lines, per the spec.
[[nodiscard]] std::string sse_event(std::string_view event, std::string_view data);
/// A comment frame (": <text>\n\n") — keep-alive/noise, ignored by
/// EventSource clients.
[[nodiscard]] std::string sse_comment(std::string_view text);

/// The subscribing response for `channel`: text/event-stream headers,
/// `initial` as the first bytes on the wire, and the stream_channel
/// marker that makes http::Server keep the socket open and fan
/// publish_stream(channel, ...) into it.
[[nodiscard]] http::Response sse_response(std::string channel, std::string initial);

/// Renders the GET /api/crowd/:window response for a snapshot — the
/// publisher calls it (through the cache) once per subscribed window
/// per epoch. Wired to core::handlers::crowd_handler by the API layer.
using CrowdRenderFn =
    std::function<http::Response(const ingest::PlatformSnapshot&, int window)>;

struct EpochStreamOptions {
  /// Epoch-keyed response cache shared with the GET routes. When set,
  /// crowd payloads are looked up / inserted at the snapshot's epoch,
  /// so SSE and HTTP serve identical bytes from one render. The
  /// cache-epoch bump hook must be registered before the publisher
  /// (core::api does both in order).
  http::ResponseCache* cache = nullptr;
};

/// Bridges SnapshotHub publications onto the server's SSE channels.
///
/// SnapshotHub hooks cannot be removed, so the hook holds a shared
/// state block with an active flag the destructor flips — destroying
/// the publisher (before the server, after the worker stops) makes the
/// orphaned hook a no-op rather than a dangling call.
class EpochStreamPublisher {
 public:
  EpochStreamPublisher(http::Server& server, ingest::SnapshotHub& hub,
                       CrowdRenderFn render_crowd, EpochStreamOptions options = {});
  ~EpochStreamPublisher();
  EpochStreamPublisher(const EpochStreamPublisher&) = delete;
  EpochStreamPublisher& operator=(const EpochStreamPublisher&) = delete;

  /// Epoch events published so far (test hook).
  [[nodiscard]] std::uint64_t epochs_published() const noexcept;

  /// The JSON body of an "epoch" event for `snapshot`.
  [[nodiscard]] static std::string epoch_event_json(
      const ingest::PlatformSnapshot& snapshot);

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Minimal blocking SSE consumer for tests and examples: opens the
/// stream with one GET, then yields parsed events as they arrive.
class SseClient {
 public:
  SseClient();
  ~SseClient();
  SseClient(const SseClient&) = delete;
  SseClient& operator=(const SseClient&) = delete;

  struct Event {
    std::string event;  ///< "event:" field ("message" when absent)
    std::string data;   ///< joined "data:" lines
  };

  /// Sends `GET path` and consumes the response head. Non-2xx statuses
  /// are reported as errors (the stream never starts).
  [[nodiscard]] Status connect(const std::string& host, std::uint16_t port,
                               const std::string& path);
  void close();
  [[nodiscard]] bool connected() const noexcept;
  /// HTTP status of the subscribe response (0 before connect).
  [[nodiscard]] int status() const noexcept;

  /// Blocks until the next event frame (comments are skipped) or the
  /// timeout (kUnavailable). kIoError once the server closes the
  /// stream.
  [[nodiscard]] Result<Event> next_event(std::chrono::milliseconds timeout);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdweb::transport

#include "transport/sse.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "json/json.hpp"
#include "util/strings.hpp"

namespace crowdweb::transport {

std::string crowd_channel(int window) {
  return "crowd/" + std::to_string(window);
}

std::optional<int> crowd_channel_window(std::string_view channel) {
  constexpr std::string_view prefix = "crowd/";
  if (channel.substr(0, prefix.size()) != prefix) return std::nullopt;
  const auto window = parse_int(channel.substr(prefix.size()));
  if (!window || *window < 0 || *window > 1'000'000) return std::nullopt;
  return static_cast<int>(*window);
}

std::string sse_event(std::string_view event, std::string_view data) {
  std::string out;
  out.reserve(event.size() + data.size() + 24);
  out += "event: ";
  out += event;
  out += '\n';
  // Each payload line gets its own "data:" field; the client joins them
  // back with '\n', so multi-line JSON survives the framing.
  std::size_t start = 0;
  while (true) {
    const std::size_t end = data.find('\n', start);
    out += "data: ";
    out += data.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                            : end - start);
    out += '\n';
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  out += '\n';
  return out;
}

std::string sse_comment(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 4);
  out += ": ";
  out += text;
  out += "\n\n";
  return out;
}

http::Response sse_response(std::string channel, std::string initial) {
  http::Response response;
  response.status = 200;
  response.headers["Content-Type"] = "text/event-stream";
  response.headers["Cache-Control"] = "no-store";
  response.headers["X-Accel-Buffering"] = "no";  // defeat proxy buffering
  response.body = std::move(initial);
  response.stream_channel = std::move(channel);
  return response;
}

// ---------------------------------------------------------------------------
// EpochStreamPublisher

struct EpochStreamPublisher::State {
  http::Server& server;
  CrowdRenderFn render_crowd;
  EpochStreamOptions options;
  std::atomic<bool> active{true};
  std::atomic<std::uint64_t> epochs_published{0};

  State(http::Server& server_in, CrowdRenderFn render_in, EpochStreamOptions options_in)
      : server(server_in), render_crowd(std::move(render_in)),
        options(std::move(options_in)) {}

  void on_epoch(const ingest::PlatformSnapshot& snapshot) {
    if (!active.load(std::memory_order_acquire)) return;
    epochs_published.fetch_add(1, std::memory_order_relaxed);
    server.publish_stream(std::string(kEpochChannel),
                          sse_event("epoch", epoch_event_json(snapshot)));
    // Render each subscribed crowd window once. The cache (bumped to
    // this epoch by the hook registered before us) makes the bytes the
    // GET route will serve and the bytes we stream the same render.
    for (const std::string& channel : server.stream_channels()) {
      const auto window = crowd_channel_window(channel);
      if (!window) continue;
      const std::string body = render_crowd_body(snapshot, *window);
      if (body.empty()) continue;
      server.publish_stream(channel, sse_event("crowd", body));
    }
  }

  [[nodiscard]] std::string render_crowd_body(const ingest::PlatformSnapshot& snapshot,
                                              int window) {
    const std::string target = "/api/crowd/" + std::to_string(window);
    if (options.cache != nullptr) {
      if (const auto hit = options.cache->lookup("GET", target, /*record_miss=*/false))
        return hit->body;
    }
    http::Response rendered = render_crowd(snapshot, window);
    if (rendered.status != 200) return {};
    if (options.cache != nullptr) {
      if (const auto entry = options.cache->insert("GET", target, rendered))
        return entry->body;
    }
    return std::move(rendered.body);
  }
};

EpochStreamPublisher::EpochStreamPublisher(http::Server& server,
                                           ingest::SnapshotHub& hub,
                                           CrowdRenderFn render_crowd,
                                           EpochStreamOptions options)
    : state_(std::make_shared<State>(server, std::move(render_crowd),
                                     std::move(options))) {
  // The hub never removes hooks, so the hook owns the state block and
  // checks the active flag; after ~EpochStreamPublisher it fires into
  // nothing instead of into a destroyed publisher.
  std::shared_ptr<State> state = state_;
  hub.on_publish([state](const ingest::PlatformSnapshot& snapshot) {
    state->on_epoch(snapshot);
  });
}

EpochStreamPublisher::~EpochStreamPublisher() {
  state_->active.store(false, std::memory_order_release);
}

std::uint64_t EpochStreamPublisher::epochs_published() const noexcept {
  return state_->epochs_published.load(std::memory_order_relaxed);
}

std::string EpochStreamPublisher::epoch_event_json(
    const ingest::PlatformSnapshot& snapshot) {
  return json::dump(json::object(
      {{"epoch", static_cast<std::int64_t>(snapshot.epoch)},
       {"live_checkins", static_cast<std::int64_t>(snapshot.live_checkins)},
       {"live_users", static_cast<std::int64_t>(snapshot.live_users)},
       {"rebuild_ms", snapshot.rebuild_ms},
       {"users", static_cast<std::int64_t>(snapshot.dataset.user_count())},
       {"windows", static_cast<std::int64_t>(snapshot.crowd.window_count())}}));
}

// ---------------------------------------------------------------------------
// SseClient

struct SseClient::Impl {
  int fd = -1;
  int http_status = 0;
  std::string buffer;       // bytes past the response head, unparsed
  bool saw_eof = false;

  ~Impl() { close(); }

  void close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  [[nodiscard]] Status fill(std::chrono::steady_clock::time_point deadline) {
    if (saw_eof) return io_error("stream closed by server");
    while (true) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return unavailable("timed out waiting for SSE data");
      pollfd pfd{fd, POLLIN, 0};
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return io_error("poll: " + std::string(std::strerror(errno)));
      }
      if (ready == 0) return unavailable("timed out waiting for SSE data");
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return io_error("recv: " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        saw_eof = true;
        return io_error("stream closed by server");
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      return Status::ok();
    }
  }

  /// Pops one "...\n\n" frame off the buffer, or nullopt if incomplete.
  [[nodiscard]] std::optional<std::string> pop_frame() {
    // Frames end at a blank line; tolerate \r\n line endings.
    std::size_t scan = 0;
    while (scan < buffer.size()) {
      std::size_t eol = buffer.find('\n', scan);
      if (eol == std::string::npos) return std::nullopt;
      std::size_t line_len = eol - scan;
      if (line_len > 0 && buffer[scan + line_len - 1] == '\r') --line_len;
      if (line_len == 0) {
        std::string frame = buffer.substr(0, scan);
        buffer.erase(0, eol + 1);
        return frame;
      }
      scan = eol + 1;
    }
    return std::nullopt;
  }
};

SseClient::SseClient() : impl_(std::make_unique<Impl>()) {}
SseClient::~SseClient() = default;

Status SseClient::connect(const std::string& host, std::uint16_t port,
                          const std::string& path) {
  close();
  impl_->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (impl_->fd < 0) return io_error("socket: " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return invalid_argument("bad address: " + host);
  }
  if (::connect(impl_->fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status = io_error("connect: " + std::string(std::strerror(errno)));
    close();
    return status;
  }
  const int one = 1;
  ::setsockopt(impl_->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nAccept: text/event-stream\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(impl_->fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = io_error("send: " + std::string(std::strerror(errno)));
      close();
      return status;
    }
    sent += static_cast<std::size_t>(n);
  }

  // Read until the end of the response head, then parse the status line
  // and leave any stream bytes already received in the buffer.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    const Status status = impl_->fill(deadline);
    if (!status.is_ok()) {
      close();
      return status;
    }
    head_end = impl_->buffer.find("\r\n\r\n");
    if (impl_->buffer.size() > 64 * 1024) {
      close();
      return io_error("response head too large");
    }
  }
  const std::string head = impl_->buffer.substr(0, head_end);
  impl_->buffer.erase(0, head_end + 4);
  // "HTTP/1.1 200 OK"
  const std::size_t space = head.find(' ');
  if (space == std::string::npos) {
    close();
    return io_error("malformed status line: " + head.substr(0, head.find("\r\n")));
  }
  const auto status_code = parse_int(std::string_view(head).substr(space + 1, 3));
  if (!status_code) {
    close();
    return io_error("malformed status line: " + head.substr(0, head.find("\r\n")));
  }
  impl_->http_status = static_cast<int>(*status_code);
  if (impl_->http_status / 100 != 2) {
    const Status status =
        failed_precondition("subscribe failed: HTTP " + std::to_string(impl_->http_status));
    close();
    return status;
  }
  return Status::ok();
}

void SseClient::close() {
  impl_->close();
  impl_->buffer.clear();
  impl_->saw_eof = false;
}

bool SseClient::connected() const noexcept { return impl_->fd >= 0; }

int SseClient::status() const noexcept { return impl_->http_status; }

Result<SseClient::Event> SseClient::next_event(std::chrono::milliseconds timeout) {
  if (impl_->fd < 0) return failed_precondition("not connected");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    while (const auto frame = impl_->pop_frame()) {
      Event event;
      bool has_field = false;
      std::size_t start = 0;
      while (start <= frame->size()) {
        std::size_t eol = frame->find('\n', start);
        if (eol == std::string::npos) eol = frame->size();
        std::string_view line(frame->data() + start, eol - start);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        start = eol + 1;
        if (line.empty() || line.front() == ':') continue;  // comment
        const std::size_t colon = line.find(':');
        std::string_view field = line.substr(0, colon);
        std::string_view value =
            colon == std::string_view::npos ? std::string_view{} : line.substr(colon + 1);
        if (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        if (field == "event") {
          event.event = std::string(value);
          has_field = true;
        } else if (field == "data") {
          if (!event.data.empty()) event.data += '\n';
          event.data += value;
          has_field = true;
        }
        // "id" / "retry" fields are tolerated and ignored.
      }
      if (!has_field) continue;  // comment-only frame (ping)
      if (event.event.empty()) event.event = "message";
      return event;
    }
    const Status status = impl_->fill(deadline);
    if (!status.is_ok()) return status;
  }
}

}  // namespace crowdweb::transport

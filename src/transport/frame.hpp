// The binary ingest frame: a compact length-prefixed, checksummed,
// versioned wire format for batched check-ins.
//
// One frame is a 24-byte little-endian header followed by the payload:
//
//   offset  size  field
//   0       4     magic 0x31425743 ("CWB1" as bytes on the wire)
//   4       1     version (currently 1)
//   5       1     type (1 = data, 2 = ack)
//   6       2     flags (reserved; must be 0)
//   8       8     seq (producer-chosen; the ack echoes it)
//   16      4     payload byte count
//   20      4     CRC-32 over header bytes [0, 20) ++ payload
//   24      n     payload
//
// The checksum covers the header (excluding itself), so a single bit
// flip anywhere in the frame — magic, seq, length, or payload — is
// refused; a truncated buffer reports kNeedMore, never a partial frame.
// Data payload: u32 event count, then per event u32 user, u16 category,
// f64 lat, f64 lon, i64 timestamp (30 bytes). Ack payload: u32
// accepted, u32 rejected, u32 spooled, u32 invalid.
//
// CRC-32 and byte order are shared with the durable store
// (store/crc32.hpp, store/format.hpp), so wal_inspect and external
// tooling verify spooled frames the same way they verify WAL records.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/event.hpp"

namespace crowdweb::transport {

inline constexpr std::uint32_t kFrameMagic = 0x31425743u;  // "CWB1"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
inline constexpr std::size_t kFrameEventBytes = 30;
/// Decoders refuse frames whose payload claims more than this, so a
/// corrupt length field cannot make a listener buffer gigabytes.
inline constexpr std::size_t kMaxFramePayloadBytes = 4u * 1024 * 1024;

enum class FrameType : std::uint8_t { kData = 1, kAck = 2 };

/// The receiver's answer to one data frame (echoing its seq).
struct FrameAck {
  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;  ///< queue full and no spool room
  std::uint32_t spooled = 0;   ///< absorbed by the disk spool
  std::uint32_t invalid = 0;   ///< refused before submission
  friend bool operator==(const FrameAck&, const FrameAck&) = default;
};

struct Frame {
  FrameType type = FrameType::kData;
  std::uint64_t seq = 0;
  std::vector<ingest::IngestEvent> events;  ///< kData frames
  FrameAck ack;                             ///< kAck frames
};

enum class FrameState { kNeedMore, kComplete, kError };

struct FrameDecodeResult {
  FrameState state = FrameState::kNeedMore;
  Frame frame;               ///< valid when state == kComplete
  std::size_t consumed = 0;  ///< bytes consumed from the buffer when complete
  std::string error;         ///< human-readable when state == kError
};

[[nodiscard]] std::string encode_data_frame(std::uint64_t seq,
                                            std::span<const ingest::IngestEvent> events);
[[nodiscard]] std::string encode_ack_frame(std::uint64_t seq, const FrameAck& ack);

/// Attempts to decode one frame from the front of `buffer` (incremental:
/// feed it a growing buffer, consume `consumed` bytes on kComplete).
[[nodiscard]] FrameDecodeResult decode_frame(
    std::string_view buffer, std::size_t max_payload_bytes = kMaxFramePayloadBytes);

}  // namespace crowdweb::transport

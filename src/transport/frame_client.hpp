// Blocking producer-side client for the framed binary transport.
//
// One connection, strictly request/response: send() writes a data
// frame and blocks (with a poll() timeout) until the listener's ack
// for that sequence number arrives. frame_sink() adapts a client to
// the replay driver so `crowdweb_replay --sink binary` and the
// live_monitor example reuse the same pacing loop as the CSV path.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "ingest/replay.hpp"
#include "transport/frame.hpp"
#include "util/status.hpp"

namespace crowdweb::transport {

class FrameClient {
 public:
  FrameClient();
  ~FrameClient();
  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  [[nodiscard]] Status connect_tcp(const std::string& host, std::uint16_t port);
  [[nodiscard]] Status connect_uds(const std::string& path);
  void close();
  [[nodiscard]] bool connected() const noexcept;

  /// Sends one data frame and waits for its ack (sequence numbers are
  /// assigned by the client and must match).
  [[nodiscard]] Result<FrameAck> send(std::span<const ingest::IngestEvent> events);

  /// Per-ack wait budget (default 5 s).
  void set_timeout(std::chrono::milliseconds timeout) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Replay sink delivering batches as binary frames over `client`
/// (shared so the sink copy stays cheap). Spooled events count as
/// accepted: the deployment owns them once they are on the spool.
[[nodiscard]] ingest::ReplaySink frame_sink(std::shared_ptr<FrameClient> client);

}  // namespace crowdweb::transport

// Disk spool: absorbs producer bursts the ingest queue rejects.
//
// The WAL records what the worker *accepted*; the spool holds what the
// queue could not take yet, so a saturated deployment degrades to
// "delayed" instead of "429 everything". Frames are appended to
// segment files ("spool-<seq>.spl": an 8-byte header + concatenated
// binary data frames, see frame.hpp) and drained oldest-first by the
// pipeline's spool source. Segments are deleted once fully drained.
//
// Durability is best-effort at-least-once: appends are buffered writes
// (no fsync — the WAL is the durability story once events are
// accepted); after a crash, open() re-adopts whatever segments survive
// and a torn tail is truncated exactly like a WAL tail. Frames that
// fail their checksum are counted and skipped, never replayed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ingest/event.hpp"
#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace crowdweb::transport {

struct SpoolConfig {
  /// Directory for segment files; empty disables the spool.
  std::string dir;
  /// Total on-disk byte cap across segments; appends past it fail (the
  /// caller reports the events rejected).
  std::size_t max_bytes = 64 * 1024 * 1024;
  /// Segment rotation threshold.
  std::size_t segment_bytes = 4 * 1024 * 1024;
  /// Optional registry for the crowdweb_transport_spool_* families.
  /// Must outlive the spool.
  telemetry::Registry* metrics = nullptr;
};

struct SpoolStats {
  std::uint64_t frames_spooled = 0;
  std::uint64_t events_spooled = 0;
  std::uint64_t frames_drained = 0;
  std::uint64_t events_drained = 0;
  std::uint64_t frames_dropped = 0;  ///< corrupt frames skipped on drain
  std::size_t depth_frames = 0;      ///< spooled, not yet drained
  std::size_t depth_bytes = 0;       ///< on-disk bytes across segments
  std::size_t segments = 0;
};

/// "spool-<16 hex digits>.spl" -> its sequence number.
[[nodiscard]] std::optional<std::uint64_t> parse_spool_segment_name(
    std::string_view name);
[[nodiscard]] std::string spool_segment_name(std::uint64_t seq);

inline constexpr std::uint32_t kSpoolMagic = 0x31535743u;  // "CWS1"
inline constexpr std::uint8_t kSpoolVersion = 1;
inline constexpr std::size_t kSpoolHeaderBytes = 8;

class Spool {
 public:
  explicit Spool(SpoolConfig config);
  ~Spool();
  Spool(const Spool&) = delete;
  Spool& operator=(const Spool&) = delete;

  /// Creates the directory if needed and adopts surviving segments
  /// (oldest first) for draining.
  [[nodiscard]] Status open();

  /// Appends one data frame holding `events`. False when the byte cap
  /// would be exceeded or a write fails. Thread-safe.
  [[nodiscard]] bool append(std::span<const ingest::IngestEvent> events);

  /// Decodes the oldest undrained frame into `events` (true), skipping
  /// and counting corrupt frames. False when the spool is empty.
  /// Thread-safe; pop() consumes the peeked frame.
  [[nodiscard]] bool peek(std::vector<ingest::IngestEvent>& events);
  void pop();

  [[nodiscard]] bool empty() const;
  [[nodiscard]] SpoolStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdweb::transport

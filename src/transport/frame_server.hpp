// Framed binary listener: the high-throughput ingest edge.
//
// Producers connect over TCP (or a Unix-domain socket), stream
// length-prefixed checksummed data frames (frame.hpp), and receive one
// ack frame per data frame echoing its sequence number with the
// accepted/rejected/spooled/invalid split. One epoll loop thread owns
// every producer socket: reads, decodes, submits through the
// IngestPipeline inline (queue push is O(batch)), and writes acks.
// A malformed frame is unrecoverable mid-stream (no resync marker), so
// the connection is counted and closed. Idle producers are reaped by
// the same idle-timeout sweep the HTTP server uses.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "telemetry/metrics.hpp"
#include "transport/frame.hpp"
#include "transport/pipeline.hpp"
#include "transport/source.hpp"
#include "util/status.hpp"

namespace crowdweb::transport {

struct FrameServerConfig {
  /// TCP listen address; ignored when `uds_path` is set.
  std::string address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Non-empty switches the listener to a Unix-domain socket at this
  /// path (unlinked and re-bound on start).
  std::string uds_path;
  /// Close producer sockets with no traffic for this long; zero
  /// disables the sweep.
  std::chrono::milliseconds idle_timeout{60'000};
  /// Per-frame payload cap handed to decode_frame().
  std::size_t max_frame_payload_bytes = kMaxFramePayloadBytes;
  /// Optional registry for the listener gauge
  /// (crowdweb_transport_connections). Must outlive the server.
  telemetry::Registry* metrics = nullptr;
};

class FrameServer final : public IngestSource {
 public:
  /// `pipeline` must outlive the server.
  FrameServer(IngestPipeline& pipeline, FrameServerConfig config);
  ~FrameServer() override;
  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] Status start() override;
  void stop() override;
  [[nodiscard]] bool running() const noexcept override;
  [[nodiscard]] SourceStats stats() const noexcept override;

  /// The bound TCP port (after start); 0 for UDS listeners.
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Producer sockets currently open (racy snapshot).
  [[nodiscard]] std::size_t connections() const noexcept;

  /// Connections closed by the idle sweep.
  [[nodiscard]] std::uint64_t idle_closed() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdweb::transport

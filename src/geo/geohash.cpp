#include "geo/geohash.hpp"

#include <algorithm>
#include <array>
#include "util/format.hpp"

namespace crowdweb::geo {

namespace {

constexpr std::string_view kBase32 = "0123456789bcdefghjkmnpqrstuvwxyz";

int base32_index(char c) noexcept {
  const auto pos = kBase32.find(c);
  return pos == std::string_view::npos ? -1 : static_cast<int>(pos);
}

}  // namespace

std::string geohash_encode(const LatLon& p, int precision) {
  precision = std::clamp(precision, 1, 12);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string hash;
  hash.reserve(static_cast<std::size_t>(precision));
  bool even_bit = true;  // longitude first
  int bit = 0;
  int index = 0;
  while (static_cast<int>(hash.size()) < precision) {
    if (even_bit) {
      const double mid = (lon_lo + lon_hi) / 2.0;
      if (p.lon >= mid) {
        index = index * 2 + 1;
        lon_lo = mid;
      } else {
        index *= 2;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (p.lat >= mid) {
        index = index * 2 + 1;
        lat_lo = mid;
      } else {
        index *= 2;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      hash += kBase32[static_cast<std::size_t>(index)];
      bit = 0;
      index = 0;
    }
  }
  return hash;
}

Result<BoundingBox> geohash_decode_bounds(std::string_view hash) {
  if (hash.empty() || hash.size() > 12)
    return invalid_argument(crowdweb::format("geohash length {} out of range", hash.size()));
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  bool even_bit = true;
  for (const char c : hash) {
    const int index = base32_index(c);
    if (index < 0) return parse_error(crowdweb::format("invalid geohash character '{}'", c));
    for (int bit = 4; bit >= 0; --bit) {
      const int value = (index >> bit) & 1;
      if (even_bit) {
        const double mid = (lon_lo + lon_hi) / 2.0;
        (value != 0 ? lon_lo : lon_hi) = mid;
      } else {
        const double mid = (lat_lo + lat_hi) / 2.0;
        (value != 0 ? lat_lo : lat_hi) = mid;
      }
      even_bit = !even_bit;
    }
  }
  BoundingBox box;
  box.min_lat = lat_lo;
  box.max_lat = lat_hi;
  box.min_lon = lon_lo;
  box.max_lon = lon_hi;
  return box;
}

Result<LatLon> geohash_decode(std::string_view hash) {
  auto bounds = geohash_decode_bounds(hash);
  if (!bounds) return bounds.status();
  return bounds->center();
}

}  // namespace crowdweb::geo

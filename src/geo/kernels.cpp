#include "geo/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace crowdweb::geo {

void extend_bounds(BoundingBox& box, std::span<const double> lats,
                   std::span<const double> lons) noexcept {
  double min_lat = box.min_lat;
  double max_lat = box.max_lat;
  double min_lon = box.min_lon;
  double max_lon = box.max_lon;
  const std::size_t n = lats.size();
  for (std::size_t i = 0; i < n; ++i) {
    min_lat = lats[i] < min_lat ? lats[i] : min_lat;
    max_lat = lats[i] > max_lat ? lats[i] : max_lat;
    min_lon = lons[i] < min_lon ? lons[i] : min_lon;
    max_lon = lons[i] > max_lon ? lons[i] : max_lon;
  }
  box.min_lat = min_lat;
  box.max_lat = max_lat;
  box.min_lon = min_lon;
  box.max_lon = max_lon;
}

void clamped_cells(const SpatialGrid& grid, std::span<const double> lats,
                   std::span<const double> lons, std::span<CellId> out) noexcept {
  // Hoisted copies of the grid geometry; the per-point arithmetic is
  // exactly clamped_cell_of's, so the results match bit for bit.
  const BoundingBox& bounds = grid.bounds();
  const double min_lat = bounds.min_lat;
  const double min_lon = bounds.min_lon;
  const double lat_span = bounds.max_lat - bounds.min_lat;
  const double lon_span = bounds.max_lon - bounds.min_lon;
  const std::uint32_t rows = grid.rows();
  const std::uint32_t cols = grid.cols();
  const double max_row = static_cast<double>(rows - 1);
  const double max_col = static_cast<double>(cols - 1);
  const std::size_t n = lats.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double fr = lat_span > 0.0 ? (lats[i] - min_lat) / lat_span : 0.0;
    const double fc = lon_span > 0.0 ? (lons[i] - min_lon) / lon_span : 0.0;
    const auto row = static_cast<std::uint32_t>(std::clamp(fr * rows, 0.0, max_row));
    const auto col = static_cast<std::uint32_t>(std::clamp(fc * cols, 0.0, max_col));
    out[i] = row * cols + col;
  }
}

void jump_meters(std::span<const double> lats, std::span<const double> lons,
                 std::span<double> out) noexcept {
  const std::size_t n = lats.size();
  if (n < 2) return;
  // haversine_meters inlined with the trailing cosine carried over:
  // cos(lat[i]) is computed once and reused as the next pair's lat1.
  double cos_prev = std::cos(deg_to_rad(lats[0]));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double cos_next = std::cos(deg_to_rad(lats[i + 1]));
    const double dlat = deg_to_rad(lats[i + 1] - lats[i]);
    const double dlon = deg_to_rad(lons[i + 1] - lons[i]);
    const double sin_dlat = std::sin(dlat / 2.0);
    const double sin_dlon = std::sin(dlon / 2.0);
    const double h = sin_dlat * sin_dlat + cos_prev * cos_next * sin_dlon * sin_dlon;
    out[i] = 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h < 1.0 ? h : 1.0));
    cos_prev = cos_next;
  }
}

void project_xy(const Projection& projection, std::span<const double> lats,
                std::span<const double> lons, std::span<double> xs,
                std::span<double> ys) noexcept {
  const std::size_t n = lats.size();
  for (std::size_t i = 0; i < n; ++i) {
    const XY xy = projection.to_xy({lats[i], lons[i]});
    xs[i] = xy.x;
    ys[i] = xy.y;
  }
}

}  // namespace crowdweb::geo

// Geographic primitives: WGS-84 points, bounding boxes, distances, and a
// local equirectangular projection used by the grid and the renderers.
#pragma once

#include <cmath>
#include <numbers>

namespace crowdweb::geo {

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6'371'008.8;

[[nodiscard]] constexpr double deg_to_rad(double degrees) noexcept {
  return degrees * std::numbers::pi / 180.0;
}
[[nodiscard]] constexpr double rad_to_deg(double radians) noexcept {
  return radians * 180.0 / std::numbers::pi;
}

/// A WGS-84 coordinate. Latitude in [-90, 90], longitude in [-180, 180).
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// True when both fields are within WGS-84 bounds.
[[nodiscard]] bool is_valid(const LatLon& p) noexcept;

/// Great-circle distance in meters (haversine).
[[nodiscard]] double haversine_meters(const LatLon& a, const LatLon& b) noexcept;

/// Fast approximate distance via local equirectangular flattening —
/// accurate to <0.5% at city scale, ~5x cheaper than haversine.
[[nodiscard]] double equirect_meters(const LatLon& a, const LatLon& b) noexcept;

/// An axis-aligned lat/lon rectangle (min <= max on both axes; does not
/// model antimeridian wrapping, which city-scale data never needs).
struct BoundingBox {
  double min_lat = 90.0;
  double max_lat = -90.0;
  double min_lon = 180.0;
  double max_lon = -180.0;

  /// An empty box: contains nothing, extends to anything.
  [[nodiscard]] bool empty() const noexcept { return min_lat > max_lat || min_lon > max_lon; }
  void extend(const LatLon& p) noexcept {
    min_lat = p.lat < min_lat ? p.lat : min_lat;
    max_lat = p.lat > max_lat ? p.lat : max_lat;
    min_lon = p.lon < min_lon ? p.lon : min_lon;
    max_lon = p.lon > max_lon ? p.lon : max_lon;
  }
  void extend(const BoundingBox& other) noexcept {
    if (other.empty()) return;
    extend(LatLon{other.min_lat, other.min_lon});
    extend(LatLon{other.max_lat, other.max_lon});
  }
  [[nodiscard]] bool contains(const LatLon& p) const noexcept {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon && p.lon <= max_lon;
  }
  [[nodiscard]] bool intersects(const BoundingBox& other) const noexcept {
    if (empty() || other.empty()) return false;
    return min_lat <= other.max_lat && other.min_lat <= max_lat &&
           min_lon <= other.max_lon && other.min_lon <= max_lon;
  }
  [[nodiscard]] LatLon center() const noexcept {
    return {(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
  }
  /// Expands every edge outward by `margin_deg` degrees.
  [[nodiscard]] BoundingBox inflated(double margin_deg) const noexcept {
    return {min_lat - margin_deg, max_lat + margin_deg, min_lon - margin_deg,
            max_lon + margin_deg};
  }

  friend bool operator==(const BoundingBox&, const BoundingBox&) = default;
};

/// Local Cartesian coordinates in meters (x east, y north).
struct XY {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const XY&, const XY&) = default;
};

/// Equirectangular projection anchored at `origin`; good at city scale.
class Projection {
 public:
  explicit Projection(LatLon origin) noexcept;

  [[nodiscard]] XY to_xy(const LatLon& p) const noexcept;
  [[nodiscard]] LatLon to_latlon(const XY& p) const noexcept;
  [[nodiscard]] LatLon origin() const noexcept { return origin_; }

 private:
  LatLon origin_;
  double cos_lat_;
};

/// Displaces `p` by (east, north) meters.
[[nodiscard]] LatLon offset_meters(const LatLon& p, double east_m, double north_m) noexcept;

}  // namespace crowdweb::geo

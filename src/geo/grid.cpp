#include "geo/grid.hpp"

#include <algorithm>
#include <cmath>
#include "util/format.hpp"

namespace crowdweb::geo {

Result<SpatialGrid> SpatialGrid::create(const BoundingBox& bounds,
                                        double cell_size_meters) {
  if (bounds.empty()) return invalid_argument("grid bounds are empty");
  if (!(cell_size_meters > 0.0))
    return invalid_argument(crowdweb::format("cell size must be positive, got {}", cell_size_meters));

  const double height_m =
      haversine_meters({bounds.min_lat, bounds.min_lon}, {bounds.max_lat, bounds.min_lon});
  const double mid_lat = (bounds.min_lat + bounds.max_lat) / 2.0;
  const double width_m =
      haversine_meters({mid_lat, bounds.min_lon}, {mid_lat, bounds.max_lon});

  const auto dim = [cell_size_meters](double extent_m) {
    const double n = std::ceil(extent_m / cell_size_meters);
    return static_cast<std::uint32_t>(std::max(1.0, n));
  };
  const std::uint32_t rows = dim(height_m);
  const std::uint32_t cols = dim(width_m);
  if (static_cast<std::uint64_t>(rows) * cols > 16'000'000ULL)
    return invalid_argument(
        crowdweb::format("grid too fine: {}x{} cells exceeds the 16M limit", rows, cols));
  return SpatialGrid(bounds, rows, cols, cell_size_meters);
}

std::optional<CellId> SpatialGrid::cell_of(const LatLon& p) const noexcept {
  if (!bounds_.contains(p)) return std::nullopt;
  return clamped_cell_of(p);
}

CellId SpatialGrid::clamped_cell_of(const LatLon& p) const noexcept {
  const double lat_span = bounds_.max_lat - bounds_.min_lat;
  const double lon_span = bounds_.max_lon - bounds_.min_lon;
  const double fr = lat_span > 0.0 ? (p.lat - bounds_.min_lat) / lat_span : 0.0;
  const double fc = lon_span > 0.0 ? (p.lon - bounds_.min_lon) / lon_span : 0.0;
  const auto row = static_cast<std::uint32_t>(
      std::clamp(fr * rows_, 0.0, static_cast<double>(rows_ - 1)));
  const auto col = static_cast<std::uint32_t>(
      std::clamp(fc * cols_, 0.0, static_cast<double>(cols_ - 1)));
  return row * cols_ + col;
}

LatLon SpatialGrid::cell_center(CellId cell) const noexcept {
  const BoundingBox box = cell_bounds(cell);
  return box.center();
}

BoundingBox SpatialGrid::cell_bounds(CellId cell) const noexcept {
  const std::uint32_t row = row_of(cell);
  const std::uint32_t col = col_of(cell);
  const double lat_step = (bounds_.max_lat - bounds_.min_lat) / rows_;
  const double lon_step = (bounds_.max_lon - bounds_.min_lon) / cols_;
  BoundingBox box;
  box.min_lat = bounds_.min_lat + row * lat_step;
  box.max_lat = box.min_lat + lat_step;
  box.min_lon = bounds_.min_lon + col * lon_step;
  box.max_lon = box.min_lon + lon_step;
  return box;
}

std::vector<CellId> SpatialGrid::neighbors(CellId cell) const {
  std::vector<CellId> out;
  out.reserve(8);
  const auto row = static_cast<std::int64_t>(row_of(cell));
  const auto col = static_cast<std::int64_t>(col_of(cell));
  for (std::int64_t dr = -1; dr <= 1; ++dr) {
    for (std::int64_t dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const std::int64_t r = row + dr;
      const std::int64_t c = col + dc;
      if (r < 0 || c < 0 || r >= rows_ || c >= cols_) continue;
      out.push_back(static_cast<CellId>(r * cols_ + c));
    }
  }
  return out;
}

}  // namespace crowdweb::geo

// Columnar geo kernels: batch operations over parallel lat/lon arrays.
//
// The dataset stores coordinates as structure-of-arrays columns; these
// kernels walk those columns directly instead of materializing
// point-at-a-time structs. Each kernel is bit-identical to the
// point-wise primitive it batches (same operations in the same order),
// so swapping a loop for a kernel can never perturb API output — it
// only removes per-record struct traffic and rehoists loop-invariant
// constants.
#pragma once

#include <span>

#include "geo/grid.hpp"
#include "geo/point.hpp"

namespace crowdweb::geo {

/// Extends `box` over every (lats[i], lons[i]). Equivalent to calling
/// box.extend(p) per point.
void extend_bounds(BoundingBox& box, std::span<const double> lats,
                   std::span<const double> lons) noexcept;

/// Bins every point into `grid`, clamping out-of-bounds points to the
/// edge: out[i] = grid.clamped_cell_of({lats[i], lons[i]}). `out` must
/// have the same length as the coordinate columns.
void clamped_cells(const SpatialGrid& grid, std::span<const double> lats,
                   std::span<const double> lons, std::span<CellId> out) noexcept;

/// Great-circle distances between consecutive points of a track:
/// out[i] = haversine_meters(p[i], p[i+1]). `out` must hold n-1
/// entries for n-point columns (no-op for n < 2). The shared
/// endpoint's cosine is computed once per point instead of twice.
void jump_meters(std::span<const double> lats, std::span<const double> lons,
                 std::span<double> out) noexcept;

/// Projects every point through `projection`:
/// (xs[i], ys[i]) = projection.to_xy({lats[i], lons[i]}).
void project_xy(const Projection& projection, std::span<const double> lats,
                std::span<const double> lons, std::span<double> xs,
                std::span<double> ys) noexcept;

}  // namespace crowdweb::geo

// DBSCAN density clustering over geographic points.
//
// The paper's related work (Haifeng et al., ref [10]) clusters raw
// positions with DBSCAN before predicting mobility; CrowdWeb's microcells
// are a regular grid instead. This implementation lets the benches
// compare the two spatial aggregations (grid cells vs density clusters)
// on the same crowd. Neighborhood queries run on the point quadtree, so
// clustering a city-scale corpus stays near O(n log n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/point.hpp"
#include "util/status.hpp"

namespace crowdweb::geo {

struct DbscanOptions {
  /// Neighborhood radius in meters (> 0).
  double eps_meters = 300.0;
  /// Minimum neighborhood size (including the point itself) for a core
  /// point (>= 1).
  std::size_t min_points = 5;
};

/// Cluster id for noise points.
inline constexpr int kNoise = -1;

/// Clusters `points`; returns one id per point: 0..k-1 for cluster
/// members, kNoise for noise. Ids are assigned in discovery order
/// (scanning points in input order), so results are deterministic.
[[nodiscard]] Result<std::vector<int>> dbscan(std::span<const LatLon> points,
                                              const DbscanOptions& options = {});

/// Convenience: the number of clusters in a dbscan labeling.
[[nodiscard]] std::size_t cluster_count(std::span<const int> labels) noexcept;

}  // namespace crowdweb::geo

#include "geo/quadtree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace crowdweb::geo {

struct QuadTree::Node {
  BoundingBox bounds;
  std::vector<QuadPoint> points;                 // leaf payload
  std::array<std::unique_ptr<Node>, 4> children; // NW, NE, SW, SE when split

  [[nodiscard]] bool is_leaf() const noexcept { return children[0] == nullptr; }

  [[nodiscard]] int quadrant_of(const LatLon& p) const noexcept {
    const LatLon c = bounds.center();
    const bool north = p.lat >= c.lat;
    const bool east = p.lon >= c.lon;
    return (north ? 0 : 2) + (east ? 1 : 0);
  }

  [[nodiscard]] BoundingBox quadrant_bounds(int quadrant) const noexcept {
    const LatLon c = bounds.center();
    BoundingBox box;
    const bool north = quadrant < 2;
    const bool east = (quadrant % 2) == 1;
    box.min_lat = north ? c.lat : bounds.min_lat;
    box.max_lat = north ? bounds.max_lat : c.lat;
    box.min_lon = east ? c.lon : bounds.min_lon;
    box.max_lon = east ? bounds.max_lon : c.lon;
    return box;
  }
};

QuadTree::QuadTree(BoundingBox bounds, std::size_t bucket_capacity)
    : bounds_(bounds),
      bucket_capacity_(std::max<std::size_t>(1, bucket_capacity)),
      root_(std::make_unique<Node>()) {
  root_->bounds = bounds;
}

QuadTree::~QuadTree() = default;
QuadTree::QuadTree(QuadTree&&) noexcept = default;
QuadTree& QuadTree::operator=(QuadTree&&) noexcept = default;

bool QuadTree::insert(const LatLon& position, std::uint32_t id) {
  if (!bounds_.contains(position)) return false;
  Node* node = root_.get();
  // Descend to a leaf, splitting full leaves on the way.
  for (int depth = 0;; ++depth) {
    if (node->is_leaf()) {
      // Stop splitting past a reasonable depth to bound degenerate inputs
      // (many duplicate points); the leaf simply grows.
      if (node->points.size() < bucket_capacity_ || depth >= 32) {
        node->points.push_back({position, id});
        ++size_;
        return true;
      }
      // Split: redistribute the bucket into four children.
      for (int q = 0; q < 4; ++q) {
        node->children[static_cast<std::size_t>(q)] = std::make_unique<Node>();
        node->children[static_cast<std::size_t>(q)]->bounds = node->quadrant_bounds(q);
      }
      for (const QuadPoint& p : node->points) {
        const int q = node->quadrant_of(p.position);
        node->children[static_cast<std::size_t>(q)]->points.push_back(p);
      }
      node->points.clear();
      node->points.shrink_to_fit();
    }
    node = node->children[static_cast<std::size_t>(node->quadrant_of(position))].get();
  }
}

std::vector<std::uint32_t> QuadTree::query_range(const BoundingBox& query) const {
  std::vector<std::uint32_t> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->bounds.intersects(query)) continue;
    if (node->is_leaf()) {
      for (const QuadPoint& p : node->points) {
        if (query.contains(p.position)) out.push_back(p.id);
      }
      continue;
    }
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return out;
}

std::vector<std::uint32_t> QuadTree::query_radius(const LatLon& center,
                                                  double radius_m) const {
  // Prefilter with a bounding box around the circle, then verify distance.
  const double dlat = rad_to_deg(radius_m / kEarthRadiusMeters);
  const double cos_lat = std::max(0.01, std::cos(deg_to_rad(center.lat)));
  const double dlon = rad_to_deg(radius_m / (kEarthRadiusMeters * cos_lat));
  BoundingBox query;
  query.min_lat = center.lat - dlat;
  query.max_lat = center.lat + dlat;
  query.min_lon = center.lon - dlon;
  query.max_lon = center.lon + dlon;

  std::vector<std::uint32_t> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->bounds.intersects(query)) continue;
    if (node->is_leaf()) {
      for (const QuadPoint& p : node->points) {
        if (haversine_meters(center, p.position) <= radius_m) out.push_back(p.id);
      }
      continue;
    }
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return out;
}

namespace {

/// Lower bound on the distance from `p` to any point of `box`, in meters.
double min_distance_meters(const LatLon& p, const BoundingBox& box) noexcept {
  const double lat = std::clamp(p.lat, box.min_lat, box.max_lat);
  const double lon = std::clamp(p.lon, box.min_lon, box.max_lon);
  return haversine_meters(p, {lat, lon});
}

}  // namespace

std::optional<QuadPoint> QuadTree::nearest(const LatLon& target) const {
  if (size_ == 0) return std::nullopt;
  std::optional<QuadPoint> best;
  double best_dist = std::numeric_limits<double>::infinity();

  // Best-first search over nodes ordered by min possible distance.
  struct Entry {
    double min_dist;
    const Node* node;
  };
  std::vector<Entry> heap{{0.0, root_.get()}};
  const auto cmp = [](const Entry& a, const Entry& b) { return a.min_dist > b.min_dist; };
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const Entry entry = heap.back();
    heap.pop_back();
    if (entry.min_dist >= best_dist) continue;
    const Node* node = entry.node;
    if (node->is_leaf()) {
      for (const QuadPoint& p : node->points) {
        const double d = haversine_meters(target, p.position);
        if (d < best_dist) {
          best_dist = d;
          best = p;
        }
      }
      continue;
    }
    for (const auto& child : node->children) {
      const double d = min_distance_meters(target, child->bounds);
      if (d < best_dist) {
        heap.push_back({d, child.get()});
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  return best;
}

}  // namespace crowdweb::geo

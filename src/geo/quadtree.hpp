// Point quadtree over lat/lon with payload ids.
//
// Used by the synthetic-city builder (nearest venue of a category) and the
// map renderer (viewport queries). Stores points in leaf buckets and
// splits on overflow; queries return payload ids.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "geo/point.hpp"

namespace crowdweb::geo {

/// A payload point inserted into the tree.
struct QuadPoint {
  LatLon position;
  std::uint32_t id = 0;
};

class QuadTree {
 public:
  /// `bounds` must enclose every inserted point; `bucket_capacity` is the
  /// leaf size before a split.
  explicit QuadTree(BoundingBox bounds, std::size_t bucket_capacity = 16);
  ~QuadTree();
  QuadTree(QuadTree&&) noexcept;
  QuadTree& operator=(QuadTree&&) noexcept;
  QuadTree(const QuadTree&) = delete;
  QuadTree& operator=(const QuadTree&) = delete;

  /// Inserts a point; returns false (and ignores it) when outside bounds.
  bool insert(const LatLon& position, std::uint32_t id);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const BoundingBox& bounds() const noexcept { return bounds_; }

  /// Ids of all points inside `query` (inclusive bounds).
  [[nodiscard]] std::vector<std::uint32_t> query_range(const BoundingBox& query) const;

  /// Ids of all points within `radius_m` meters of `center` (haversine).
  [[nodiscard]] std::vector<std::uint32_t> query_radius(const LatLon& center,
                                                        double radius_m) const;

  /// Nearest point to `target`, or nullopt when the tree is empty.
  [[nodiscard]] std::optional<QuadPoint> nearest(const LatLon& target) const;

 private:
  struct Node;
  BoundingBox bounds_;
  std::size_t bucket_capacity_;
  std::size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace crowdweb::geo

// Spatial grid of "microcells".
//
// CrowdWeb aggregates the crowd over a regular grid laid over the city
// bounding box; each cell is a *microcell* in the paper's terminology
// ("any user with a pattern of visiting a certain microcell ... will
// appear in the smart city at the selected time"). The grid maps lat/lon
// to a dense cell index so crowd distributions are plain vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/point.hpp"
#include "util/status.hpp"

namespace crowdweb::geo {

/// Dense identifier of a grid cell: `row * cols + col`.
using CellId = std::uint32_t;

/// Regular lat/lon grid over a bounding box with ~square cells of a
/// requested edge length in meters.
class SpatialGrid {
 public:
  /// Builds a grid covering `bounds` with cells of roughly
  /// `cell_size_meters` on each side. Fails on empty bounds or a
  /// non-positive cell size.
  static Result<SpatialGrid> create(const BoundingBox& bounds, double cell_size_meters);

  [[nodiscard]] const BoundingBox& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  [[nodiscard]] double cell_size_meters() const noexcept { return cell_size_meters_; }

  /// Cell containing `p`, or nullopt when outside the bounds.
  [[nodiscard]] std::optional<CellId> cell_of(const LatLon& p) const noexcept;

  /// Cell containing `p`, clamping out-of-bounds points to the edge.
  [[nodiscard]] CellId clamped_cell_of(const LatLon& p) const noexcept;

  [[nodiscard]] LatLon cell_center(CellId cell) const noexcept;
  [[nodiscard]] BoundingBox cell_bounds(CellId cell) const noexcept;
  [[nodiscard]] std::uint32_t row_of(CellId cell) const noexcept { return cell / cols_; }
  [[nodiscard]] std::uint32_t col_of(CellId cell) const noexcept { return cell % cols_; }

  /// The up-to-8 neighbours of a cell (edge cells have fewer).
  [[nodiscard]] std::vector<CellId> neighbors(CellId cell) const;

 private:
  SpatialGrid(BoundingBox bounds, std::uint32_t rows, std::uint32_t cols,
              double cell_size_meters) noexcept
      : bounds_(bounds), rows_(rows), cols_(cols), cell_size_meters_(cell_size_meters) {}

  BoundingBox bounds_;
  std::uint32_t rows_;
  std::uint32_t cols_;
  double cell_size_meters_;
};

}  // namespace crowdweb::geo

// Geohash encoding/decoding (base-32, Gustavo Niemeyer's scheme).
//
// Geohashes give the platform stable, shareable identifiers for microcells
// and let the API address map regions by prefix.
#pragma once

#include <string>
#include <string_view>

#include "geo/point.hpp"
#include "util/status.hpp"

namespace crowdweb::geo {

/// Encodes `p` to a geohash of `precision` characters (1..12).
[[nodiscard]] std::string geohash_encode(const LatLon& p, int precision);

/// Decodes to the center of the geohash cell.
[[nodiscard]] Result<LatLon> geohash_decode(std::string_view hash);

/// Decodes to the full cell bounds.
[[nodiscard]] Result<BoundingBox> geohash_decode_bounds(std::string_view hash);

}  // namespace crowdweb::geo

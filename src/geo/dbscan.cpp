#include "geo/dbscan.hpp"

#include <algorithm>
#include <deque>

#include "geo/quadtree.hpp"
#include "util/format.hpp"

namespace crowdweb::geo {

Result<std::vector<int>> dbscan(std::span<const LatLon> points,
                                const DbscanOptions& options) {
  if (!(options.eps_meters > 0.0))
    return invalid_argument(crowdweb::format("eps must be positive, got {}", options.eps_meters));
  if (options.min_points == 0) return invalid_argument("min_points must be >= 1");

  std::vector<int> labels(points.size(), kNoise);
  if (points.empty()) return labels;

  BoundingBox bounds;
  for (const LatLon& p : points) {
    if (!is_valid(p)) return invalid_argument("dbscan input contains an invalid point");
    bounds.extend(p);
  }
  QuadTree tree(bounds.inflated(0.001), 32);
  for (std::uint32_t i = 0; i < points.size(); ++i) tree.insert(points[i], i);

  // Classic label-spreading DBSCAN with a BFS frontier per cluster.
  std::vector<char> visited(points.size(), 0);
  int next_cluster = 0;
  for (std::size_t seed = 0; seed < points.size(); ++seed) {
    if (visited[seed] != 0) continue;
    visited[seed] = 1;
    const auto seed_neighbors = tree.query_radius(points[seed], options.eps_meters);
    if (seed_neighbors.size() < options.min_points) continue;  // noise (for now)

    const int cluster = next_cluster++;
    labels[seed] = cluster;
    std::deque<std::uint32_t> frontier(seed_neighbors.begin(), seed_neighbors.end());
    while (!frontier.empty()) {
      const std::uint32_t point = frontier.front();
      frontier.pop_front();
      if (labels[point] == kNoise) labels[point] = cluster;  // border adoption
      if (visited[point] != 0) continue;
      visited[point] = 1;
      labels[point] = cluster;
      const auto neighbors = tree.query_radius(points[point], options.eps_meters);
      if (neighbors.size() >= options.min_points) {
        // Core point: its neighborhood joins the cluster.
        frontier.insert(frontier.end(), neighbors.begin(), neighbors.end());
      }
    }
  }
  return labels;
}

std::size_t cluster_count(std::span<const int> labels) noexcept {
  int max_label = kNoise;
  for (const int label : labels) max_label = std::max(max_label, label);
  return static_cast<std::size_t>(max_label + 1);
}

}  // namespace crowdweb::geo

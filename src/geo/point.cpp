#include "geo/point.hpp"

namespace crowdweb::geo {

bool is_valid(const LatLon& p) noexcept {
  return p.lat >= -90.0 && p.lat <= 90.0 && p.lon >= -180.0 && p.lon <= 180.0 &&
         std::isfinite(p.lat) && std::isfinite(p.lon);
}

double haversine_meters(const LatLon& a, const LatLon& b) noexcept {
  const double lat1 = deg_to_rad(a.lat);
  const double lat2 = deg_to_rad(b.lat);
  const double dlat = deg_to_rad(b.lat - a.lat);
  const double dlon = deg_to_rad(b.lon - a.lon);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h < 1.0 ? h : 1.0));
}

double equirect_meters(const LatLon& a, const LatLon& b) noexcept {
  const double mean_lat = deg_to_rad((a.lat + b.lat) / 2.0);
  const double dx = deg_to_rad(b.lon - a.lon) * std::cos(mean_lat);
  const double dy = deg_to_rad(b.lat - a.lat);
  return kEarthRadiusMeters * std::sqrt(dx * dx + dy * dy);
}

Projection::Projection(LatLon origin) noexcept
    : origin_(origin), cos_lat_(std::cos(deg_to_rad(origin.lat))) {}

XY Projection::to_xy(const LatLon& p) const noexcept {
  return {deg_to_rad(p.lon - origin_.lon) * cos_lat_ * kEarthRadiusMeters,
          deg_to_rad(p.lat - origin_.lat) * kEarthRadiusMeters};
}

LatLon Projection::to_latlon(const XY& p) const noexcept {
  return {origin_.lat + rad_to_deg(p.y / kEarthRadiusMeters),
          origin_.lon + rad_to_deg(p.x / (kEarthRadiusMeters * cos_lat_))};
}

LatLon offset_meters(const LatLon& p, double east_m, double north_m) noexcept {
  const double dlat = rad_to_deg(north_m / kEarthRadiusMeters);
  const double dlon =
      rad_to_deg(east_m / (kEarthRadiusMeters * std::cos(deg_to_rad(p.lat))));
  return {p.lat + dlat, p.lon + dlon};
}

}  // namespace crowdweb::geo

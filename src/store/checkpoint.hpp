// Binary checkpoint of the merged live corpus.
//
// A checkpoint file is one payload followed by a trailing u32 CRC-32 of
// everything before it:
//
//   u32 magic "CCKP" | u32 version (2) | u64 checkpoint_seq | u64 epoch |
//   u64 last_record_seq | u32 next_guest_id | u64 base_checkin_count |
//   u32 name_count    | name_count    x bytes(name) |
//   u32 venue_count   | venue_count   x venue   |
//   u64 checkin_count | checkin_count x checkin |
//   u32 touched_count | touched_count x u32 user |
//   u32 crc32(payload)
//
// `last_record_seq` names the WAL prefix the checkpoint covers: recovery
// loads the checkpoint, then replays only records with seq greater than
// it. Venues and check-ins are stored in the worker's insertion order —
// the order the merge path depends on for deterministic venue ids — so
// a recovered corpus is byte-identical to the one that wrote it.
//
// The names table is the interning pool in NameId order: entry i is the
// string NameId i resolves to, and each venue row stores a u32 NameId
// into it instead of an inline string. Re-interning the table in order
// into a fresh pool reproduces every id exactly, so a recovered corpus
// resolves names identically to the one that wrote the checkpoint.
// Version 2 introduced the table; v1 files (inline name strings) are
// refused with an error telling the operator to re-ingest.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/checkin.hpp"
#include "util/status.hpp"

namespace crowdweb::store {

/// The durable image of an IngestWorker's live corpus.
struct Checkpoint {
  std::uint64_t seq = 0;    ///< checkpoint ordinal (file name ordinal)
  std::uint64_t epoch = 0;  ///< worker epoch at checkpoint time
  /// Largest WAL record seq folded into this image (0 = none).
  std::uint64_t last_record_seq = 0;
  data::UserId next_guest_id = 0;
  /// Check-ins at the front of `checkins` that came from the base
  /// corpus, not live ingestion.
  std::uint64_t base_checkin_count = 0;
  /// Interning table in NameId order: names[i] is the string behind
  /// NameId i. Every venue row's `name` indexes this table.
  std::vector<std::string> names;
  std::vector<data::Venue> venues;
  std::vector<data::CheckIn> checkins;
  /// Users ever touched by live deltas (feeds incremental re-mining).
  std::vector<data::UserId> touched_users;
};

[[nodiscard]] std::string encode_checkpoint(const Checkpoint& checkpoint);

/// Decodes and checksum-verifies one checkpoint file's bytes. `path`
/// appears in error messages only.
[[nodiscard]] Result<Checkpoint> decode_checkpoint(std::string_view bytes,
                                                   const std::string& path);

}  // namespace crowdweb::store

// Little-endian byte (de)serialization for the durable store's on-disk
// formats (WAL records and checkpoints).
//
// Every multi-byte integer is written least-significant byte first,
// independent of the host, so store files move between machines.
// Doubles travel as the IEEE-754 bit pattern of the value.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace crowdweb::store {

inline void put_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
}

inline void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
}

inline void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
}

inline void put_i64(std::string& out, std::int64_t value) {
  put_u64(out, static_cast<std::uint64_t>(value));
}

inline void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// u32 length prefix + raw bytes.
inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

// Raw-pointer variants for pre-sized buffers: the WAL append path sizes
// its frame up front and writes fields in place, so the per-byte growth
// checks of the put_* family stay off the worker's drain loop. GCC and
// Clang collapse the byte stores into single moves on little-endian
// targets.

inline char* raw_put_u16(char* p, std::uint16_t value) noexcept {
  p[0] = static_cast<char>(value & 0xFF);
  p[1] = static_cast<char>((value >> 8) & 0xFF);
  return p + 2;
}

inline char* raw_put_u32(char* p, std::uint32_t value) noexcept {
  for (int shift = 0; shift < 32; shift += 8)
    *p++ = static_cast<char>((value >> shift) & 0xFF);
  return p;
}

inline char* raw_put_u64(char* p, std::uint64_t value) noexcept {
  for (int shift = 0; shift < 64; shift += 8)
    *p++ = static_cast<char>((value >> shift) & 0xFF);
  return p;
}

inline char* raw_put_i64(char* p, std::int64_t value) noexcept {
  return raw_put_u64(p, static_cast<std::uint64_t>(value));
}

inline char* raw_put_f64(char* p, double value) noexcept {
  return raw_put_u64(p, std::bit_cast<std::uint64_t>(value));
}

/// Sequential reader over an encoded buffer. Every read_* returns false
/// (leaving the output untouched) once the buffer is exhausted; callers
/// check once per record, not per field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - offset_; }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ >= bytes_.size(); }
  /// True once any read ran past the end.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  bool read_u16(std::uint16_t& value) noexcept {
    std::uint8_t raw[2];
    if (!take(raw, sizeof raw)) return false;
    value = static_cast<std::uint16_t>(raw[0] | (raw[1] << 8));
    return true;
  }

  bool read_u32(std::uint32_t& value) noexcept {
    std::uint8_t raw[4];
    if (!take(raw, sizeof raw)) return false;
    value = 0;
    for (int i = 3; i >= 0; --i) value = (value << 8) | raw[i];
    return true;
  }

  bool read_u64(std::uint64_t& value) noexcept {
    std::uint8_t raw[8];
    if (!take(raw, sizeof raw)) return false;
    value = 0;
    for (int i = 7; i >= 0; --i) value = (value << 8) | raw[i];
    return true;
  }

  bool read_i64(std::int64_t& value) noexcept {
    std::uint64_t raw = 0;
    if (!read_u64(raw)) return false;
    value = static_cast<std::int64_t>(raw);
    return true;
  }

  bool read_f64(double& value) noexcept {
    std::uint64_t raw = 0;
    if (!read_u64(raw)) return false;
    value = std::bit_cast<double>(raw);
    return true;
  }

  /// Length-prefixed bytes (see put_bytes).
  bool read_bytes(std::string& value) {
    std::uint32_t length = 0;
    if (!read_u32(length)) return false;
    if (remaining() < length) {
      truncated_ = true;
      return false;
    }
    value.assign(bytes_.substr(offset_, length));
    offset_ += length;
    return true;
  }

 private:
  bool take(std::uint8_t* out, std::size_t n) noexcept {
    if (remaining() < n) {
      truncated_ = true;
      return false;
    }
    std::memcpy(out, bytes_.data() + offset_, n);
    offset_ += n;
    return true;
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
  bool truncated_ = false;
};

}  // namespace crowdweb::store

#include "store/wal.hpp"

#include <charconv>

#include "store/crc32.hpp"
#include "store/format.hpp"
#include "util/format.hpp"

namespace crowdweb::store {

namespace {

// Bytes one event occupies inside a record payload.
constexpr std::size_t kEventBytes = 4 + 2 + 8 + 8 + 8;

// Store-file ordinals are always exactly 10 digits — lexical file-name
// order must equal numeric order, so unpadded variants are foreign.
constexpr std::size_t kOrdinalDigits = 10;

std::optional<std::uint64_t> parse_numbered_name(std::string_view name,
                                                 std::string_view prefix,
                                                 std::string_view suffix) {
  if (name.size() != prefix.size() + kOrdinalDigits + suffix.size()) return std::nullopt;
  if (!name.starts_with(prefix) || !name.ends_with(suffix)) return std::nullopt;
  const std::string_view digits = name.substr(prefix.size(), kOrdinalDigits);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) return std::nullopt;
  return value;
}

// Reads the u32 at `offset` (caller guarantees 4 bytes are available).
std::uint32_t peek_u32(std::string_view bytes, std::size_t offset) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i)
    value = (value << 8) | static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  return value;
}

}  // namespace

std::string wal_segment_name(std::uint64_t segment_seq) {
  return crowdweb::format("wal-{:010}.log", segment_seq);
}

std::optional<std::uint64_t> parse_wal_segment_name(std::string_view name) {
  return parse_numbered_name(name, "wal-", ".log");
}

std::string checkpoint_file_name(std::uint64_t checkpoint_seq) {
  return crowdweb::format("checkpoint-{:010}.ckpt", checkpoint_seq);
}

std::optional<std::uint64_t> parse_checkpoint_file_name(std::string_view name) {
  return parse_numbered_name(name, "checkpoint-", ".ckpt");
}

std::string encode_segment_header(std::uint64_t segment_seq) {
  std::string out;
  out.reserve(kSegmentHeaderBytes);
  put_u32(out, kWalMagic);
  put_u32(out, kFormatVersion);
  put_u64(out, segment_seq);
  return out;
}

std::string encode_wal_record(const WalRecord& record) {
  std::string framed;
  append_framed_record(framed, record.seq, record.epoch, record.events);
  return framed;
}

void append_framed_record(std::string& out, std::uint64_t seq, std::uint64_t epoch,
                          std::span<const ingest::IngestEvent> events) {
  const std::size_t payload_size = 8 + 8 + 4 + events.size() * kEventBytes;
  const std::size_t base = out.size();
  out.resize(base + kRecordHeaderBytes + payload_size);
  // Fields go straight into the sized buffer; the checksum runs over
  // the encoded payload in place, so nothing is copied twice.
  char* p = out.data() + base;
  p = raw_put_u32(p, static_cast<std::uint32_t>(payload_size));
  char* const crc_at = p;
  p = raw_put_u32(p, 0);  // patched below
  p = raw_put_u64(p, seq);
  p = raw_put_u64(p, epoch);
  p = raw_put_u32(p, static_cast<std::uint32_t>(events.size()));
  for (const ingest::IngestEvent& event : events) {
    p = raw_put_u32(p, event.user);
    p = raw_put_u16(p, event.category);
    p = raw_put_f64(p, event.position.lat);
    p = raw_put_f64(p, event.position.lon);
    p = raw_put_i64(p, event.timestamp);
  }
  const std::string_view payload(crc_at + 4, payload_size);
  raw_put_u32(crc_at, crc32(payload));
}

Result<WalRecord> decode_wal_payload(std::string_view payload) {
  ByteReader reader(payload);
  WalRecord record;
  std::uint32_t count = 0;
  if (!reader.read_u64(record.seq) || !reader.read_u64(record.epoch) ||
      !reader.read_u32(count)) {
    return parse_error("WAL record payload shorter than its fixed header");
  }
  if (reader.remaining() != static_cast<std::size_t>(count) * kEventBytes) {
    return parse_error(crowdweb::format(
        "WAL record {} declares {} events but carries {} payload bytes",
        record.seq, count, payload.size()));
  }
  record.events.resize(count);
  for (ingest::IngestEvent& event : record.events) {
    reader.read_u32(event.user);
    reader.read_u16(event.category);
    reader.read_f64(event.position.lat);
    reader.read_f64(event.position.lon);
    reader.read_i64(event.timestamp);
  }
  return record;
}

Result<SegmentScan> scan_wal_segment(std::string_view bytes, const std::string& path,
                                     std::uint64_t expected_seq, bool allow_torn_tail) {
  ByteReader header(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  SegmentScan scan;
  if (!header.read_u32(magic) || !header.read_u32(version) ||
      !header.read_u64(scan.segment_seq)) {
    return parse_error(
        crowdweb::format("{}: file too short for a WAL segment header "
                         "({} bytes, need {})",
                         path, bytes.size(), kSegmentHeaderBytes));
  }
  if (magic != kWalMagic)
    return parse_error(crowdweb::format("{}: not a WAL segment (bad magic)", path));
  if (version != kFormatVersion) {
    return parse_error(crowdweb::format(
        "{}: unsupported WAL format version {} (supported: {})", path, version,
        kFormatVersion));
  }
  if (scan.segment_seq != expected_seq) {
    return parse_error(crowdweb::format(
        "{}: header names segment {} but the file name says {}", path,
        scan.segment_seq, expected_seq));
  }

  std::size_t offset = kSegmentHeaderBytes;
  scan.valid_bytes = offset;
  while (offset < bytes.size()) {
    // A damaged record is a *torn tail* — truncatable — only if its frame
    // reaches the end of the file: that is what a crash mid-append leaves
    // behind. Damage followed by more bytes means the middle of the log
    // is corrupt, and truncating would also drop the intact suffix.
    std::string damage;
    bool reaches_eof = false;
    std::string_view payload;
    if (bytes.size() - offset < kRecordHeaderBytes) {
      damage = "incomplete record header";
      reaches_eof = true;
    } else {
      const std::uint32_t payload_len = peek_u32(bytes, offset);
      const std::uint32_t stored_crc = peek_u32(bytes, offset + 4);
      const std::size_t frame_end =
          offset + kRecordHeaderBytes + static_cast<std::size_t>(payload_len);
      if (frame_end > bytes.size()) {
        damage = "frame extends past end of file";
        reaches_eof = true;
      } else {
        payload = bytes.substr(offset + kRecordHeaderBytes, payload_len);
        if (crc32(payload) != stored_crc) {
          damage = "checksum mismatch";
          reaches_eof = frame_end == bytes.size();
        }
      }
    }

    if (!damage.empty()) {
      if (allow_torn_tail && reaches_eof) {
        scan.torn_bytes = bytes.size() - offset;
        return scan;
      }
      return io_error(crowdweb::format(
          "{}: corrupt WAL record at offset {} ({}); refusing to drop "
          "acknowledged events — inspect with tools/wal_inspect",
          path, offset, damage));
    }

    Result<WalRecord> record = decode_wal_payload(payload);
    if (!record) {
      // Checksum passed but the payload is malformed: not a torn write
      // but a writer bug or foreign data. Always refuse.
      return io_error(crowdweb::format("{}: record at offset {}: {}", path,
                                       offset, record.status().message()));
    }
    scan.records.push_back(std::move(*record));
    offset += kRecordHeaderBytes + payload.size();
    scan.valid_bytes = offset;
  }
  return scan;
}

}  // namespace crowdweb::store

#include "store/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "data/dataset_io.hpp"
#include "telemetry/timer.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace crowdweb::store {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string_view to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kEveryBatch: return "every_batch";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNever: return "never";
  }
  return "unknown";
}

std::optional<FsyncPolicy> parse_fsync_policy(std::string_view text) noexcept {
  if (text == "every_batch") return FsyncPolicy::kEveryBatch;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "never") return FsyncPolicy::kNever;
  return std::nullopt;
}

namespace {

Status errno_error(std::string_view action, const std::string& path) {
  return io_error(
      crowdweb::format("{} {}: {}", action, path, std::strerror(errno)));
}

/// write(2) until the buffer is gone (short writes are legal).
Status write_all(int fd, std::string_view bytes, const std::string& path) {
  while (!bytes.empty()) {
    const ssize_t n = ::write(fd, bytes.data(), bytes.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("write", path);
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::ok();
}

}  // namespace

DurableStore::DurableStore(StoreConfig config) : config_(std::move(config)) {
  if (config_.keep_checkpoints == 0) config_.keep_checkpoints = 1;
  init_metrics();
}

DurableStore::~DurableStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ >= 0) {
    if (dirty_ && config_.fsync != FsyncPolicy::kNever) ::fsync(active_fd_);
    ::close(active_fd_);
    active_fd_ = -1;
  }
  for (const std::string& name : callback_gauge_names_) metrics_->remove(name);
}

void DurableStore::init_metrics() {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<telemetry::Registry>();
    metrics_ = own_metrics_.get();
  }
  append_records_ = &metrics_->counter("crowdweb_store_append_records_total",
                                       "WAL records appended (one per accepted batch).");
  append_bytes_ = &metrics_->counter("crowdweb_store_append_bytes_total",
                                     "Bytes appended to the write-ahead log.");
  append_failures_ = &metrics_->counter(
      "crowdweb_store_append_failures_total",
      "WAL appends that failed (events stayed in memory only).");
  fsyncs_ = &metrics_->counter("crowdweb_store_fsyncs_total",
                               "fsync(2) calls issued against WAL segments.");
  checkpoints_total_ =
      &metrics_->counter("crowdweb_store_checkpoints_total", "Checkpoints written.");
  recovery_replayed_ = &metrics_->counter(
      "crowdweb_store_recovery_replayed_records_total",
      "WAL records replayed through the merge path during startup recovery.");
  recovery_truncated_ = &metrics_->counter(
      "crowdweb_store_recovery_truncated_bytes_total",
      "Torn-tail bytes truncated from the final WAL segment during recovery.");
  append_seconds_ = &metrics_->histogram(
      "crowdweb_store_append_duration_seconds",
      "Wall time to journal one batch (encode + write + fsync when due).",
      config_.append_buckets.empty() ? telemetry::default_latency_buckets()
                                     : config_.append_buckets);
  checkpoint_seconds_ = &metrics_->histogram(
      "crowdweb_store_checkpoint_duration_seconds",
      "Wall time to encode, write, and prune for one checkpoint.",
      telemetry::default_duration_buckets());
  metrics_->gauge_callback("crowdweb_store_wal_segments",
                           "WAL segment files (sealed + active).", [this] {
                             std::lock_guard<std::mutex> lock(mutex_);
                             return static_cast<double>(sealed_.size() + 1);
                           });
  metrics_->gauge_callback("crowdweb_store_wal_bytes",
                           "Total bytes across WAL segment files.", [this] {
                             std::lock_guard<std::mutex> lock(mutex_);
                             std::uint64_t bytes = active_.bytes;
                             for (const SegmentInfo& seg : sealed_) bytes += seg.bytes;
                             return static_cast<double>(bytes);
                           });
  callback_gauge_names_ = {"crowdweb_store_wal_segments", "crowdweb_store_wal_bytes"};
}

Result<std::unique_ptr<DurableStore>> DurableStore::open(StoreConfig config) {
  if (config.dir.empty())
    return invalid_argument("durable store requires a non-empty directory");
  std::error_code ec;
  fs::create_directories(config.dir, ec);
  if (ec) {
    return io_error(
        crowdweb::format("create store directory {}: {}", config.dir, ec.message()));
  }
  std::unique_ptr<DurableStore> store(new DurableStore(std::move(config)));
  const Status status = store->recover();
  if (!status.is_ok()) return status;
  return store;
}

Status DurableStore::recover() {
  // 1. Inventory the directory.
  std::vector<std::pair<std::uint64_t, std::string>> segments;     // seq, path
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;  // seq, path
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto wal_seq = parse_wal_segment_name(name)) {
      segments.emplace_back(*wal_seq, entry.path().string());
    } else if (const auto ckpt_seq = parse_checkpoint_file_name(name)) {
      checkpoints.emplace_back(*ckpt_seq, entry.path().string());
    }
  }
  if (ec)
    return io_error(crowdweb::format("list store directory {}: {}", config_.dir,
                                     ec.message()));
  std::sort(segments.begin(), segments.end());
  std::sort(checkpoints.begin(), checkpoints.end());

  // 2. Newest decodable checkpoint wins; older ones are the fallback. A
  //    directory whose every checkpoint is corrupt is refused — silently
  //    restarting empty would discard the corpus.
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    Result<std::string> bytes = data::read_file(it->second);
    Result<Checkpoint> checkpoint = bytes ? decode_checkpoint(*bytes, it->second)
                                          : Result<Checkpoint>(bytes.status());
    if (checkpoint) {
      recovered_.checkpoint = std::move(*checkpoint);
      break;
    }
    log_warn("store recovery: skipping checkpoint {}: {}", it->second,
             checkpoint.status().message());
  }
  if (!checkpoints.empty() && !recovered_.checkpoint.has_value()) {
    return io_error(crowdweb::format(
        "store at {}: {} checkpoint file(s) present but none decodes cleanly; "
        "inspect with tools/wal_inspect or remove the directory to start empty",
        config_.dir, checkpoints.size()));
  }
  if (recovered_.checkpoint) {
    last_covered_record_seq_ = recovered_.checkpoint->last_record_seq;
    last_checkpoint_seq_ = recovered_.checkpoint->seq;
    last_checkpoint_epoch_ = recovered_.checkpoint->epoch;
    recovered_.max_epoch = recovered_.checkpoint->epoch;
  }
  for (const auto& [seq, path] : checkpoints) {
    if (recovered_.checkpoint && seq <= recovered_.checkpoint->seq) {
      // Coverage of older files is unknown without decoding them again;
      // conservative 0 keeps their WAL segments until they are pruned.
      checkpoints_.emplace_back(
          seq, seq == recovered_.checkpoint->seq ? recovered_.checkpoint->last_record_seq
                                                 : 0);
    }
  }

  // 3. Scan the WAL, oldest segment first. Only the final segment may
  //    carry a torn tail.
  std::uint64_t max_record_seq = last_covered_record_seq_;
  std::uint64_t last_seen_seq = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [seg_seq, path] = segments[i];
    const bool is_last = i + 1 == segments.size();
    Result<std::string> bytes = data::read_file(path);
    if (!bytes) return bytes.status();
    Result<SegmentScan> scan = scan_wal_segment(*bytes, path, seg_seq, is_last);
    if (!scan) return scan.status();
    if (scan->torn_bytes > 0) {
      std::error_code resize_ec;
      fs::resize_file(path, scan->valid_bytes, resize_ec);
      if (resize_ec) {
        return io_error(crowdweb::format("truncate torn tail of {}: {}", path,
                                         resize_ec.message()));
      }
      log_warn("store recovery: truncated {} torn byte(s) from {}", scan->torn_bytes,
               path);
      recovered_.truncated_bytes += scan->torn_bytes;
      recovery_truncated_->increment(scan->torn_bytes);
    }
    SegmentInfo info;
    info.seq = seg_seq;
    info.path = path;
    info.bytes = scan->valid_bytes;
    for (WalRecord& record : scan->records) {
      if (record.seq <= last_seen_seq) {
        return io_error(crowdweb::format(
            "{}: record seq {} does not advance past {} — WAL ordering is "
            "broken; inspect with tools/wal_inspect",
            path, record.seq, last_seen_seq));
      }
      last_seen_seq = record.seq;
      info.last_record_seq = record.seq;
      max_record_seq = std::max(max_record_seq, record.seq);
      recovered_.max_epoch = std::max(recovered_.max_epoch, record.epoch);
      if (record.seq > last_covered_record_seq_) {
        recovered_.replayed_events += record.events.size();
        recovered_.records.push_back(std::move(record));
      }
    }
    sealed_.push_back(std::move(info));
  }
  recovery_replayed_->increment(recovered_.records.size());
  next_record_seq_ = max_record_seq + 1;

  // 4. Open the active segment: continue the last one while it has
  //    room, otherwise start fresh past every seq ever used.
  std::uint64_t next_segment_seq = 1;
  if (!sealed_.empty()) next_segment_seq = sealed_.back().seq + 1;
  if (!sealed_.empty() && sealed_.back().bytes < config_.segment_bytes) {
    active_ = sealed_.back();
    sealed_.pop_back();
    return open_active_segment(active_.seq, /*fresh=*/false);
  }
  return open_active_segment(next_segment_seq, /*fresh=*/true);
}

Status DurableStore::open_active_segment(std::uint64_t segment_seq, bool fresh) {
  const std::string path =
      (fs::path(config_.dir) / wal_segment_name(segment_seq)).string();
  const int flags = O_WRONLY | O_APPEND | O_CLOEXEC | (fresh ? O_CREAT | O_EXCL : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return errno_error("open WAL segment", path);
  if (fresh) {
    active_ = SegmentInfo{};
    active_.seq = segment_seq;
    active_.path = path;
    const std::string header = encode_segment_header(segment_seq);
    const Status status = write_all(fd, header, path);
    if (!status.is_ok()) {
      ::close(fd);
      return status;
    }
    active_.bytes = header.size();
    dirty_ = true;
  }
  active_fd_ = fd;
  last_sync_ = Clock::now();
  return Status::ok();
}

RecoveredState DurableStore::take_recovered() {
  return std::exchange(recovered_, RecoveredState{});
}

Status DurableStore::append(std::uint64_t epoch,
                            std::span<const ingest::IngestEvent> events) {
  if (events.empty()) return Status::ok();
  telemetry::ScopedTimer timer(append_seconds_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ < 0) {
    append_failures_->increment();
    return failed_precondition("durable store has no active WAL segment");
  }
  encode_buffer_.clear();
  append_framed_record(encode_buffer_, next_record_seq_, epoch, events);

  const Status status = write_all(active_fd_, encode_buffer_, active_.path);
  if (!status.is_ok()) {
    append_failures_->increment();
    return status;
  }
  active_.last_record_seq = next_record_seq_;
  ++next_record_seq_;
  active_.bytes += encode_buffer_.size();
  wal_bytes_since_checkpoint_ += encode_buffer_.size();
  dirty_ = true;
  append_records_->increment();
  append_bytes_->increment(encode_buffer_.size());

  if (config_.fsync == FsyncPolicy::kEveryBatch) {
    const Status sync_status = sync_locked();
    if (!sync_status.is_ok()) return sync_status;
  }
  if (active_.bytes >= config_.segment_bytes) return rotate_locked();
  return Status::ok();
}

void DurableStore::maybe_sync() {
  if (config_.fsync != FsyncPolicy::kInterval) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirty_ || Clock::now() - last_sync_ < config_.fsync_interval) return;
  const Status status = sync_locked();
  if (!status.is_ok()) log_error("store fsync failed: {}", status.to_string());
}

Status DurableStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  return sync_locked();
}

Status DurableStore::sync_locked() {
  if (active_fd_ < 0 || !dirty_) return Status::ok();
  if (::fsync(active_fd_) != 0) return errno_error("fsync", active_.path);
  dirty_ = false;
  last_sync_ = Clock::now();
  fsyncs_->increment();
  return Status::ok();
}

Status DurableStore::rotate_locked() {
  // Seal the active segment: flush it, then start the next one. The
  // seal fsync is unconditional (rotation is rare) so sealed segments
  // are always fully on disk before anything references past them.
  if (active_fd_ >= 0) {
    dirty_ = true;  // force the flush even under kNever
    const Status status = sync_locked();
    if (!status.is_ok()) return status;
    ::close(active_fd_);
    active_fd_ = -1;
  }
  sealed_.push_back(active_);
  return open_active_segment(active_.seq + 1, /*fresh=*/true);
}

Status DurableStore::write_checkpoint(Checkpoint image) {
  telemetry::ScopedTimer timer(checkpoint_seconds_);
  std::lock_guard<std::mutex> lock(mutex_);
  // Rotate first so the checkpoint covers whole segments only; the
  // rotation also fsyncs, making everything the image covers durable
  // before the image itself exists.
  const Status rotated = rotate_locked();
  if (!rotated.is_ok()) return rotated;

  image.seq = last_checkpoint_seq_ + 1;
  image.last_record_seq = next_record_seq_ - 1;
  const std::string path =
      (fs::path(config_.dir) / checkpoint_file_name(image.seq)).string();
  const Status written = data::write_file(path, encode_checkpoint(image));
  if (!written.is_ok()) return written;

  last_checkpoint_seq_ = image.seq;
  last_checkpoint_epoch_ = image.epoch;
  last_covered_record_seq_ = image.last_record_seq;
  checkpoints_.emplace_back(image.seq, image.last_record_seq);
  wal_bytes_since_checkpoint_ = 0;
  checkpoints_total_->increment();
  prune_locked();
  log_info("store checkpoint {} written: epoch {}, covers WAL through record {}",
           image.seq, image.epoch, image.last_record_seq);
  return Status::ok();
}

void DurableStore::prune_locked() {
  // Drop checkpoints beyond the retention window (oldest first)...
  while (checkpoints_.size() > config_.keep_checkpoints) {
    const auto [seq, covered] = checkpoints_.front();
    (void)covered;
    const std::string path =
        (fs::path(config_.dir) / checkpoint_file_name(seq)).string();
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) {
      log_warn("store prune: cannot remove {}: {}", path, ec.message());
      break;  // retry after the next checkpoint
    }
    checkpoints_.erase(checkpoints_.begin());
  }
  // ...then every sealed segment fully covered by the *oldest retained*
  // checkpoint: fallback recovery from that checkpoint never needs them.
  if (checkpoints_.empty()) return;
  const std::uint64_t safe_through = checkpoints_.front().second;
  while (!sealed_.empty() && sealed_.front().last_record_seq <= safe_through) {
    std::error_code ec;
    fs::remove(sealed_.front().path, ec);
    if (ec) {
      log_warn("store prune: cannot remove {}: {}", sealed_.front().path, ec.message());
      break;
    }
    sealed_.erase(sealed_.begin());
  }
}

std::uint64_t DurableStore::wal_bytes_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_bytes_since_checkpoint_;
}

StoreStats DurableStore::stats() const {
  StoreStats stats;
  stats.dir = config_.dir;
  stats.fsync_policy = std::string(to_string(config_.fsync));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.wal_segments = sealed_.size() + 1;
    stats.wal_bytes = active_.bytes;
    for (const SegmentInfo& seg : sealed_) stats.wal_bytes += seg.bytes;
    stats.wal_bytes_since_checkpoint = wal_bytes_since_checkpoint_;
    stats.last_record_seq = next_record_seq_ - 1;
    stats.last_checkpoint_seq = last_checkpoint_seq_;
    stats.last_checkpoint_epoch = last_checkpoint_epoch_;
  }
  stats.append_records = append_records_->value();
  stats.append_bytes = append_bytes_->value();
  stats.append_failures = append_failures_->value();
  stats.fsyncs = fsyncs_->value();
  stats.checkpoints = checkpoints_total_->value();
  stats.recovery_replayed_records = recovery_replayed_->value();
  stats.recovery_truncated_bytes = recovery_truncated_->value();
  return stats;
}

}  // namespace crowdweb::store

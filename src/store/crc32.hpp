// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
// checksum of the durable store's on-disk formats. Standard so external
// tooling (`python3 -c 'import zlib; zlib.crc32(...)'`) can verify files.
#pragma once

#include <cstdint>
#include <string_view>

namespace crowdweb::store {

/// Checksum of `bytes`, optionally continuing from a previous value
/// (`crc32(b, crc32(a)) == crc32(a + b)`).
[[nodiscard]] std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) noexcept;

}  // namespace crowdweb::store

// Write-ahead-log on-disk format: segment files of framed, checksummed
// records.
//
// A segment file is
//
//   +----------------------------- header (16 bytes) ---+
//   | u32 magic "CWAL" | u32 version | u64 segment_seq  |
//   +----------------------------------------------------+
//   | u32 payload_len | u32 crc32(payload) | payload ... |   record 0
//   | u32 payload_len | u32 crc32(payload) | payload ... |   record 1
//   | ...                                                |
//
// and a record payload is
//
//   u64 record_seq | u64 epoch | u32 event_count |
//   event_count x { u32 user | u16 category | f64 lat | f64 lon | i64 ts }
//
// All integers little-endian (see format.hpp). `record_seq` increases by
// one per record across the whole log (segments included), so a
// checkpoint can name the exact prefix it covers. `epoch` is the
// worker's published epoch at append time; recovery resumes the epoch
// counter past the largest value it sees, keeping the
// `crowdweb_ingest_epoch` gauge monotonic across restarts.
//
// Scanning distinguishes two failure shapes:
//   - a *torn tail* — the final record of the final segment is
//     incomplete or fails its checksum and nothing parseable follows
//     (the classic crash-mid-write shape). Recovery truncates it.
//   - *mid-log corruption* — a record fails its checksum but bytes
//     follow it, or a non-final segment ends mid-record. Recovery
//     refuses with an error naming the file and offset: silently
//     dropping the suffix would discard acknowledged events.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/event.hpp"
#include "util/status.hpp"

namespace crowdweb::store {

inline constexpr std::uint32_t kWalMagic = 0x4C41'5743;         // "CWAL"
inline constexpr std::uint32_t kCheckpointMagic = 0x504B'4343;  // "CCKP"
inline constexpr std::uint32_t kFormatVersion = 1;
/// Checkpoint payload version. v2 replaced inline venue-name strings
/// with a names table + per-venue NameId (the interned representation);
/// v1 files are refused with a clear error — see checkpoint.hpp.
inline constexpr std::uint32_t kCheckpointVersion = 2;
inline constexpr std::size_t kSegmentHeaderBytes = 16;
inline constexpr std::size_t kRecordHeaderBytes = 8;

/// One framed WAL record: a drained batch the worker accepted.
struct WalRecord {
  std::uint64_t seq = 0;    ///< global record ordinal (1-based, contiguous)
  std::uint64_t epoch = 0;  ///< worker epoch at append time
  std::vector<ingest::IngestEvent> events;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// "wal-0000000007.log" (zero-padded so lexical order == numeric order).
[[nodiscard]] std::string wal_segment_name(std::uint64_t segment_seq);
/// Inverse of wal_segment_name; nullopt for foreign file names.
[[nodiscard]] std::optional<std::uint64_t> parse_wal_segment_name(std::string_view name);

/// "checkpoint-0000000003.ckpt".
[[nodiscard]] std::string checkpoint_file_name(std::uint64_t checkpoint_seq);
[[nodiscard]] std::optional<std::uint64_t> parse_checkpoint_file_name(std::string_view name);

/// The 16-byte segment header.
[[nodiscard]] std::string encode_segment_header(std::uint64_t segment_seq);

/// One framed record: header (len + crc) and payload.
[[nodiscard]] std::string encode_wal_record(const WalRecord& record);

/// Appends one framed record for `events` to `out` without building a
/// WalRecord first — the worker's drain path encodes each accepted
/// batch straight from its span into a reused buffer.
void append_framed_record(std::string& out, std::uint64_t seq, std::uint64_t epoch,
                          std::span<const ingest::IngestEvent> events);

/// Parses a framed record's payload (the bytes the crc covers).
[[nodiscard]] Result<WalRecord> decode_wal_payload(std::string_view payload);

/// Outcome of scanning one segment file's bytes.
struct SegmentScan {
  std::uint64_t segment_seq = 0;
  std::vector<WalRecord> records;
  /// Prefix of the file that parsed cleanly; == file size when intact.
  std::size_t valid_bytes = 0;
  /// Bytes past valid_bytes dropped as a torn tail (0 = clean file).
  std::size_t torn_bytes = 0;
};

/// Scans one segment. `expected_seq` comes from the file name and must
/// match the header. `allow_torn_tail` is true only for the final
/// segment of the log; everywhere else any damage is an error.
[[nodiscard]] Result<SegmentScan> scan_wal_segment(std::string_view bytes,
                                                   const std::string& path,
                                                   std::uint64_t expected_seq,
                                                   bool allow_torn_tail);

}  // namespace crowdweb::store
